"""k-fold cross-validation for cThld prediction (§4.5.2).

"A historical training set is divided into k subsets of the same
length. In each test (k tests in total), a classifier is trained using
k-1 of the subsets and tested on the rest one with a cThld candidate.
The candidate that achieves the [best] average PC-Score across the k
tests is used for future detection. In this paper we use k = 5, and
sweep the space of cThld with a very fine granularity of 0.001".

Folds are *contiguous* blocks, keeping the temporal structure of the
KPI intact (shuffling would leak a week's anomaly into its own
training folds).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .metrics import AccuracyPreference, evaluate_threshold, pc_score

#: §4.5.2: 1000 candidates in [0, 1] at a granularity of 0.001.
DEFAULT_CTHLD_CANDIDATES = np.linspace(0.0, 1.0, 1001)


def contiguous_folds(n_samples: int, k: int) -> list[np.ndarray]:
    """Split ``range(n_samples)`` into k contiguous near-equal folds."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n_samples < k:
        raise ValueError(f"{n_samples} samples cannot make {k} folds")
    boundaries = np.linspace(0, n_samples, k + 1).astype(int)
    return [
        np.arange(boundaries[i], boundaries[i + 1]) for i in range(k)
    ]


def cross_validate_cthld(
    classifier_factory: Callable[[], "object"],
    features: np.ndarray,
    labels: np.ndarray,
    preference: AccuracyPreference,
    *,
    k: int = 5,
    candidates: Sequence[float] = DEFAULT_CTHLD_CANDIDATES,
) -> float:
    """The 5-fold cThld predictor Opprentice is compared against.

    ``classifier_factory`` builds a fresh classifier per fold (must
    expose fit/predict_proba). Returns the candidate with the highest
    average PC-Score across folds. Folds whose held-out block has no
    anomalies contribute a degenerate PC-Score and are skipped.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels)
    if len(features) != len(labels):
        raise ValueError("features and labels length mismatch")
    candidates = np.asarray(list(candidates), dtype=np.float64)
    if len(candidates) == 0:
        raise ValueError("need at least one cThld candidate")

    totals = np.zeros(len(candidates))
    used_folds = 0
    for fold in contiguous_folds(len(features), k):
        test_mask = np.zeros(len(features), dtype=bool)
        test_mask[fold] = True
        train_labels = labels[~test_mask]
        test_labels = labels[test_mask]
        if test_labels.sum() == 0 or len(set(train_labels)) < 2:
            continue
        classifier = classifier_factory()
        classifier.fit(features[~test_mask], train_labels)
        scores = classifier.predict_proba(features[test_mask])
        used_folds += 1
        for i, candidate in enumerate(candidates):
            recall, precision = evaluate_threshold(
                scores, test_labels, candidate
            )
            totals[i] += pc_score(recall, precision, preference)
    if used_folds == 0:
        # No usable folds (e.g. anomalies all in one block): fall back
        # to the default majority-vote threshold.
        return 0.5
    return float(candidates[int(np.argmax(totals))])
