"""One-call §5-style evaluation reports for a labelled KPI.

``evaluate_kpi`` runs the paper's evaluation flow on any labelled
series: the I1 online loop with EWMA cThld prediction (Fig 13), the
AUCPR comparison against every individual detector configuration and
the static combiners (Fig 9), and the Table 4 max-precision statistic —
and returns a structured :class:`KPIReport` that renders as text. This
is the "should I trust this detector on my KPI?" artifact an operator
reads before deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from .metrics import MODERATE_PREFERENCE, AccuracyPreference
from .pr_curve import aucpr, max_precision_at_recall


@dataclass(frozen=True)
class ApproachScore:
    """One approach's threshold-free accuracy on the test region."""

    name: str
    aucpr: float
    max_precision: float  # at recall >= the preference's recall bound


@dataclass
class KPIReport:
    """Structured evaluation results for one KPI."""

    kpi_name: str
    n_points: int
    n_weeks: float
    anomaly_fraction: float
    preference: AccuracyPreference
    #: Per test week: (week number, cThld used, recall, precision).
    weekly: List[Tuple[int, float, float, float]]
    #: Fraction of 4-week moving windows satisfying the preference.
    satisfaction_rate: float
    #: Opprentice and baselines, sorted by AUCPR descending.
    approaches: List[ApproachScore] = field(default_factory=list)

    @property
    def forest_rank(self) -> int:
        """1-based AUCPR rank of the random forest among all approaches."""
        for rank, approach in enumerate(self.approaches, 1):
            if approach.name == "random forest":
                return rank
        raise ValueError("report has no random forest entry")

    @property
    def forest(self) -> ApproachScore:
        return next(
            a for a in self.approaches if a.name == "random forest"
        )

    def render(self, top_k: int = 5) -> str:
        """Human-readable report."""
        lines = [
            f"KPI evaluation: {self.kpi_name}",
            f"  {self.n_points} points over {self.n_weeks:.1f} weeks, "
            f"{self.anomaly_fraction:.1%} anomalous",
            f"  preference: recall >= {self.preference.recall}, "
            f"precision >= {self.preference.precision}",
            "",
            f"  online detection (I1 + EWMA cThld): "
            f"{self.satisfaction_rate:.0%} of 4-week windows satisfied",
        ]
        for week, cthld, recall, precision in self.weekly:
            ok = self.preference.satisfied_by(recall, precision)
            lines.append(
                f"    week {week:>2}: cThld={cthld:.2f} "
                f"recall={recall:.2f} precision={precision:.2f}"
                f"{'' if ok else '  (missed)'}"
            )
        lines.append("")
        lines.append(
            f"  AUCPR ranking (random forest is #{self.forest_rank} "
            f"of {len(self.approaches)}):"
        )
        for rank, approach in enumerate(self.approaches[:top_k], 1):
            lines.append(
                f"    #{rank:>3} {approach.aucpr:.3f} "
                f"(maxP@recall {approach.max_precision:.2f})  {approach.name}"
            )
        if self.forest_rank > top_k:
            forest = self.forest
            lines.append(
                f"    #{self.forest_rank:>3} {forest.aucpr:.3f} "
                f"(maxP@recall {forest.max_precision:.2f})  random forest"
            )
        return "\n".join(lines)


def evaluate_kpi(
    series,
    *,
    configs=None,
    preference: AccuracyPreference = MODERATE_PREFERENCE,
    classifier_factory: Optional[Callable] = None,
    max_train_points: Optional[int] = None,
    include_basic_detectors: bool = True,
    include_combiners: bool = True,
    train_weeks: int = 8,
) -> KPIReport:
    """Run the §5 evaluation flow on a labelled series.

    The series must span more than ``train_weeks + 1`` weeks (the I1
    loop tests from week ``train_weeks + 1`` onward).
    """
    from ..combiners import MajorityVote, NormalizationSchema
    from ..core import FeatureExtractor, run_online
    from ..core.opprentice import default_classifier_factory

    if not series.is_labeled:
        raise ValueError("evaluate_kpi requires a labelled series")
    classifier_factory = classifier_factory or default_classifier_factory

    extractor = FeatureExtractor(configs)
    matrix = extractor.extract(series)
    run = run_online(
        series,
        configs=extractor.configs(series),
        preference=preference,
        classifier_factory=classifier_factory,
        features=matrix,
        max_train_points=max_train_points,
    )
    begin, end = run.test_begin, run.test_end
    labels = series.labels[begin:end]
    recall_bound = preference.recall

    approaches: List[ApproachScore] = [
        ApproachScore(
            name="random forest",
            aucpr=aucpr(run.scores[begin:end], labels),
            max_precision=max_precision_at_recall(
                run.scores[begin:end], labels, recall_bound
            ),
        )
    ]
    train_rows = matrix.rows(0, min(train_weeks * series.points_per_week, begin))
    test_rows = matrix.rows(begin, end)
    if include_combiners:
        for combiner in (NormalizationSchema(), MajorityVote()):
            combiner.fit(train_rows)
            scores = combiner.score(test_rows)
            approaches.append(
                ApproachScore(
                    name=combiner.name,
                    aucpr=aucpr(scores, labels),
                    max_precision=max_precision_at_recall(
                        scores, labels, recall_bound
                    ),
                )
            )
    if include_basic_detectors:
        for j, name in enumerate(matrix.names):
            scores = test_rows[:, j]
            if not np.isfinite(scores).any():
                continue
            approaches.append(
                ApproachScore(
                    name=name,
                    aucpr=aucpr(scores, labels),
                    max_precision=max_precision_at_recall(
                        scores, labels, recall_bound
                    ),
                )
            )
    approaches.sort(key=lambda a: -a.aucpr)

    window_weeks = min(4, len(run.outcomes))
    return KPIReport(
        kpi_name=series.name or "?",
        n_points=len(series),
        n_weeks=series.n_weeks,
        anomaly_fraction=series.anomaly_fraction(),
        preference=preference,
        weekly=[
            (o.week, o.cthld_used, o.recall, o.precision)
            for o in run.outcomes
        ],
        satisfaction_rate=run.satisfaction_rate(window_weeks=window_weeks),
        approaches=approaches,
    )
