"""Accuracy metrics for configuring cThlds (§4.5.1).

Four ways to pick a classification threshold from a PR curve are
compared in Fig 12:

* **default cThld** — the fixed 0.5 majority vote;
* **F-Score** — the point maximising F1;
* **SD(1,1)** — the point with the shortest Euclidean distance to the
  perfect corner (recall=1, precision=1) [46];
* **PC-Score** (the paper's contribution) — F-Score plus an incentive
  constant of 1 for points satisfying the operators' preference
  "recall >= R and precision >= P", so a satisfying point always beats
  every non-satisfying one.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from .confusion import f_score, precision_recall
from .pr_curve import PRCurve, pr_curve


@dataclass(frozen=True)
class AccuracyPreference:
    """The operators' preference "recall >= R and precision >= P".

    The operators in the paper specified R = P = 0.66 (the "moderate"
    preference); Fig 12 also evaluates sensitive-to-precision (0.6, 0.8)
    and sensitive-to-recall (0.8, 0.6).
    """

    recall: float = 0.66
    precision: float = 0.66

    def __post_init__(self) -> None:
        if not (0.0 <= self.recall <= 1.0 and 0.0 <= self.precision <= 1.0):
            raise ValueError(
                f"preference bounds must be in [0, 1], got {self}"
            )

    def satisfied_by(self, recall: float, precision: float) -> bool:
        return recall >= self.recall and precision >= self.precision

    def scaled(self, ratio: float) -> "AccuracyPreference":
        """The preference box scaled up by ``ratio`` (Fig 12's line
        charts lower the bounds: ratio 2 halves both)."""
        if ratio < 1.0:
            raise ValueError(f"scaling ratio must be >= 1, got {ratio}")
        return AccuracyPreference(
            recall=self.recall / ratio,
            precision=self.precision / ratio,
        )


#: Fig 12's three evaluated preferences.
MODERATE_PREFERENCE = AccuracyPreference(0.66, 0.66)
SENSITIVE_TO_PRECISION = AccuracyPreference(0.6, 0.8)
SENSITIVE_TO_RECALL = AccuracyPreference(0.8, 0.6)


def pc_score(
    recall: float, precision: float, preference: AccuracyPreference
) -> float:
    """The preference-centric score (§4.5.1).

    PC-Score(r, p) = F1(r, p) + 1 if the preference is satisfied, else
    F1(r, p). Since F1 <= 1, any satisfying point outranks every
    non-satisfying point.
    """
    base = f_score(recall, precision)
    if preference.satisfied_by(recall, precision):
        return base + 1.0
    return base


@dataclass(frozen=True)
class ThresholdChoice:
    """A selected cThld and the (recall, precision) it achieves on the
    data it was selected from."""

    threshold: float
    recall: float
    precision: float

    @property
    def point(self) -> tuple[float, float]:
        return (self.recall, self.precision)


class ThresholdSelector(abc.ABC):
    """Strategy choosing a cThld from scores and ground truth."""

    #: Display name used in Fig 12 outputs.
    name: str = "selector"

    @abc.abstractmethod
    def select_from_curve(self, curve: PRCurve) -> ThresholdChoice:
        """Pick a threshold given a PR curve."""

    def select(self, scores: np.ndarray, labels: np.ndarray) -> ThresholdChoice:
        """Pick a threshold for anomaly ``scores`` against labels."""
        return self.select_from_curve(pr_curve(scores, labels))


class DefaultCThld(ThresholdSelector):
    """The fixed 0.5 majority-vote threshold (§4.4.2)."""

    name = "default cThld"

    def __init__(self, threshold: float = 0.5):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold

    def select_from_curve(self, curve: PRCurve) -> ThresholdChoice:
        # The curve point achieved by thresholding at >= 0.5 is the
        # last point whose threshold is still >= 0.5 (thresholds are
        # sorted decreasing). If every score is below 0.5 nothing is
        # detected: recall 0, precision 1 by convention.
        eligible = np.flatnonzero(curve.thresholds >= self.threshold)
        if len(eligible) == 0:
            return ThresholdChoice(self.threshold, 0.0, 1.0)
        index = int(eligible[-1])
        return ThresholdChoice(
            self.threshold,
            float(curve.recalls[index]),
            float(curve.precisions[index]),
        )


class FScoreSelector(ThresholdSelector):
    """Maximise F1 (ignores the operators' preference)."""

    name = "F-Score"

    def select_from_curve(self, curve: PRCurve) -> ThresholdChoice:
        with np.errstate(invalid="ignore", divide="ignore"):
            denominator = curve.recalls + curve.precisions
            scores = np.where(
                denominator > 0,
                2.0 * curve.recalls * curve.precisions / denominator,
                0.0,
            )
        index = int(np.argmax(scores))
        return ThresholdChoice(
            float(curve.thresholds[index]),
            float(curve.recalls[index]),
            float(curve.precisions[index]),
        )


class SDSelector(ThresholdSelector):
    """SD(1,1): shortest Euclidean distance to perfect accuracy [46]."""

    name = "SD(1,1)"

    def select_from_curve(self, curve: PRCurve) -> ThresholdChoice:
        distances = np.hypot(1.0 - curve.recalls, 1.0 - curve.precisions)
        index = int(np.argmin(distances))
        return ThresholdChoice(
            float(curve.thresholds[index]),
            float(curve.recalls[index]),
            float(curve.precisions[index]),
        )


class PCScoreSelector(ThresholdSelector):
    """The paper's preference-centric selector (§4.5.1)."""

    name = "PC-Score"

    def __init__(self, preference: AccuracyPreference = MODERATE_PREFERENCE):
        self.preference = preference

    def select_from_curve(self, curve: PRCurve) -> ThresholdChoice:
        scores = np.array(
            [
                pc_score(r, p, self.preference)
                for r, p in zip(curve.recalls, curve.precisions)
            ]
        )
        index = int(np.argmax(scores))
        return ThresholdChoice(
            float(curve.thresholds[index]),
            float(curve.recalls[index]),
            float(curve.precisions[index]),
        )


def evaluate_threshold(
    scores: np.ndarray, labels: np.ndarray, threshold: float
) -> tuple[float, float]:
    """(recall, precision) of thresholding ``scores >= threshold``.

    NaN scores are treated as undetectable (excluded), consistent with
    the PR-curve machinery.
    """
    scores = np.asarray(scores, dtype=np.float64)
    predictions = np.where(
        np.isfinite(scores), (scores >= threshold).astype(float), np.nan
    )
    return precision_recall(predictions, labels)
