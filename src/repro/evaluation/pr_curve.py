"""Precision-Recall curves and AUCPR (§4.5.1, §5.3).

"A PR curve plots precision against recall for every possible cThld of
a machine learning algorithm (or for every sThld of a basic detector)".
The area under it (AUCPR [50]) is the threshold-free accuracy summary
used throughout §5.3. PR is preferred to ROC on highly imbalanced
data [45].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PRCurve:
    """A PR curve: parallel arrays over decreasing score thresholds.

    ``thresholds[i]`` is the smallest score classified as anomalous at
    point i; recall is non-decreasing along the arrays.
    """

    thresholds: np.ndarray
    recalls: np.ndarray
    precisions: np.ndarray

    def __len__(self) -> int:
        return len(self.thresholds)

    def points(self) -> np.ndarray:
        """(n, 2) array of (recall, precision) pairs."""
        return np.column_stack([self.recalls, self.precisions])

    def satisfies(self, min_recall: float, min_precision: float) -> bool:
        """Does any threshold meet "recall >= R and precision >= P"?"""
        return bool(
            np.any((self.recalls >= min_recall) & (self.precisions >= min_precision))
        )


def pr_curve(scores: np.ndarray, labels: np.ndarray) -> PRCurve:
    """PR curve of anomaly scores against 0/1 ground truth.

    NaN scores (warm-up/missing points) are excluded, matching §4.3.2's
    skip-the-warm-up rule. Ties share one curve point.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.shape != labels.shape:
        raise ValueError(f"shape mismatch: {scores.shape} vs {labels.shape}")
    valid = np.isfinite(scores)
    scores, labels = scores[valid], labels[valid].astype(np.int64)
    n_positives = int(labels.sum())
    if len(scores) == 0 or n_positives == 0:
        raise ValueError("need at least one finite score and one positive label")

    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    cumulative_tp = np.cumsum(sorted_labels)
    ranks = np.arange(1, len(scores) + 1)

    # Merge tied scores: the curve has one point per distinct threshold.
    distinct = np.flatnonzero(np.diff(sorted_scores, append=-np.inf))
    tp = cumulative_tp[distinct].astype(np.float64)
    detected = ranks[distinct].astype(np.float64)
    return PRCurve(
        thresholds=sorted_scores[distinct],
        recalls=tp / n_positives,
        precisions=tp / detected,
    )


def aucpr(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the PR curve, computed as average precision.

    Average precision (the step-function integral) avoids the
    optimistic linear interpolation pitfall described in [45]; it is
    the estimator used for every Fig 9-11 comparison.
    """
    curve = pr_curve(scores, labels)
    recall_steps = np.diff(curve.recalls, prepend=0.0)
    return float(np.sum(recall_steps * curve.precisions))


def aucpr_trapezoid(scores: np.ndarray, labels: np.ndarray) -> float:
    """Trapezoidal AUCPR — provided for comparison with tools that
    interpolate linearly; slightly optimistic on sparse curves [45]."""
    curve = pr_curve(scores, labels)
    recalls = np.concatenate([[0.0], curve.recalls])
    precisions = np.concatenate([[curve.precisions[0]], curve.precisions])
    return float(np.trapezoid(precisions, recalls))


def max_precision_at_recall(
    scores: np.ndarray, labels: np.ndarray, min_recall: float
) -> float:
    """Maximum precision subject to recall >= ``min_recall`` — the
    Table 4 statistic ("maximum precision when recall >= 0.66").
    Returns 0.0 if the recall bound is unreachable."""
    if not 0.0 <= min_recall <= 1.0:
        raise ValueError(f"min_recall must be in [0, 1], got {min_recall}")
    curve = pr_curve(scores, labels)
    feasible = curve.recalls >= min_recall
    if not feasible.any():
        return 0.0
    return float(curve.precisions[feasible].max())
