"""Probability calibration analytics for the anomaly classifier.

The forest's vote probability drives the cThld machinery, so *how
trustworthy the probabilities are* matters operationally: a
well-calibrated score means "0.7" actually corresponds to ~70% of such
points being anomalous, making the EWMA-tracked cThld interpretable.
This module provides the standard reliability diagnostics: the
calibration (reliability) curve and the Brier score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CalibrationCurve:
    """Reliability curve: observed anomaly rate per predicted-score bin."""

    bin_centers: np.ndarray
    mean_predicted: np.ndarray
    observed_rate: np.ndarray
    counts: np.ndarray

    def expected_calibration_error(self) -> float:
        """ECE: count-weighted |observed - predicted| across bins."""
        total = self.counts.sum()
        if total == 0:
            raise ValueError("curve has no samples")
        gaps = np.abs(self.observed_rate - self.mean_predicted)
        return float(np.sum(gaps * self.counts) / total)


def calibration_curve(
    scores: np.ndarray, labels: np.ndarray, n_bins: int = 10
) -> CalibrationCurve:
    """Bin predictions and compare mean score with observed anomaly rate.

    NaN scores are excluded (the shared warm-up convention); empty bins
    are dropped.
    """
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.shape != labels.shape:
        raise ValueError(f"shape mismatch: {scores.shape} vs {labels.shape}")
    valid = np.isfinite(scores)
    scores, labels = scores[valid], labels[valid].astype(np.float64)
    if len(scores) == 0:
        raise ValueError("no finite scores")

    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins = np.clip(np.digitize(scores, edges[1:-1]), 0, n_bins - 1)
    centers, mean_predicted, observed, counts = [], [], [], []
    for b in range(n_bins):
        mask = bins == b
        if not mask.any():
            continue
        centers.append((edges[b] + edges[b + 1]) / 2.0)
        mean_predicted.append(float(scores[mask].mean()))
        observed.append(float(labels[mask].mean()))
        counts.append(int(mask.sum()))
    return CalibrationCurve(
        bin_centers=np.asarray(centers),
        mean_predicted=np.asarray(mean_predicted),
        observed_rate=np.asarray(observed),
        counts=np.asarray(counts),
    )


def brier_score(scores: np.ndarray, labels: np.ndarray) -> float:
    """Mean squared error of the probabilities: lower is better; a
    perfect classifier scores 0, always-predict-base-rate scores
    ``p(1-p)``."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.shape != labels.shape:
        raise ValueError(f"shape mismatch: {scores.shape} vs {labels.shape}")
    valid = np.isfinite(scores)
    if not valid.any():
        raise ValueError("no finite scores")
    return float(
        np.mean((scores[valid] - labels[valid].astype(np.float64)) ** 2)
    )
