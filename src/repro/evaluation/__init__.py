"""Evaluation substrate: accuracy metrics, PR curves, cThld selection."""

from .calibration import CalibrationCurve, brier_score, calibration_curve
from .confusion import Confusion, confusion, f_score, precision_recall
from .delay import DelayReport, WindowDetection, detection_delays
from .cross_validation import (
    DEFAULT_CTHLD_CANDIDATES,
    contiguous_folds,
    cross_validate_cthld,
)
from .metrics import (
    MODERATE_PREFERENCE,
    SENSITIVE_TO_PRECISION,
    SENSITIVE_TO_RECALL,
    AccuracyPreference,
    DefaultCThld,
    FScoreSelector,
    PCScoreSelector,
    SDSelector,
    ThresholdChoice,
    ThresholdSelector,
    evaluate_threshold,
    pc_score,
)
from .report import ApproachScore, KPIReport, evaluate_kpi
from .roc import ROCCurve, auc_roc, roc_curve
from .significance import (
    ConfidenceInterval,
    PairedComparison,
    aucpr_confidence_interval,
    compare_aucpr,
)
from .pr_curve import (
    PRCurve,
    aucpr,
    aucpr_trapezoid,
    max_precision_at_recall,
    pr_curve,
)

__all__ = [
    "DelayReport",
    "WindowDetection",
    "detection_delays",
    "CalibrationCurve",
    "calibration_curve",
    "brier_score",
    "KPIReport",
    "ApproachScore",
    "evaluate_kpi",
    "ROCCurve",
    "ConfidenceInterval",
    "PairedComparison",
    "aucpr_confidence_interval",
    "compare_aucpr",
    "roc_curve",
    "auc_roc",
    "Confusion",
    "confusion",
    "precision_recall",
    "f_score",
    "PRCurve",
    "pr_curve",
    "aucpr",
    "aucpr_trapezoid",
    "max_precision_at_recall",
    "AccuracyPreference",
    "MODERATE_PREFERENCE",
    "SENSITIVE_TO_PRECISION",
    "SENSITIVE_TO_RECALL",
    "pc_score",
    "ThresholdChoice",
    "ThresholdSelector",
    "DefaultCThld",
    "FScoreSelector",
    "SDSelector",
    "PCScoreSelector",
    "evaluate_threshold",
    "contiguous_folds",
    "cross_validate_cthld",
    "DEFAULT_CTHLD_CANDIDATES",
]
