"""AUCPR confidence intervals and paired comparisons.

The paper's AUCPR citation ([50], Boyd, Eng & Page: "Area under the
precision-recall curve: point estimates and confidence intervals")
emphasises that AUCPR point estimates need uncertainty quantification —
especially with rare anomalies, where a handful of points moves the
area. This module provides the bootstrap machinery:

* :func:`aucpr_confidence_interval` — percentile-bootstrap CI for one
  approach's AUCPR;
* :func:`compare_aucpr` — a *paired* bootstrap of the AUCPR difference
  between two approaches scored on the same points (resampling the
  points jointly preserves the correlation between the approaches, the
  right design for Fig 9-style rankings).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pr_curve import aucpr


def _bootstrap_indices(
    rng: np.random.Generator, labels: np.ndarray, n_rounds: int
):
    """Yield resample index arrays that contain at least one positive
    (AUCPR is undefined otherwise); degenerate draws are redrawn."""
    n = len(labels)
    for _ in range(n_rounds):
        for _ in range(100):
            indices = rng.integers(0, n, size=n)
            if labels[indices].any():
                yield indices
                break
        else:  # pragma: no cover - needs pathological inputs
            raise RuntimeError("could not draw a resample with positives")


@dataclass(frozen=True)
class ConfidenceInterval:
    """A percentile bootstrap interval around a point estimate."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower


def aucpr_confidence_interval(
    scores: np.ndarray,
    labels: np.ndarray,
    *,
    confidence: float = 0.95,
    n_rounds: int = 500,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for AUCPR. NaN scores are excluded first
    (the shared warm-up convention)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_rounds < 10:
        raise ValueError(f"n_rounds must be >= 10, got {n_rounds}")
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    valid = np.isfinite(scores)
    scores, labels = scores[valid], labels[valid].astype(np.int64)
    estimate = aucpr(scores, labels)

    rng = np.random.default_rng(seed)
    samples = np.array(
        [
            aucpr(scores[indices], labels[indices])
            for indices in _bootstrap_indices(rng, labels, n_rounds)
        ]
    )
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=estimate,
        lower=float(np.quantile(samples, alpha)),
        upper=float(np.quantile(samples, 1.0 - alpha)),
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Paired-bootstrap comparison of two approaches' AUCPR."""

    difference: float  # AUCPR(a) - AUCPR(b)
    interval: ConfidenceInterval
    #: Fraction of resamples where approach A strictly beats B.
    win_rate: float

    @property
    def significant(self) -> bool:
        """True when the CI of the difference excludes zero."""
        return 0.0 not in self.interval


def compare_aucpr(
    scores_a: np.ndarray,
    scores_b: np.ndarray,
    labels: np.ndarray,
    *,
    confidence: float = 0.95,
    n_rounds: int = 500,
    seed: int = 0,
) -> PairedComparison:
    """Paired bootstrap of ``AUCPR(a) - AUCPR(b)`` on shared points.

    Points where *either* approach has a NaN score are excluded so both
    areas are computed over the identical sample.
    """
    scores_a = np.asarray(scores_a, dtype=np.float64)
    scores_b = np.asarray(scores_b, dtype=np.float64)
    labels = np.asarray(labels)
    if not scores_a.shape == scores_b.shape == labels.shape:
        raise ValueError("all three arrays must share one shape")
    valid = np.isfinite(scores_a) & np.isfinite(scores_b)
    scores_a, scores_b = scores_a[valid], scores_b[valid]
    labels = labels[valid].astype(np.int64)

    difference = aucpr(scores_a, labels) - aucpr(scores_b, labels)
    rng = np.random.default_rng(seed)
    deltas = np.array(
        [
            aucpr(scores_a[indices], labels[indices])
            - aucpr(scores_b[indices], labels[indices])
            for indices in _bootstrap_indices(rng, labels, n_rounds)
        ]
    )
    alpha = (1.0 - confidence) / 2.0
    interval = ConfidenceInterval(
        estimate=difference,
        lower=float(np.quantile(deltas, alpha)),
        upper=float(np.quantile(deltas, 1.0 - alpha)),
        confidence=confidence,
    )
    return PairedComparison(
        difference=difference,
        interval=interval,
        win_rate=float(np.mean(deltas > 0)),
    )
