"""Point-level detection accuracy: precision, recall, F-Score (§2.2).

The paper's accuracy model: recall = (# true anomalous points detected)
/ (# true anomalous points); precision = (# true anomalous points
detected) / (# anomalous points detected). Precision is preferred over
the false-positive rate because anomalies are infrequent (precision =
1 - FDR).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Confusion:
    """Binary confusion counts over labelled points."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        """1.0 by convention when nothing was detected (no false alarms)."""
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 1.0

    @property
    def recall(self) -> float:
        """1.0 by convention when there was nothing to detect."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f_score(self) -> float:
        """F1 = 2 * p * r / (p + r) (§4.5.1)."""
        return f_score(self.recall, self.precision)

    @property
    def false_discovery_rate(self) -> float:
        return 1.0 - self.precision


def f_score(recall: float, precision: float) -> float:
    """F1 of a (recall, precision) point; 0 when both are 0."""
    if recall < 0 or precision < 0:
        raise ValueError(f"negative inputs: recall={recall}, precision={precision}")
    if recall + precision == 0.0:
        return 0.0
    return 2.0 * recall * precision / (recall + precision)


def confusion(predictions: np.ndarray, labels: np.ndarray) -> Confusion:
    """Confusion counts of 0/1 predictions against 0/1 ground truth.

    Points with missing predictions (negative placeholder or NaN) are
    excluded; detectors output NaN severities inside warm-up windows and
    §4.3.2 skips their detection.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {labels.shape}"
        )
    valid = np.isfinite(predictions) & (predictions >= 0)
    predicted = predictions[valid] >= 0.5
    actual = labels[valid].astype(bool)
    return Confusion(
        true_positives=int(np.sum(predicted & actual)),
        false_positives=int(np.sum(predicted & ~actual)),
        false_negatives=int(np.sum(~predicted & actual)),
        true_negatives=int(np.sum(~predicted & ~actual)),
    )


def precision_recall(
    predictions: np.ndarray, labels: np.ndarray
) -> tuple[float, float]:
    """(recall, precision) of hard predictions — the paper's two-number
    accuracy summary."""
    result = confusion(predictions, labels)
    return result.recall, result.precision
