"""ROC curves — the alternative accuracy view the paper discusses.

Footnote 3 of §4.5.1: "A similar method is Receiver Operator
Characteristic (ROC) curves, which show the trade-off between the false
positive rate (FPR) and the true positive rate (TPR). However, when
dealing with highly imbalanced data sets, PR curves can provide a more
informative representation of the performance [45]."

ROC support is provided both because prior work evaluates detectors
with it ([9, 14, 26]) and so that the imbalance argument itself can be
demonstrated: on rare-anomaly data, AUROC stays deceptively high while
AUCPR exposes weak detectors (tested in the suite).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ROCCurve:
    """Parallel arrays over decreasing score thresholds."""

    thresholds: np.ndarray
    false_positive_rates: np.ndarray
    true_positive_rates: np.ndarray

    def __len__(self) -> int:
        return len(self.thresholds)


def roc_curve(scores: np.ndarray, labels: np.ndarray) -> ROCCurve:
    """ROC curve of anomaly scores against 0/1 labels. NaN scores are
    excluded (warm-up convention shared with the PR machinery)."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.shape != labels.shape:
        raise ValueError(f"shape mismatch: {scores.shape} vs {labels.shape}")
    valid = np.isfinite(scores)
    scores, labels = scores[valid], labels[valid].astype(np.int64)
    n_positives = int(labels.sum())
    n_negatives = len(labels) - n_positives
    if n_positives == 0 or n_negatives == 0:
        raise ValueError("ROC needs at least one positive and one negative")

    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    cumulative_tp = np.cumsum(sorted_labels)
    cumulative_fp = np.cumsum(1 - sorted_labels)
    distinct = np.flatnonzero(np.diff(sorted_scores, append=-np.inf))
    return ROCCurve(
        thresholds=sorted_scores[distinct],
        false_positive_rates=cumulative_fp[distinct] / n_negatives,
        true_positive_rates=cumulative_tp[distinct] / n_positives,
    )


def auc_roc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal over the step curve)."""
    curve = roc_curve(scores, labels)
    fpr = np.concatenate([[0.0], curve.false_positive_rates, [1.0]])
    tpr = np.concatenate([[0.0], curve.true_positive_rates, [1.0]])
    return float(np.trapezoid(tpr, fpr))
