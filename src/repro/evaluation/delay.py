"""Detection-delay metrics: how fast are anomalies caught?

Point-level recall/precision (§2.2) say nothing about *when* inside an
anomalous window the first detection lands, yet paging latency is what
operators feel. These metrics measure, per ground-truth anomalous
window, the lag (in points) from the window's start to the first
detected point inside it — plus window-level recall (was the window
caught at all), which is more forgiving than point recall for long
windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..timeseries import AnomalyWindow, points_to_windows


@dataclass(frozen=True)
class WindowDetection:
    """Detection outcome for one ground-truth anomalous window."""

    window: AnomalyWindow
    detected: bool
    #: Points from window start to the first detection inside it
    #: (0 = caught immediately); None if the window was missed.
    delay_points: Optional[int]


@dataclass
class DelayReport:
    """Aggregate detection-delay statistics."""

    detections: List[WindowDetection]

    @property
    def n_windows(self) -> int:
        return len(self.detections)

    @property
    def window_recall(self) -> float:
        """Fraction of anomalous windows with >= 1 detected point."""
        if not self.detections:
            raise ValueError("no anomalous windows to report on")
        return float(np.mean([d.detected for d in self.detections]))

    @property
    def delays(self) -> np.ndarray:
        """Delays of the detected windows (points)."""
        return np.array(
            [d.delay_points for d in self.detections if d.detected],
            dtype=np.float64,
        )

    def mean_delay(self) -> float:
        delays = self.delays
        if len(delays) == 0:
            raise ValueError("no detected windows")
        return float(delays.mean())

    def delay_percentile(self, q: float) -> float:
        delays = self.delays
        if len(delays) == 0:
            raise ValueError("no detected windows")
        return float(np.percentile(delays, q))

    def caught_within(self, max_delay_points: int) -> float:
        """Fraction of all windows detected within ``max_delay_points``
        of their onset (missed windows count against)."""
        if not self.detections:
            raise ValueError("no anomalous windows to report on")
        hits = [
            d.detected and d.delay_points <= max_delay_points
            for d in self.detections
        ]
        return float(np.mean(hits))


def detection_delays(
    predictions: Sequence[int], labels: Sequence[int]
) -> DelayReport:
    """Per-window detection delays of 0/1 predictions vs 0/1 labels.

    Negative prediction placeholders (missing/warm-up, as produced by
    the online harness) count as "not detected" at those points.
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels, dtype=np.int8)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {labels.shape}"
        )
    detected_points = predictions == 1
    detections = []
    for window in points_to_windows(labels):
        inside = detected_points[window.begin: window.end]
        hits = np.flatnonzero(inside)
        if len(hits):
            detections.append(
                WindowDetection(
                    window=window, detected=True, delay_points=int(hits[0])
                )
            )
        else:
            detections.append(
                WindowDetection(window=window, detected=False, delay_points=None)
            )
    return DelayReport(detections=detections)
