"""Command-line interface: the operator workflow from a shell.

The Fig 3 loop as subcommands over CSV files and JSON models::

    repro generate --kpi PV --weeks 8 --out pv.csv      # synthetic KPI
    repro summarize pv.csv                              # Table 1 row
    repro label pv.csv --out labeled.csv                # console tool
    repro train labeled.csv --model model.json          # fit + cThld
    repro detect new.csv --model model.json             # alerts
    repro evaluate labeled.csv --model model.json       # recall/precision

CSV format: ``timestamp,value[,label]`` (see `repro.timeseries.io`).
Models are the JSON artifacts of `repro.core.persistence`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Opprentice (IMC 2015) KPI anomaly detection",
        epilog=(
            "companion CLIs: repro-fleet (multi-KPI orchestration), "
            "repro-serve (sharded fleet behind HTTP), repro-loadgen "
            "(soak / networked replay), repro-obs (metrics + SLOs), "
            "repro-lint (static analysis)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic Table 1 KPI as CSV"
    )
    generate.add_argument(
        "--kpi", choices=["PV", "#SR", "SRT"], default="PV",
        help="which Table 1 profile to generate",
    )
    generate.add_argument("--weeks", type=float, default=None,
                          help="length override (default: the Table 1 length)")
    generate.add_argument("--seed-offset", type=int, default=0)
    generate.add_argument("--paper-interval", action="store_true",
                          help="use the paper's exact sampling interval")
    generate.add_argument("--no-labels", action="store_true",
                          help="omit the ground-truth label column")
    generate.add_argument("--out", required=True, help="output CSV path")

    summarize = commands.add_parser(
        "summarize", help="print the Table 1 statistics of a KPI CSV"
    )
    summarize.add_argument("csv", help="input CSV")
    summarize.add_argument("--interval", type=int, default=None)

    label = commands.add_parser(
        "label", help="label anomaly windows with the console tool"
    )
    label.add_argument("csv", help="input CSV (labels ignored)")
    label.add_argument("--out", required=True, help="labelled CSV output")
    label.add_argument("--interval", type=int, default=None)
    label.add_argument(
        "--commands", default=None,
        help="semicolon-separated tool commands (scripted labeling); "
             "omit for an interactive session on stdin",
    )

    train = commands.add_parser(
        "train", help="train Opprentice on a labelled CSV"
    )
    train.add_argument("csv", help="labelled input CSV")
    train.add_argument("--model", required=True, help="output model JSON")
    train.add_argument("--interval", type=int, default=None)
    train.add_argument("--recall", type=float, default=0.66,
                       help="preference: minimum recall")
    train.add_argument("--precision", type=float, default=0.66,
                       help="preference: minimum precision")
    train.add_argument("--trees", type=int, default=50)
    train.add_argument("--max-train-points", type=int, default=None)
    train.add_argument("--seed", type=int, default=0)

    detect = commands.add_parser(
        "detect", help="detect anomalies with a trained model"
    )
    detect.add_argument("csv", help="input CSV")
    detect.add_argument("--model", required=True, help="model JSON")
    detect.add_argument("--interval", type=int, default=None)
    detect.add_argument("--out", default=None,
                        help="write timestamp,value,label CSV of detections")
    detect.add_argument("--min-duration", type=int, default=1,
                        help="suppress anomalies shorter than this many points")
    detect.add_argument("--explain", action="store_true",
                        help="print the top contributing detector "
                             "configurations for each alert")

    evaluate = commands.add_parser(
        "evaluate", help="score a model against a labelled CSV"
    )
    evaluate.add_argument("csv", help="labelled input CSV")
    evaluate.add_argument("--model", required=True, help="model JSON")
    evaluate.add_argument("--interval", type=int, default=None)

    report = commands.add_parser(
        "report",
        help="full paper-style evaluation of a labelled CSV "
             "(online loop + AUCPR ranking vs every configuration)",
    )
    report.add_argument("csv", help="labelled input CSV (> 9 weeks)")
    report.add_argument("--interval", type=int, default=None)
    report.add_argument("--recall", type=float, default=0.66)
    report.add_argument("--precision", type=float, default=0.66)
    report.add_argument("--trees", type=int, default=30)
    report.add_argument("--max-train-points", type=int, default=6000)
    report.add_argument("--top", type=int, default=8,
                        help="approaches to list in the ranking")

    drift = commands.add_parser(
        "drift",
        help="feature-drift report between a reference CSV (what the "
             "model was trained on) and a recent CSV",
    )
    drift.add_argument("reference", help="reference (training-era) CSV")
    drift.add_argument("recent", help="recent CSV")
    drift.add_argument("--interval", type=int, default=None)
    drift.add_argument("--top", type=int, default=8)

    triage = commands.add_parser(
        "triage",
        help="suggest which windows of a CSV the operator should label "
             "next, ranked by a trained model's anomaly scores",
    )
    triage.add_argument("csv", help="input CSV (unlabelled or partially "
                                    "labelled)")
    triage.add_argument("--model", required=True, help="model JSON")
    triage.add_argument("--interval", type=int, default=None)
    triage.add_argument("--threshold", type=float, default=0.3,
                        help="score threshold for candidate windows")
    triage.add_argument("--max", type=int, default=10,
                        help="maximum suggestions")

    resample = commands.add_parser(
        "resample", help="aggregate a CSV onto a coarser grid"
    )
    resample.add_argument("csv", help="input CSV")
    resample.add_argument("--to", type=int, required=True,
                          help="target interval in seconds")
    resample.add_argument("--aggregate", default="mean",
                          choices=["mean", "max", "min", "median", "sum"])
    resample.add_argument("--interval", type=int, default=None)
    resample.add_argument("--out", required=True, help="output CSV")
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_generate(args) -> int:
    from .data import PROFILES, make_kpi
    from .timeseries import write_csv

    profile = PROFILES[args.kpi]
    result = make_kpi(
        profile,
        weeks=args.weeks,
        seed_offset=args.seed_offset,
        paper_interval=args.paper_interval,
        with_anomalies=not args.no_labels,
    )
    series = result.series
    if args.no_labels:
        from .timeseries import TimeSeries

        series = TimeSeries(
            values=series.values, interval=series.interval,
            start=series.start, name=series.name,
        )
    write_csv(series, args.out)
    print(
        f"wrote {len(series)} points of {args.kpi} "
        f"({len(result.windows)} anomaly windows) to {args.out}"
    )
    return 0


def _cmd_summarize(args) -> int:
    from .timeseries import read_csv, summarize

    series = read_csv(args.csv, interval=args.interval, name=args.csv)
    print(summarize(series).row())
    return 0


def _cmd_label(args) -> int:
    from .labeling import LabelingTool
    from .timeseries import TimeSeries, read_csv, write_csv

    loaded = read_csv(args.csv, interval=args.interval, name=args.csv)
    series = TimeSeries(
        values=loaded.values, interval=loaded.interval,
        start=loaded.start, name=loaded.name,
    )
    tool = LabelingTool(series, output=sys.stdout)
    if args.commands is not None:
        for command in args.commands.split(";"):
            if not tool.execute(command.strip()):
                break
        session = tool.session
    else:
        session = tool.run(sys.stdin)
    labelled = session.labeled_series()
    write_csv(labelled, args.out)
    print(
        f"wrote {int(labelled.labels.sum())} anomalous points "
        f"({len(session.windows)} windows) to {args.out}"
    )
    return 0


def _cmd_train(args) -> int:
    from .core import Opprentice, save_model
    from .evaluation import AccuracyPreference
    from .ml import RandomForest
    from .timeseries import read_csv

    series = read_csv(args.csv, interval=args.interval, name=args.csv)
    if not series.is_labeled:
        print("error: training CSV has no label column", file=sys.stderr)
        return 2
    opprentice = Opprentice(
        preference=AccuracyPreference(args.recall, args.precision),
        classifier_factory=lambda: RandomForest(
            n_estimators=args.trees, seed=args.seed
        ),
        max_train_points=args.max_train_points,
        seed=args.seed,
    )
    opprentice.fit(series)
    save_model(opprentice, args.model)
    print(
        f"trained on {len(series)} points "
        f"({series.anomaly_fraction():.1%} anomalous); "
        f"cThld={opprentice.cthld_:.3f}; model -> {args.model}"
    )
    return 0


def _load_model_for(args):
    from .core import Opprentice, load_model

    return load_model(args.model, opprentice=Opprentice())


def _cmd_detect(args) -> int:
    from .core import alerts_from_predictions, duration_filter
    from .timeseries import read_csv, write_csv

    series = read_csv(args.csv, interval=args.interval, name=args.csv)
    opprentice = _load_model_for(args)
    result = opprentice.detect(series)
    predictions = duration_filter(result.predictions, args.min_duration)
    alerts = alerts_from_predictions(
        series, predictions, result.scores, min_duration_points=1
    )
    n_points = int((predictions == 1).sum())
    print(
        f"{n_points} anomalous points in {len(series)} "
        f"({len(alerts)} alerts at min duration {args.min_duration})"
    )
    explain_matrix = None
    if args.explain and alerts:
        explain_matrix = opprentice.extractor.extract(series)
    for alert in alerts:
        print(
            f"  alert t=[{alert.begin_timestamp}, {alert.end_timestamp}) "
            f"points={alert.duration_points} peak={alert.peak_score:.2f}"
        )
        if explain_matrix is not None:
            from .core import explain_features

            window_scores = result.scores[alert.begin_index: alert.end_index]
            peak = alert.begin_index + int(np.nanargmax(window_scores))
            explanation = explain_features(
                opprentice, explain_matrix.values[peak]
            )[0]
            for contribution in explanation.top(3):
                print(
                    f"      {contribution.contribution:+.3f} "
                    f"{contribution.name}"
                )
    if args.out:
        write_csv(series.with_labels(np.maximum(predictions, 0)), args.out)
        print(f"detections -> {args.out}")
    return 0


def _cmd_evaluate(args) -> int:
    from .evaluation import aucpr, evaluate_threshold
    from .timeseries import read_csv

    series = read_csv(args.csv, interval=args.interval, name=args.csv)
    if not series.is_labeled:
        print("error: evaluation CSV has no label column", file=sys.stderr)
        return 2
    opprentice = _load_model_for(args)
    scores = opprentice.anomaly_scores(series)
    recall, precision = evaluate_threshold(
        scores, series.labels, opprentice.cthld_
    )
    satisfied = opprentice.preference.satisfied_by(recall, precision)
    print(f"AUCPR     {aucpr(scores, series.labels):.3f}")
    print(f"recall    {recall:.3f}")
    print(f"precision {precision:.3f}")
    print(
        f"preference (recall>={opprentice.preference.recall}, "
        f"precision>={opprentice.preference.precision}): "
        f"{'satisfied' if satisfied else 'NOT satisfied'}"
    )
    return 0


def _cmd_resample(args) -> int:
    from .timeseries import read_csv, to_interval, write_csv

    series = read_csv(args.csv, interval=args.interval, name=args.csv)
    coarse = to_interval(series, args.to, aggregate=args.aggregate)
    write_csv(coarse, args.out)
    print(
        f"{len(series)} points @ {series.interval}s -> "
        f"{len(coarse)} points @ {coarse.interval}s ({args.aggregate}) "
        f"-> {args.out}"
    )
    return 0


def _cmd_drift(args) -> int:
    from .core import FeatureExtractor, feature_drift
    from .timeseries import read_csv

    reference = read_csv(args.reference, interval=args.interval)
    recent = read_csv(args.recent, interval=args.interval)
    if reference.interval != recent.interval:
        print("error: the two CSVs have different intervals", file=sys.stderr)
        return 2
    extractor = FeatureExtractor()
    reference_matrix = extractor.extract(reference)
    recent_matrix = extractor.extract(recent)
    report = feature_drift(
        reference_matrix.values, recent_matrix.values,
        names=reference_matrix.names,
    )
    print(report.render(k=args.top))
    return 0


def _cmd_triage(args) -> int:
    from .labeling import suggest_windows, triage_queue_minutes
    from .timeseries import read_csv

    series = read_csv(args.csv, interval=args.interval, name=args.csv)
    opprentice = _load_model_for(args)
    scores = opprentice.anomaly_scores(series)
    labeled_mask = None
    if series.is_labeled:
        labeled_mask = series.labels.astype(bool)
    candidates = suggest_windows(
        scores,
        labeled_mask=labeled_mask,
        score_threshold=args.threshold,
        max_candidates=args.max,
    )
    if not candidates:
        print("nothing to triage: no unlabelled high-score windows")
        return 0
    minutes = triage_queue_minutes(candidates)
    print(f"{len(candidates)} windows to review (~{minutes:.1f} min):")
    for candidate in candidates:
        window = candidate.window
        print(
            f"  points [{window.begin}, {window.end})  "
            f"peak={candidate.peak_score:.2f} mean={candidate.mean_score:.2f}"
        )
    return 0


def _cmd_report(args) -> int:
    from .evaluation import AccuracyPreference, evaluate_kpi
    from .ml import RandomForest
    from .timeseries import read_csv

    series = read_csv(args.csv, interval=args.interval, name=args.csv)
    if not series.is_labeled:
        print("error: report requires a labelled CSV", file=sys.stderr)
        return 2
    report = evaluate_kpi(
        series,
        preference=AccuracyPreference(args.recall, args.precision),
        classifier_factory=lambda: RandomForest(
            n_estimators=args.trees, seed=0
        ),
        max_train_points=args.max_train_points,
    )
    print(report.render(top_k=args.top))
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "summarize": _cmd_summarize,
    "label": _cmd_label,
    "train": _cmd_train,
    "detect": _cmd_detect,
    "evaluate": _cmd_evaluate,
    "report": _cmd_report,
    "drift": _cmd_drift,
    "triage": _cmd_triage,
    "resample": _cmd_resample,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
