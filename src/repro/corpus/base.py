"""The dataset contract and registry of the scenario corpus.

Opprentice's evaluation is three KPIs from one search engine; §5.1
argues the approach carries to "other kinds of volume data" and §6 to
other domains entirely. The corpus makes that claim testable: every
dataset — Table 1 reproductions, other-domain generators, scripted
incidents, or files on disk — answers the same small contract, so the
detection and diagnosis pipelines can sweep them uniformly.

A :class:`Dataset` is a named, deterministic source of labelled KPIs.
``load(kpi)`` returns a :class:`DatasetItem`: the labelled series, its
ground-truth anomaly windows, and the *kind* of each window (the
injector taxonomy: spike / dip / ramp / jitter / level_shift) — the
supervision signal the diagnosis subsystem trains and scores against.
Determinism is part of the contract, not a convention:
:meth:`Dataset.validate` loads everything twice and fails on any drift,
because the networked replay gates (client and server regenerate the
same corpus independently) stand on bit-identical loads.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..timeseries import TimeSeries
from ..timeseries.windows import AnomalyWindow, windows_to_points

#: The anomaly-kind taxonomy shared with ``repro.data.anomalies`` and
#: ``repro.diagnosis``. Every labelled window carries one of these.
KNOWN_KINDS = ("dip", "jitter", "level_shift", "ramp", "spike")


class CorpusError(ValueError):
    """Raised for unknown datasets, bad manifests, or contract abuse."""


@dataclass
class DatasetItem:
    """One loaded KPI: labelled series plus per-window ground truth.

    ``windows`` and ``kinds`` are parallel arrays — window ``i`` is an
    anomaly of kind ``kinds[i]``. The series' point labels always equal
    ``windows_to_points(windows)``; :meth:`Dataset.validate` enforces
    the redundancy so consumers can use whichever view is convenient.
    """

    kpi: str
    series: TimeSeries
    windows: List[AnomalyWindow]
    kinds: List[str]
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def labels(self) -> np.ndarray:
        return windows_to_points(self.windows, len(self.series))


class Dataset(ABC):
    """A named, deterministic source of labelled KPI series.

    Subclasses set ``name`` (registry key), ``description`` (one line,
    shown by ``repro-corpus list``) and ``domain`` (a coarse grouping:
    ``search-engine``, ``telecom``, ``hpc``, ``web``, ``file``).
    """

    name: str = ""
    description: str = ""
    domain: str = ""

    @abstractmethod
    def kpi_names(self) -> List[str]:
        """All KPI names, without generating any series."""

    @abstractmethod
    def kpi_interval(self, kpi: str) -> int:
        """Sampling interval in seconds of one KPI, without loading it."""

    @abstractmethod
    def load(
        self,
        kpi: str,
        *,
        weeks: Optional[float] = None,
        seed_offset: int = 0,
    ) -> DatasetItem:
        """Load one KPI deterministically.

        ``weeks`` overrides the dataset's default span where the source
        supports it (generators do; file-backed datasets raise).
        ``seed_offset`` draws an independent replica of the same KPI —
        the held-out-split mechanism of the diagnosis evaluation.
        """

    def load_all(
        self,
        *,
        weeks: Optional[float] = None,
        seed_offset: int = 0,
    ) -> Dict[str, DatasetItem]:
        return {
            kpi: self.load(kpi, weeks=weeks, seed_offset=seed_offset)
            for kpi in self.kpi_names()
        }

    # ------------------------------------------------------------------
    def validate(self, *, weeks: Optional[float] = None) -> List[str]:
        """Check every KPI against the contract; return the violations.

        An empty list means the dataset honours: a positive uniform
        interval matching :meth:`kpi_interval`, sorted in-bounds
        windows, kinds parallel to windows and drawn from
        :data:`KNOWN_KINDS`, point labels equal to the window
        rasterisation, and bit-identical series across repeated loads.
        """
        problems: List[str] = []
        for kpi in self.kpi_names():
            try:
                first = self.load(kpi, weeks=weeks)
                again = self.load(kpi, weeks=weeks)
            except Exception as error:  # repro: disable=api-hygiene — validation must report a broken loader as a finding, not die on the first bad KPI
                problems.append(f"{kpi}: load failed: {error!r}")
                continue
            problems.extend(
                f"{kpi}: {problem}"
                for problem in self._check_item(kpi, first, again)
            )
        return problems

    def _check_item(
        self, kpi: str, item: DatasetItem, again: DatasetItem
    ) -> List[str]:
        problems: List[str] = []
        n = len(item.series)
        if item.kpi != kpi:
            problems.append(f"item says kpi={item.kpi!r}")
        if item.series.interval != self.kpi_interval(kpi):
            problems.append(
                f"interval {item.series.interval} != declared "
                f"{self.kpi_interval(kpi)}"
            )
        if len(item.kinds) != len(item.windows):
            problems.append(
                f"{len(item.kinds)} kinds for {len(item.windows)} windows"
            )
        unknown = sorted(set(item.kinds) - set(KNOWN_KINDS))
        if unknown:
            problems.append(f"unknown kinds {unknown}")
        if item.windows != sorted(item.windows):
            problems.append("windows are not sorted")
        for window in item.windows:
            if not (0 <= window.begin < window.end <= n):
                problems.append(f"window {window} out of bounds for {n}")
        if item.series.labels is None:
            problems.append("series has no labels")
        elif not np.array_equal(item.series.labels, item.labels):
            problems.append("series labels disagree with windows")
        if not np.array_equal(
            item.series.values, again.series.values, equal_nan=True
        ):
            problems.append("values differ between loads")
        if item.windows != again.windows or item.kinds != again.kinds:
            problems.append("ground truth differs between loads")
        return problems


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Dataset] = {}


def register(dataset: Dataset, *, replace: bool = False) -> Dataset:
    """Add a dataset to the registry (importing ``repro.corpus``
    registers the built-ins; plugins call this for their own)."""
    if not dataset.name:
        raise CorpusError("dataset has no name")
    if dataset.name in _REGISTRY and not replace:
        raise CorpusError(f"dataset {dataset.name!r} already registered")
    _REGISTRY[dataset.name] = dataset
    return dataset


def get_dataset(name: str) -> Dataset:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CorpusError(
            f"unknown dataset {name!r}; registered: {dataset_names()}"
        ) from None


def dataset_names() -> List[str]:
    return sorted(_REGISTRY)


__all__ = [
    "KNOWN_KINDS",
    "CorpusError",
    "Dataset",
    "DatasetItem",
    "dataset_names",
    "get_dataset",
    "register",
]
