"""The scenario corpus: pluggable labelled datasets beyond Table 1.

Importing this package registers the built-in datasets (``table1``,
``isp``, ``telecom``, ``hpc``, ``web-incidents``); see :mod:`.base`
for the contract and :mod:`.files` for materialized directories.
"""

from .base import (
    KNOWN_KINDS,
    CorpusError,
    Dataset,
    DatasetItem,
    dataset_names,
    get_dataset,
    register,
)
from .domains import (
    HPC_PROFILES,
    PHASE_KINDS,
    TELECOM_PROFILES,
    ProfileDataset,
    ScenarioDataset,
    phase_kind,
)
from .files import (
    CORPUS_FORMAT_VERSION,
    MANIFEST_NAME,
    DirectoryDataset,
    materialize,
    read_series_file,
    write_series_file,
)

__all__ = [
    "KNOWN_KINDS",
    "CorpusError",
    "Dataset",
    "DatasetItem",
    "dataset_names",
    "get_dataset",
    "register",
    "HPC_PROFILES",
    "PHASE_KINDS",
    "TELECOM_PROFILES",
    "ProfileDataset",
    "ScenarioDataset",
    "phase_kind",
    "CORPUS_FORMAT_VERSION",
    "MANIFEST_NAME",
    "DirectoryDataset",
    "materialize",
    "read_series_file",
    "write_series_file",
]
