"""Built-in datasets: Table 1 plus the beyond-the-paper domains.

Three generator families back the built-ins:

* :class:`ProfileDataset` wraps ``repro.data.datasets`` profiles —
  the Table 1 trio (``table1``), the §5.1 ISP KPIs (``isp``), and two
  new domain suites whose profiles live here: mobile-network KPIs
  (``telecom``) following the taxonomy of arXiv 2308.16279 (throughput,
  latency, drop rate and utilization, each with its own characteristic
  anomaly mix), and HPC node metrics (``hpc``: temperature, power,
  filesystem latency).
* :class:`ScenarioDataset` (``web-incidents``) scripts the
  ``repro.data.scenarios`` multi-phase incidents onto clean web-traffic
  KPIs, mapping each incident phase to its anomaly kind — bursty
  incident traffic whose ground truth is a *sequence* of kinds, unlike
  the independent windows the injectors place.

All are pure functions of their seeds: ``load(kpi, seed_offset=k)``
draws replica ``k``, which is how held-out splits are made.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..data.datasets import EXTRA_PROFILES, KPIProfile, PROFILES, make_kpi
from ..data.generator import SeasonalProfile, generate_kpi
from ..data.scenarios import (
    cascading_failure,
    flash_crowd,
    gradual_degradation,
    outage_and_recovery,
)
from .base import CorpusError, Dataset, DatasetItem, register


class ProfileDataset(Dataset):
    """A dataset backed by ``KPIProfile`` generators (one per KPI)."""

    def __init__(
        self,
        name: str,
        description: str,
        domain: str,
        profiles: Dict[str, KPIProfile],
    ):
        self.name = name
        self.description = description
        self.domain = domain
        self.profiles = dict(profiles)

    def kpi_names(self) -> List[str]:
        return list(self.profiles)

    def _profile(self, kpi: str) -> KPIProfile:
        try:
            return self.profiles[kpi]
        except KeyError:
            raise CorpusError(
                f"{self.name}: unknown KPI {kpi!r}; has "
                f"{self.kpi_names()}"
            ) from None

    def kpi_interval(self, kpi: str) -> int:
        return self._profile(kpi).interval

    def load(
        self,
        kpi: str,
        *,
        weeks: Optional[float] = None,
        seed_offset: int = 0,
    ) -> DatasetItem:
        profile = self._profile(kpi)
        result = make_kpi(profile, weeks=weeks, seed_offset=seed_offset)
        return DatasetItem(
            kpi=kpi,
            series=result.series,
            windows=list(result.windows),
            kinds=list(result.kinds),
            metadata={
                "domain": self.domain,
                "anomaly_fraction": profile.anomaly_fraction,
                "default_weeks": profile.weeks,
            },
        )


# ----------------------------------------------------------------------
# Telecom: mobile-network KPIs per the arXiv 2308.16279 taxonomy.
# Each KPI's injector mix encodes how that KPI actually fails: cell
# outages collapse throughput (dips), congestion spikes latency,
# misconfigurations shift levels, load growth ramps utilization.
# ----------------------------------------------------------------------
TELECOM_PROFILES: Dict[str, KPIProfile] = {
    "dl_throughput": KPIProfile(
        name="dl_throughput",
        weeks=4,
        interval=300,
        paper_interval_seconds=300,
        anomaly_fraction=0.05,
        signal=SeasonalProfile(
            base_level=120.0,
            daily_amplitude=0.7,
            daily_harmonics=3,
            weekend_factor=0.85,
            trend=0.04,
            noise_scale=0.03,
            noise_ar=0.5,
            multiplicative_noise=True,
        ),
        seed=6001,
        mean_anomaly_window=6.0,
        injector_mix={
            "dip": 0.35, "level_shift": 0.25, "ramp": 0.2, "spike": 0.2
        },
    ),
    "rtt_latency": KPIProfile(
        name="rtt_latency",
        weeks=4,
        interval=300,
        paper_interval_seconds=300,
        anomaly_fraction=0.045,
        signal=SeasonalProfile(
            base_level=30.0,
            daily_amplitude=0.15,
            daily_harmonics=2,
            weekend_factor=0.95,
            trend=0.0,
            noise_scale=0.04,
            noise_ar=0.5,
            multiplicative_noise=True,
        ),
        seed=6002,
        mean_anomaly_window=5.0,
        severity_range=(0.4, 1.6),
        injector_mix={"spike": 0.45, "jitter": 0.3, "level_shift": 0.25},
    ),
    "call_drop_rate": KPIProfile(
        name="call_drop_rate",
        weeks=4,
        interval=300,
        paper_interval_seconds=300,
        anomaly_fraction=0.035,
        signal=SeasonalProfile(
            base_level=1.5,
            daily_amplitude=0.2,
            daily_harmonics=2,
            weekend_factor=0.9,
            trend=0.0,
            noise_scale=0.12,
            noise_ar=0.3,
            multiplicative_noise=False,
            burst_rate=0.002,
            burst_scale=0.8,
            burst_length=3.0,
        ),
        seed=6003,
        mean_anomaly_window=4.0,
        severity_range=(2.0, 8.0),
        injector_mix={"spike": 0.7, "level_shift": 0.15, "jitter": 0.15},
    ),
    "prb_utilization": KPIProfile(
        name="prb_utilization",
        weeks=4,
        interval=300,
        paper_interval_seconds=300,
        anomaly_fraction=0.05,
        signal=SeasonalProfile(
            base_level=55.0,
            daily_amplitude=0.55,
            daily_harmonics=3,
            weekend_factor=0.8,
            trend=0.06,
            noise_scale=0.025,
            noise_ar=0.6,
            multiplicative_noise=True,
        ),
        seed=6004,
        mean_anomaly_window=7.0,
        injector_mix={"ramp": 0.4, "level_shift": 0.3, "spike": 0.3},
    ),
}

# ----------------------------------------------------------------------
# HPC node metrics: tight operating bands where the interesting
# failures are sustained (fan failure shifting temperature, thermal
# ramps, I/O contention spiking filesystem latency).
# ----------------------------------------------------------------------
HPC_PROFILES: Dict[str, KPIProfile] = {
    "cpu_temperature": KPIProfile(
        name="cpu_temperature",
        weeks=2,
        interval=60,
        paper_interval_seconds=60,
        anomaly_fraction=0.04,
        signal=SeasonalProfile(
            base_level=62.0,
            daily_amplitude=0.06,
            daily_harmonics=2,
            weekend_factor=0.98,
            trend=0.0,
            noise_scale=0.015,
            noise_ar=0.7,
            multiplicative_noise=True,
        ),
        seed=7001,
        mean_anomaly_window=8.0,
        severity_range=(0.15, 0.5),
        injector_mix={"level_shift": 0.4, "ramp": 0.35, "spike": 0.25},
    ),
    "node_power": KPIProfile(
        name="node_power",
        weeks=2,
        interval=60,
        paper_interval_seconds=60,
        anomaly_fraction=0.045,
        signal=SeasonalProfile(
            base_level=450.0,
            daily_amplitude=0.3,
            daily_harmonics=3,
            weekend_factor=0.7,
            trend=0.0,
            noise_scale=0.03,
            noise_ar=0.5,
            multiplicative_noise=True,
        ),
        seed=7002,
        mean_anomaly_window=6.0,
        injector_mix={"spike": 0.4, "jitter": 0.3, "level_shift": 0.3},
    ),
    "fs_latency": KPIProfile(
        name="fs_latency",
        weeks=2,
        interval=60,
        paper_interval_seconds=60,
        anomaly_fraction=0.035,
        signal=SeasonalProfile(
            base_level=8.0,
            daily_amplitude=0.2,
            daily_harmonics=2,
            weekend_factor=0.9,
            trend=0.0,
            noise_scale=0.08,
            noise_ar=0.4,
            multiplicative_noise=False,
            burst_rate=0.003,
            burst_scale=1.0,
            burst_length=4.0,
        ),
        seed=7003,
        mean_anomaly_window=4.0,
        severity_range=(3.0, 10.0),
        injector_mix={"spike": 0.6, "jitter": 0.2, "level_shift": 0.2},
    ),
}


# ----------------------------------------------------------------------
# Web incidents: scripted multi-phase incidents on clean traffic KPIs.
# ----------------------------------------------------------------------

#: Incident phase → anomaly kind (cascade stages are all spikes).
PHASE_KINDS: Dict[str, str] = {
    "outage": "dip",
    "recovery ramp": "ramp",
    "gradual build-up": "ramp",
    "degraded plateau": "level_shift",
    "surge": "spike",
    "decaying tail": "spike",
}


def phase_kind(phase: str) -> str:
    """The anomaly kind one scripted incident phase presents as."""
    if phase.startswith("cascade stage"):
        return "spike"
    try:
        return PHASE_KINDS[phase]
    except KeyError:
        raise CorpusError(f"no kind mapping for phase {phase!r}") from None


#: KPI name → (scenario builder, span the incident occupies in points).
_WEB_SCENARIOS: Dict[str, tuple] = {
    "web-outage": (outage_and_recovery, 12 + 24),
    "web-degradation": (gradual_degradation, 36 + 24),
    "web-flash-crowd": (flash_crowd, 8 + 16),
    "web-cascade": (cascading_failure, 3 * 10 + 2 * 20),
}

_WEB_SIGNAL = SeasonalProfile(
    base_level=5000.0,
    daily_amplitude=0.7,
    daily_harmonics=3,
    weekend_factor=0.85,
    trend=0.03,
    noise_scale=0.03,
    noise_ar=0.5,
    multiplicative_noise=True,
)


class ScenarioDataset(Dataset):
    """One KPI per scripted incident, phases labelled by kind."""

    name = "web-incidents"
    description = (
        "Bursty web traffic with scripted multi-phase incidents "
        "(outage, degradation, flash crowd, cascade)"
    )
    domain = "web"
    interval = 600
    default_weeks = 2.0

    def kpi_names(self) -> List[str]:
        return list(_WEB_SCENARIOS)

    def kpi_interval(self, kpi: str) -> int:
        if kpi not in _WEB_SCENARIOS:
            raise CorpusError(
                f"{self.name}: unknown KPI {kpi!r}; has "
                f"{self.kpi_names()}"
            )
        return self.interval

    def load(
        self,
        kpi: str,
        *,
        weeks: Optional[float] = None,
        seed_offset: int = 0,
    ) -> DatasetItem:
        try:
            build, span = _WEB_SCENARIOS[kpi]
        except KeyError:
            raise CorpusError(
                f"{self.name}: unknown KPI {kpi!r}; has "
                f"{self.kpi_names()}"
            ) from None
        weeks = self.default_weeks if weeks is None else weeks
        index = list(_WEB_SCENARIOS).index(kpi)
        seed = 9000 + 17 * index + seed_offset
        base = generate_kpi(
            weeks=weeks,
            interval=self.interval,
            profile=_WEB_SIGNAL,
            seed=seed,
            name=kpi,
        ).series
        n = len(base)
        if n <= span + 16:
            raise CorpusError(
                f"{kpi}: {weeks} weeks ({n} points) cannot hold a "
                f"{span}-point incident"
            )
        rng = np.random.default_rng(seed + 1)
        at = int(rng.integers(n // 3, n - span - 8))
        incident = build(base, at=at)
        return DatasetItem(
            kpi=kpi,
            series=incident.series,
            windows=list(incident.windows),
            kinds=[phase_kind(phase) for phase in incident.phases],
            metadata={
                "domain": self.domain,
                "scenario": build.__name__,
                "phases": list(incident.phases),
                "incident_at": at,
            },
        )


#: Factory callables for the built-ins (each call makes a fresh
#: instance; the module-level registrations below are the shared ones).
def _builtins() -> List[Dataset]:
    return [
        ProfileDataset(
            "table1",
            "The paper's Table 1 KPIs (PV, #SR, SRT) as generated",
            "search-engine",
            PROFILES,
        ),
        ProfileDataset(
            "isp",
            "The §5.1 ISP volume/latency KPIs (TRAFFIC, RTT)",
            "isp",
            EXTRA_PROFILES,
        ),
        ProfileDataset(
            "telecom",
            "Mobile-network KPIs per the arXiv 2308.16279 taxonomy",
            "telecom",
            TELECOM_PROFILES,
        ),
        ProfileDataset(
            "hpc",
            "HPC node metrics (temperature, power, filesystem latency)",
            "hpc",
            HPC_PROFILES,
        ),
        ScenarioDataset(),
    ]


for _dataset in _builtins():
    register(_dataset)


__all__ = [
    "HPC_PROFILES",
    "PHASE_KINDS",
    "TELECOM_PROFILES",
    "ProfileDataset",
    "ScenarioDataset",
    "phase_kind",
]
