"""``repro-corpus`` — inspect, materialize and smoke the corpus.

Subcommands::

    repro-corpus list [--json]
    repro-corpus materialize DATASET|all --out DIR [--format csv.gz]
                 [--weeks W] [--seed-offset N]
    repro-corpus validate [DATASET ...] [--weeks W]
    repro-corpus smoke [DATASET ...] [--weeks W] [--seed-offset N]
                 [--out REPORT.json] [--min-macro-f1 F]

``validate`` runs every dataset's contract checks (grid, labels,
window/kind pairing, load determinism) and exits non-zero on any
violation. ``smoke`` is the CI corpus gate: load a short slice of each
dataset, run a cheap detector over every KPI as a detection sanity
signal, diagnose every ground-truth window with the default diagnoser,
and write a JSON report whose heart is the kind-confusion matrix.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from .base import CorpusError, Dataset, dataset_names, get_dataset
from .files import materialize

#: Severity quantile above which the smoke detector flags a point.
_SMOKE_DETECT_QUANTILE = 0.99


def _resolve(names: List[str]) -> List[Dataset]:
    if not names or names == ["all"]:
        names = dataset_names()
    return [get_dataset(name) for name in names]


# ----------------------------------------------------------------------
def _cmd_list(args) -> int:
    datasets = _resolve(args.datasets)
    if args.json:
        print(json.dumps([
            {
                "name": ds.name,
                "domain": ds.domain,
                "kpis": ds.kpi_names(),
                "description": ds.description,
            }
            for ds in datasets
        ], indent=2))
        return 0
    width = max((len(ds.name) for ds in datasets), default=4)
    for ds in datasets:
        print(
            f"{ds.name:<{width}}  {ds.domain:<13} "
            f"{len(ds.kpi_names()):>3} KPIs  {ds.description}"
        )
    return 0


def _cmd_materialize(args) -> int:
    out = Path(args.out)
    datasets = _resolve(args.datasets)
    into_subdirs = len(datasets) > 1
    for ds in datasets:
        directory = out / ds.name if into_subdirs else out
        manifest = materialize(
            ds,
            directory,
            fmt=args.format,
            weeks=args.weeks,
            seed_offset=args.seed_offset,
        )
        print(f"{ds.name}: {len(ds.kpi_names())} KPIs -> {manifest.parent}")
    return 0


def _cmd_validate(args) -> int:
    failed = False
    for ds in _resolve(args.datasets):
        problems = ds.validate(weeks=args.weeks)
        if problems:
            failed = True
            for problem in problems:
                print(f"{ds.name}: {problem}")
        else:
            print(f"{ds.name}: ok ({len(ds.kpi_names())} KPIs)")
    return 1 if failed else 0


# ----------------------------------------------------------------------
def _detect_stats(series) -> dict:
    """A cheap detection sanity signal: EWMA severities thresholded at
    a high quantile, scored point-wise against the ground truth. Not
    the paper pipeline — just proof the slice is detectable at all."""
    from ..detectors import EWMA

    severities = EWMA(alpha=0.3).severities(series)
    finite = np.isfinite(severities)
    labels = np.asarray(series.labels, dtype=bool)
    if not finite.any() or not labels.any():
        return {"labeled_points": int(labels.sum()), "recall": None}
    threshold = float(np.quantile(severities[finite], _SMOKE_DETECT_QUANTILE))
    flagged = finite & (severities >= threshold)
    hit = int((flagged & labels).sum())
    return {
        "labeled_points": int(labels.sum()),
        "flagged_points": int(flagged.sum()),
        "recall": round(hit / int(labels.sum()), 4),
    }


def _cmd_smoke(args) -> int:
    from ..diagnosis import (
        default_diagnoser,
        diagnosis_report,
        window_training_rows,
    )

    diagnoser = default_diagnoser()
    report: dict = {"datasets": {}}
    all_true: List[str] = []
    all_pred: List[str] = []
    for ds in _resolve(args.datasets):
        ds_true: List[str] = []
        ds_pred: List[str] = []
        kpis: dict = {}
        for kpi, item in ds.load_all(
            weeks=args.weeks if ds.domain != "file" else None,
            seed_offset=args.seed_offset if ds.domain != "file" else 0,
        ).items():
            features, kinds = window_training_rows(item)
            predicted = diagnoser.predict(features) if len(features) else []
            ds_true.extend(kinds)
            ds_pred.extend(predicted)
            kpis[kpi] = {
                "points": len(item.series),
                "windows": len(item.windows),
                "detect": _detect_stats(item.series),
            }
        entry = {"kpis": kpis}
        if ds_true:
            entry["diagnosis"] = diagnosis_report(ds_true, ds_pred)
        report["datasets"][ds.name] = entry
        all_true.extend(ds_true)
        all_pred.extend(ds_pred)
    if all_true:
        report["overall"] = diagnosis_report(all_true, all_pred)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    overall = report.get("overall", {})
    macro_f1 = overall.get("macro_f1")
    print(
        f"corpus-smoke: {len(all_true)} windows diagnosed, "
        f"macro-F1 {macro_f1 if macro_f1 is not None else 'n/a'} "
        f"-> {out}"
    )
    if macro_f1 is not None and macro_f1 < args.min_macro_f1:
        print(
            f"corpus-smoke: macro-F1 {macro_f1:.4f} below required "
            f"{args.min_macro_f1:.4f}",
            file=sys.stderr,
        )
        return 1
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-corpus",
        description="List, materialize, validate and smoke-test the "
                    "scenario corpus datasets.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show registered datasets")
    p_list.add_argument("datasets", nargs="*", help="default: all")
    p_list.add_argument("--json", action="store_true")
    p_list.set_defaults(func=_cmd_list)

    p_mat = sub.add_parser(
        "materialize", help="write datasets to corpus directories"
    )
    p_mat.add_argument("datasets", nargs="*", help="default: all")
    p_mat.add_argument("--out", required=True, help="output directory")
    p_mat.add_argument(
        "--format", default="csv.gz", choices=["csv", "csv.gz", "ndjson"],
    )
    p_mat.add_argument("--weeks", type=float, default=None,
                       help="override each dataset's default span")
    p_mat.add_argument("--seed-offset", type=int, default=0)
    p_mat.set_defaults(func=_cmd_materialize)

    p_val = sub.add_parser(
        "validate", help="run the dataset contract checks"
    )
    p_val.add_argument("datasets", nargs="*", help="default: all")
    p_val.add_argument("--weeks", type=float, default=None)
    p_val.set_defaults(func=_cmd_validate)

    p_smoke = sub.add_parser(
        "smoke", help="detect + diagnose a short slice of each dataset"
    )
    p_smoke.add_argument("datasets", nargs="*", help="default: all")
    p_smoke.add_argument("--weeks", type=float, default=2.0)
    p_smoke.add_argument("--seed-offset", type=int, default=0)
    p_smoke.add_argument("--out", default="corpus-smoke.json")
    p_smoke.add_argument("--min-macro-f1", type=float, default=0.0)
    p_smoke.set_defaults(func=_cmd_smoke)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CorpusError as error:
        print(f"repro-corpus: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = ["build_parser", "main"]
