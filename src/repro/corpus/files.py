"""Materialized datasets: corpus directories on disk.

``materialize`` writes every KPI of a dataset as one series file
(format picked by suffix: ``.csv``, ``.csv.gz`` or ``.ndjson`` — all
stdlib-only ``repro.timeseries.io`` formats) plus a ``manifest.json``
carrying what the point files cannot: per-window anomaly *kinds*, the
declared interval, and dataset identity. :class:`DirectoryDataset`
reads such a directory back through the same :class:`~.base.Dataset`
contract, so a directory of real traces dropped next to a hand-written
manifest plugs into every sweep exactly like a generator does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from ..timeseries import (
    TimeSeries,
    read_csv,
    read_csv_gz,
    read_ndjson,
    write_csv,
    write_csv_gz,
    write_ndjson,
)
from ..timeseries.windows import AnomalyWindow
from .base import CorpusError, Dataset, DatasetItem

MANIFEST_NAME = "manifest.json"

#: Layout version of ``manifest.json``.
CORPUS_FORMAT_VERSION = 1

#: Suffix → (reader, writer). ``.jsonl`` is accepted as an NDJSON alias
#: on read and write; the canonical materialize suffix is ``.ndjson``.
_FORMATS = {
    ".csv": (read_csv, write_csv),
    ".csv.gz": (read_csv_gz, write_csv_gz),
    ".ndjson": (read_ndjson, write_ndjson),
    ".jsonl": (read_ndjson, write_ndjson),
}


def series_suffix(path: Path) -> str:
    """The format-dispatch suffix of ``path`` (``.csv.gz`` is one unit)."""
    name = path.name.lower()
    for suffix in _FORMATS:
        if name.endswith(suffix):
            return suffix
    raise CorpusError(
        f"{path.name}: unsupported series format; expected one of "
        f"{sorted(_FORMATS)}"
    )


def read_series_file(
    path: Path, *, interval: Optional[int] = None, name: str = ""
) -> TimeSeries:
    reader = _FORMATS[series_suffix(path)][0]
    return reader(path, interval=interval, name=name)


def write_series_file(series: TimeSeries, path: Path) -> None:
    writer = _FORMATS[series_suffix(path)][1]
    writer(series, path)


def _file_stem(kpi: str) -> str:
    """A filesystem-safe stem for one KPI (``#SR`` → ``SR``)."""
    stem = "".join(ch for ch in kpi if ch.isalnum() or ch in "._-")
    return stem or "kpi"


def materialize(
    dataset: Dataset,
    directory: Path,
    *,
    fmt: str = "csv.gz",
    weeks: Optional[float] = None,
    seed_offset: int = 0,
) -> Path:
    """Write ``dataset`` into ``directory`` and return the manifest path.

    The result is self-describing: ``DirectoryDataset(directory)``
    loads it back with the same ground truth, which is exactly what the
    CI corpus-smoke job round-trips.
    """
    suffix = f".{fmt.lstrip('.')}"
    if suffix not in _FORMATS:
        raise CorpusError(
            f"unsupported format {fmt!r}; expected one of "
            f"{sorted(s.lstrip('.') for s in _FORMATS)}"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entries: List[dict] = []
    stems = set()
    for kpi in dataset.kpi_names():
        item = dataset.load(kpi, weeks=weeks, seed_offset=seed_offset)
        stem = _file_stem(kpi)
        while stem in stems:  # two KPIs sanitising to the same file
            stem += "_"
        stems.add(stem)
        filename = stem + suffix
        write_series_file(item.series, directory / filename)
        entries.append(
            {
                "kpi": kpi,
                "file": filename,
                "interval": item.series.interval,
                "start": item.series.start,
                "windows": [[w.begin, w.end] for w in item.windows],
                "kinds": list(item.kinds),
                "metadata": item.metadata,
            }
        )
    manifest = {
        "format_version": CORPUS_FORMAT_VERSION,
        "name": dataset.name,
        "description": dataset.description,
        "domain": dataset.domain,
        "weeks": weeks,
        "seed_offset": seed_offset,
        "kpis": entries,
    }
    manifest_path = directory / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest_path


class DirectoryDataset(Dataset):
    """A materialized corpus directory, loaded back via the manifest.

    File-backed data is a fixed artifact: ``weeks`` and ``seed_offset``
    cannot re-parameterize it, so non-default values raise instead of
    silently returning the wrong slice.
    """

    domain = "file"

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        manifest_path = self.directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise CorpusError(f"{self.directory}: no {MANIFEST_NAME}")
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("format_version")
        if version != CORPUS_FORMAT_VERSION:
            raise CorpusError(
                f"{manifest_path}: unsupported corpus format {version!r} "
                f"(expected {CORPUS_FORMAT_VERSION})"
            )
        self.name = str(manifest.get("name") or self.directory.name)
        self.description = str(manifest.get("description", ""))
        self.domain = str(manifest.get("domain") or "file")
        self._entries: Dict[str, dict] = {}
        for entry in manifest.get("kpis", []):
            kpi = entry.get("kpi")
            if not kpi or "file" not in entry:
                raise CorpusError(
                    f"{manifest_path}: manifest entry missing kpi/file"
                )
            self._entries[str(kpi)] = entry

    def kpi_names(self) -> List[str]:
        return list(self._entries)

    def _entry(self, kpi: str) -> dict:
        try:
            return self._entries[kpi]
        except KeyError:
            raise CorpusError(
                f"{self.name}: unknown KPI {kpi!r}; has "
                f"{self.kpi_names()}"
            ) from None

    def kpi_interval(self, kpi: str) -> int:
        return int(self._entry(kpi)["interval"])

    def load(
        self,
        kpi: str,
        *,
        weeks: Optional[float] = None,
        seed_offset: int = 0,
    ) -> DatasetItem:
        if weeks is not None or seed_offset != 0:
            raise CorpusError(
                f"{self.name} is file-backed; weeks/seed_offset cannot "
                "re-parameterize it"
            )
        entry = self._entry(kpi)
        series = read_series_file(
            self.directory / entry["file"],
            interval=int(entry["interval"]),
            name=kpi,
        )
        return DatasetItem(
            kpi=kpi,
            series=series,
            windows=[
                AnomalyWindow(int(begin), int(end))
                for begin, end in entry.get("windows", [])
            ],
            kinds=[str(kind) for kind in entry.get("kinds", [])],
            metadata=dict(entry.get("metadata") or {}),
        )


__all__ = [
    "CORPUS_FORMAT_VERSION",
    "MANIFEST_NAME",
    "DirectoryDataset",
    "materialize",
    "read_series_file",
    "series_suffix",
    "write_series_file",
]
