"""Shard-aware scheduling: consistent hashing + bounded ingest queues.

The fleet multiplexes many KPIs over a bounded worker pool. Two
mechanisms make the multiplexing predictable:

* **Consistent-hash assignment** — every KPI id maps onto a shard
  through a :class:`ConsistentHashRing` (SHA-256 based, so stable
  across processes and Python hash randomization). Adding shards moves
  only ~1/n of the KPIs, which is what makes future re-sharding cheap;
  a naive ``hash(kpi) % n`` would reshuffle almost everything.
* **Bounded per-KPI ingest queues** — points wait in an
  :class:`IngestQueue` of fixed depth between :meth:`Scheduler.offer`
  and batch dispatch. When a producer outruns the fleet the queue
  applies an explicit backpressure policy instead of growing without
  bound: ``drop-oldest`` (keep the freshest window, the default for
  monitoring data where stale points age out anyway), ``drop-newest``
  (reject the incoming point), or ``block`` (raise
  :class:`BackpressureError` so a synchronous driver can pump before
  retrying — actually blocking would deadlock a single-threaded loop).

Every drop is *returned* to the caller as a reason string so the fleet
layer can count it (``repro_fleet_dropped_points_total``); nothing is
discarded silently.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

#: The recognised backpressure policies of :class:`IngestQueue`.
QUEUE_POLICIES = ("drop-oldest", "drop-newest", "block")


class BackpressureError(RuntimeError):
    """Raised by the ``block`` queue policy when an offer finds the
    queue full: the caller must pump the fleet before retrying."""


def _ring_hash(text: str) -> int:
    """A stable 64-bit hash (process- and run-independent)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Maps KPI ids onto ``n_shards`` shards via consistent hashing.

    Each shard owns ``replicas`` virtual points on a 64-bit ring; a KPI
    lands on the first point clockwise of its own hash. The assignment
    is deterministic (SHA-256, no process-seeded ``hash()``) and
    balanced to within a few percent at the default replica count.
    """

    def __init__(
        self, n_shards: int, replicas: int = 64, salt: str = "repro-fleet"
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.n_shards = n_shards
        self.replicas = replicas
        self.salt = salt
        points = []
        for shard in range(n_shards):
            for replica in range(replicas):
                points.append(
                    (_ring_hash(f"{salt}:{shard}:{replica}"), shard)
                )
        points.sort()
        self._hashes = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    def shard_for(self, kpi_id: str) -> int:
        """The shard owning ``kpi_id`` (stable across processes)."""
        position = bisect.bisect_right(self._hashes, _ring_hash(kpi_id))
        if position == len(self._hashes):
            position = 0
        return self._shards[position]


class IngestQueue:
    """A bounded FIFO of pending points with an explicit drop policy.

    Depth is enforced manually (not via ``deque(maxlen=...)``) so that
    :meth:`requeue_front` — putting back the undispatched tail of a
    batch after a mid-batch failure — can never evict points silently.
    """

    def __init__(self, depth: int, policy: str = "drop-oldest"):
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        if policy not in QUEUE_POLICIES:
            raise ValueError(
                f"unknown queue policy {policy!r}; "
                f"expected one of {QUEUE_POLICIES}"
            )
        self.depth = depth
        self.policy = policy
        self._values: Deque[float] = deque()

    def __len__(self) -> int:
        return len(self._values)

    def offer(self, value: float) -> Optional[str]:
        """Enqueue ``value``; returns the drop reason, or None if the
        point was accepted without displacing anything.

        ``drop-oldest`` accepts the point and reports the evicted
        oldest one; ``drop-newest`` rejects the offered point;
        ``block`` raises :class:`BackpressureError`.
        """
        if len(self._values) < self.depth:
            self._values.append(float(value))
            return None
        if self.policy == "drop-oldest":
            self._values.popleft()
            self._values.append(float(value))
            return "drop-oldest"
        if self.policy == "drop-newest":
            return "drop-newest"
        raise BackpressureError(
            f"ingest queue full ({self.depth} points); pump the fleet "
            "before offering more"
        )

    def drain(self, limit: Optional[int] = None) -> List[float]:
        """Pop up to ``limit`` points (all of them when None), oldest
        first."""
        count = len(self._values) if limit is None else min(
            limit, len(self._values)
        )
        return [self._values.popleft() for _ in range(count)]

    def requeue_front(self, values: Sequence[float]) -> None:
        """Put drained-but-undispatched points back at the *front*, in
        their original order (used after a mid-batch failure)."""
        for value in reversed(values):
            self._values.appendleft(float(value))


class Scheduler:
    """Assigns KPIs to shards and owns their ingest queues.

    The scheduler is pure bookkeeping — it never touches a
    :class:`~repro.core.MonitoringService`. The
    :class:`~repro.fleet.FleetManager` drains its queues shard by shard
    and decides what to do with the points.
    """

    def __init__(
        self,
        n_shards: int = 4,
        queue_depth: int = 1024,
        queue_policy: str = "drop-oldest",
        replicas: int = 64,
    ):
        self.ring = ConsistentHashRing(n_shards, replicas=replicas)
        self.queue_depth = queue_depth
        self.queue_policy = queue_policy
        self._queues: Dict[str, IngestQueue] = {}
        self._shard_of: Dict[str, int] = {}
        #: Per-shard KPI ids in registration order (the deterministic
        #: dispatch order within a shard).
        self._by_shard: List[List[str]] = [
            [] for _ in range(self.ring.n_shards)
        ]

    @property
    def n_shards(self) -> int:
        return self.ring.n_shards

    def register(self, kpi_id: str) -> int:
        """Assign ``kpi_id`` to its shard and create its queue; returns
        the shard index."""
        if kpi_id in self._queues:
            raise ValueError(f"KPI {kpi_id!r} is already registered")
        shard = self.ring.shard_for(kpi_id)
        self._queues[kpi_id] = IngestQueue(
            self.queue_depth, self.queue_policy
        )
        self._shard_of[kpi_id] = shard
        self._by_shard[shard].append(kpi_id)
        return shard

    def unregister(self, kpi_id: str) -> None:
        shard = self._shard_of.pop(kpi_id)
        del self._queues[kpi_id]
        self._by_shard[shard].remove(kpi_id)

    def shard_of(self, kpi_id: str) -> int:
        return self._shard_of[kpi_id]

    def kpis_by_shard(self) -> List[List[str]]:
        """KPI ids grouped per shard (copies; registration order)."""
        return [list(kpis) for kpis in self._by_shard]

    def queue(self, kpi_id: str) -> IngestQueue:
        return self._queues[kpi_id]

    def offer(self, kpi_id: str, value: float) -> Optional[str]:
        """Enqueue one point; returns the drop reason or None."""
        return self._queues[kpi_id].offer(value)

    def drain(self, kpi_id: str, limit: Optional[int] = None) -> List[float]:
        return self._queues[kpi_id].drain(limit)

    def requeue_front(self, kpi_id: str, values: Sequence[float]) -> None:
        self._queues[kpi_id].requeue_front(values)

    def depth(self, kpi_id: str) -> int:
        return len(self._queues[kpi_id])

    def total_depth(self) -> int:
        return sum(len(queue) for queue in self._queues.values())


__all__ = [
    "QUEUE_POLICIES",
    "BackpressureError",
    "ConsistentHashRing",
    "IngestQueue",
    "Scheduler",
]
