"""``python -m repro.fleet`` — the repro-fleet CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
