"""Fleet rollup surfaces: per-KPI and fleet-wide status snapshots.

:class:`FleetStatus` is the "one pane of glass" view of a running
fleet — every KPI's lifecycle state, queue depth, drop/quarantine
counters, and the headline service numbers — as plain data
(:meth:`FleetStatus.as_dict`) plus a terminal rendering
(:meth:`FleetStatus.render`) for the ``repro-fleet status`` CLI.

Every JSON surface renders through one serializer,
:func:`status_document`: ``repro-fleet run --json``, ``repro-fleet
status --json`` (via :meth:`FleetStatus.from_manifest` over a saved
``fleet.json``), and the ``repro-serve`` ingest plane's ``GET /status``
endpoint all emit the same document shape, so operator tooling parses
one schema no matter which surface produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Version tag of the JSON document produced by :func:`status_document`.
STATUS_DOCUMENT_VERSION = 1

#: KPI lifecycle states (see docs/architecture.md, fleet layer):
#: ``active`` — dispatching normally; ``quarantined`` — last batch
#: failed, sitting out an exponential backoff; ``recovered`` — healthy
#: again after a quarantine (informational; behaves like active);
#: ``degraded`` — retries exhausted, points dropped until revive().
ACTIVE = "active"
QUARANTINED = "quarantined"
RECOVERED = "recovered"
DEGRADED = "degraded"
KPI_STATES = (ACTIVE, QUARANTINED, RECOVERED, DEGRADED)


@dataclass(frozen=True)
class KpiStatus:
    """One KPI's health at snapshot time."""

    kpi_id: str
    state: str
    shard: int
    queue_depth: int
    points_ingested: int
    anomalous_points: int
    alerts_opened: int
    retrain_rounds: int
    callback_errors: int
    pending_points: int
    cthld: float
    retries: int = 0
    backoff_remaining: int = 0
    quarantines: int = 0
    last_error: Optional[str] = None
    dropped: Dict[str, int] = field(default_factory=dict)
    #: Closed-alert diagnoses by anomaly kind (spike/dip/ramp/...),
    #: empty when the KPI's service runs without a diagnoser.
    diagnosed: Dict[str, int] = field(default_factory=dict)
    #: Estimated p99 of ``repro_fleet_ingest_seconds{kpi=...}`` in
    #: seconds; None when observability is disabled or no point has
    #: been pumped yet.
    ingest_p99: Optional[float] = None

    @property
    def dropped_total(self) -> int:
        return sum(self.dropped.values())

    @property
    def diagnosed_total(self) -> int:
        return sum(self.diagnosed.values())

    @classmethod
    def from_dict(cls, data: dict) -> "KpiStatus":
        """Inverse of :meth:`as_dict` (used to rebuild statuses that
        crossed a process boundary as JSON)."""
        return cls(
            kpi_id=data["kpi_id"],
            state=data.get("state", ACTIVE),
            shard=int(data.get("shard", 0)),
            queue_depth=int(data.get("queue_depth", 0)),
            points_ingested=int(data.get("points_ingested", 0)),
            anomalous_points=int(data.get("anomalous_points", 0)),
            alerts_opened=int(data.get("alerts_opened", 0)),
            retrain_rounds=int(data.get("retrain_rounds", 0)),
            callback_errors=int(data.get("callback_errors", 0)),
            pending_points=int(data.get("pending_points", 0)),
            cthld=float(data.get("cthld", 0.0)),
            retries=int(data.get("retries", 0)),
            backoff_remaining=int(data.get("backoff_remaining", 0)),
            quarantines=int(data.get("quarantines", 0)),
            last_error=data.get("last_error"),
            dropped={
                reason: int(count)
                for reason, count in data.get("dropped", {}).items()
            },
            diagnosed={
                kind: int(count)
                for kind, count in (data.get("diagnosed") or {}).items()
            },
            ingest_p99=data.get("ingest_p99"),
        )

    def as_dict(self) -> dict:
        return {
            "kpi_id": self.kpi_id,
            "state": self.state,
            "shard": self.shard,
            "queue_depth": self.queue_depth,
            "points_ingested": self.points_ingested,
            "anomalous_points": self.anomalous_points,
            "alerts_opened": self.alerts_opened,
            "retrain_rounds": self.retrain_rounds,
            "callback_errors": self.callback_errors,
            "pending_points": self.pending_points,
            "cthld": self.cthld,
            "retries": self.retries,
            "backoff_remaining": self.backoff_remaining,
            "quarantines": self.quarantines,
            "last_error": self.last_error,
            "dropped": dict(self.dropped),
            "diagnosed": dict(self.diagnosed),
            "ingest_p99": self.ingest_p99,
        }


@dataclass(frozen=True)
class FleetStatus:
    """The whole fleet's health at snapshot time."""

    kpis: Tuple[KpiStatus, ...]
    cycles: int = 0

    @classmethod
    def from_manifest(cls, manifest: dict) -> "FleetStatus":
        """Rebuild a status snapshot from a saved ``fleet.json``.

        Manifests written before the per-KPI service stats were
        embedded (format 1, pre-serve) simply default the missing
        numbers to zero — the lifecycle fields were always there.
        """
        kpis = []
        for entry in manifest.get("kpis", []):
            stats = entry.get("stats", {})
            kpis.append(
                KpiStatus(
                    kpi_id=entry["kpi_id"],
                    state=entry.get("state", ACTIVE),
                    shard=int(entry.get("shard", 0)),
                    queue_depth=len(entry.get("queue", [])),
                    points_ingested=int(stats.get("points_ingested", 0)),
                    anomalous_points=int(stats.get("anomalous_points", 0)),
                    alerts_opened=int(stats.get("alerts_opened", 0)),
                    retrain_rounds=int(stats.get("retrain_rounds", 0)),
                    callback_errors=int(stats.get("callback_errors", 0)),
                    pending_points=int(stats.get("pending_points", 0)),
                    cthld=float(stats.get("cthld", 0.0)),
                    retries=int(entry.get("retries", 0)),
                    backoff_remaining=int(entry.get("backoff_remaining", 0)),
                    quarantines=int(entry.get("quarantines", 0)),
                    last_error=entry.get("last_error"),
                    dropped={
                        reason: int(count)
                        for reason, count in entry.get("dropped", {}).items()
                    },
                    diagnosed={
                        kind: int(count)
                        for kind, count in (
                            stats.get("alerts_diagnosed") or {}
                        ).items()
                    },
                )
            )
        return cls(kpis=tuple(kpis), cycles=int(manifest.get("cycles", 0)))

    @classmethod
    def from_dict(cls, data: dict) -> "FleetStatus":
        """Inverse of :meth:`as_dict`. The aggregate totals are
        recomputed from the per-KPI rows, not trusted from the wire."""
        return cls(
            kpis=tuple(
                KpiStatus.from_dict(kpi) for kpi in data.get("kpis", [])
            ),
            cycles=int(data.get("cycles", 0)),
        )

    @property
    def n_kpis(self) -> int:
        return len(self.kpis)

    @property
    def states(self) -> Dict[str, int]:
        """KPI count per lifecycle state (all states present, 0s kept)."""
        counts = {state: 0 for state in KPI_STATES}
        for kpi in self.kpis:
            counts[kpi.state] = counts.get(kpi.state, 0) + 1
        return counts

    @property
    def total_queue_depth(self) -> int:
        return sum(kpi.queue_depth for kpi in self.kpis)

    @property
    def total_dropped(self) -> int:
        return sum(kpi.dropped_total for kpi in self.kpis)

    @property
    def total_quarantines(self) -> int:
        return sum(kpi.quarantines for kpi in self.kpis)

    @property
    def total_points_ingested(self) -> int:
        return sum(kpi.points_ingested for kpi in self.kpis)

    @property
    def total_alerts_opened(self) -> int:
        return sum(kpi.alerts_opened for kpi in self.kpis)

    @property
    def total_alerts_diagnosed(self) -> int:
        return sum(kpi.diagnosed_total for kpi in self.kpis)

    @property
    def diagnosed_kinds(self) -> Dict[str, int]:
        """Fleet-wide closed-alert diagnoses summed per anomaly kind."""
        counts: Dict[str, int] = {}
        for kpi in self.kpis:
            for kind, count in kpi.diagnosed.items():
                counts[kind] = counts.get(kind, 0) + count
        return dict(sorted(counts.items()))

    def as_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "n_kpis": self.n_kpis,
            "states": self.states,
            "total_queue_depth": self.total_queue_depth,
            "total_dropped": self.total_dropped,
            "total_quarantines": self.total_quarantines,
            "total_points_ingested": self.total_points_ingested,
            "total_alerts_opened": self.total_alerts_opened,
            "total_alerts_diagnosed": self.total_alerts_diagnosed,
            "diagnosed_kinds": self.diagnosed_kinds,
            "kpis": [kpi.as_dict() for kpi in self.kpis],
        }

    def render(self) -> str:
        """A fixed-width table for terminals (the ``status`` CLI)."""
        header = (
            f"{'KPI':<20} {'STATE':<12} {'SHARD':>5} {'QUEUE':>6} "
            f"{'POINTS':>8} {'ALERTS':>7} {'DIAG':>5} {'DROPPED':>8} "
            f"{'QUAR':>5} {'CTHLD':>8} {'ING-P99':>9}"
        )
        lines = [header, "-" * len(header)]
        for kpi in self.kpis:
            p99 = (
                "-" if kpi.ingest_p99 is None
                else f"{kpi.ingest_p99:.4g}s"
            )
            lines.append(
                f"{kpi.kpi_id:<20} {kpi.state:<12} {kpi.shard:>5} "
                f"{kpi.queue_depth:>6} {kpi.points_ingested:>8} "
                f"{kpi.alerts_opened:>7} {kpi.diagnosed_total:>5} "
                f"{kpi.dropped_total:>8} {kpi.quarantines:>5} "
                f"{kpi.cthld:>8.4f} {p99:>9}"
            )
        states = self.states
        summary = ", ".join(
            f"{count} {state}" for state, count in states.items() if count
        )
        kinds = self.diagnosed_kinds
        diagnosed = (
            " [" + ", ".join(f"{k}: {v}" for k, v in kinds.items()) + "]"
            if kinds
            else ""
        )
        lines.append("-" * len(header))
        lines.append(
            f"{self.n_kpis} KPIs ({summary or 'none'}); "
            f"{self.total_points_ingested} points, "
            f"{self.total_alerts_opened} alerts, "
            f"{self.total_alerts_diagnosed} diagnosed{diagnosed}, "
            f"{self.total_dropped} dropped, "
            f"{self.total_quarantines} quarantines, "
            f"{self.cycles} pump cycles"
        )
        return "\n".join(lines)


def merge_statuses(statuses: Sequence[FleetStatus]) -> FleetStatus:
    """Concatenate per-shard-process statuses into one fleet view.

    The serve plane's shards are disjoint sub-fleets (each KPI lives in
    exactly one shard process), so the merge is a plain concatenation
    in shard order; ``cycles`` sums because every shard pumps its own
    dispatch loop independently.
    """
    kpis: List[KpiStatus] = []
    for status in statuses:
        kpis.extend(status.kpis)
    return FleetStatus(
        kpis=tuple(kpis),
        cycles=sum(status.cycles for status in statuses),
    )


def status_document(
    status: FleetStatus,
    *,
    source: str = "live",
    shards: Optional[Sequence[dict]] = None,
) -> dict:
    """The one JSON document every status surface renders.

    ``source`` names the producing surface (``live`` for an in-process
    fleet, ``manifest`` for a saved directory, ``serve`` for the HTTP
    plane); ``shards`` optionally carries the serve plane's per-process
    supervision table (pid, restarts, liveness) alongside the fleet
    rollup.
    """
    document = {
        "version": STATUS_DOCUMENT_VERSION,
        "source": source,
        "fleet": status.as_dict(),
    }
    if shards is not None:
        document["shards"] = [dict(shard) for shard in shards]
    return document


__all__ = [
    "ACTIVE",
    "QUARANTINED",
    "RECOVERED",
    "DEGRADED",
    "KPI_STATES",
    "STATUS_DOCUMENT_VERSION",
    "KpiStatus",
    "FleetStatus",
    "merge_statuses",
    "status_document",
]
