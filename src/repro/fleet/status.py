"""Fleet rollup surfaces: per-KPI and fleet-wide status snapshots.

:class:`FleetStatus` is the "one pane of glass" view of a running
fleet — every KPI's lifecycle state, queue depth, drop/quarantine
counters, and the headline service numbers — as plain data
(:meth:`FleetStatus.as_dict`) plus a terminal rendering
(:meth:`FleetStatus.render`) for the ``repro-fleet status`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: KPI lifecycle states (see docs/architecture.md, fleet layer):
#: ``active`` — dispatching normally; ``quarantined`` — last batch
#: failed, sitting out an exponential backoff; ``recovered`` — healthy
#: again after a quarantine (informational; behaves like active);
#: ``degraded`` — retries exhausted, points dropped until revive().
ACTIVE = "active"
QUARANTINED = "quarantined"
RECOVERED = "recovered"
DEGRADED = "degraded"
KPI_STATES = (ACTIVE, QUARANTINED, RECOVERED, DEGRADED)


@dataclass(frozen=True)
class KpiStatus:
    """One KPI's health at snapshot time."""

    kpi_id: str
    state: str
    shard: int
    queue_depth: int
    points_ingested: int
    anomalous_points: int
    alerts_opened: int
    retrain_rounds: int
    callback_errors: int
    pending_points: int
    cthld: float
    retries: int = 0
    backoff_remaining: int = 0
    quarantines: int = 0
    last_error: Optional[str] = None
    dropped: Dict[str, int] = field(default_factory=dict)
    #: Estimated p99 of ``repro_fleet_ingest_seconds{kpi=...}`` in
    #: seconds; None when observability is disabled or no point has
    #: been pumped yet.
    ingest_p99: Optional[float] = None

    @property
    def dropped_total(self) -> int:
        return sum(self.dropped.values())

    def as_dict(self) -> dict:
        return {
            "kpi_id": self.kpi_id,
            "state": self.state,
            "shard": self.shard,
            "queue_depth": self.queue_depth,
            "points_ingested": self.points_ingested,
            "anomalous_points": self.anomalous_points,
            "alerts_opened": self.alerts_opened,
            "retrain_rounds": self.retrain_rounds,
            "callback_errors": self.callback_errors,
            "pending_points": self.pending_points,
            "cthld": self.cthld,
            "retries": self.retries,
            "backoff_remaining": self.backoff_remaining,
            "quarantines": self.quarantines,
            "last_error": self.last_error,
            "dropped": dict(self.dropped),
            "ingest_p99": self.ingest_p99,
        }


@dataclass(frozen=True)
class FleetStatus:
    """The whole fleet's health at snapshot time."""

    kpis: Tuple[KpiStatus, ...]
    cycles: int = 0

    @property
    def n_kpis(self) -> int:
        return len(self.kpis)

    @property
    def states(self) -> Dict[str, int]:
        """KPI count per lifecycle state (all states present, 0s kept)."""
        counts = {state: 0 for state in KPI_STATES}
        for kpi in self.kpis:
            counts[kpi.state] = counts.get(kpi.state, 0) + 1
        return counts

    @property
    def total_queue_depth(self) -> int:
        return sum(kpi.queue_depth for kpi in self.kpis)

    @property
    def total_dropped(self) -> int:
        return sum(kpi.dropped_total for kpi in self.kpis)

    @property
    def total_quarantines(self) -> int:
        return sum(kpi.quarantines for kpi in self.kpis)

    @property
    def total_points_ingested(self) -> int:
        return sum(kpi.points_ingested for kpi in self.kpis)

    @property
    def total_alerts_opened(self) -> int:
        return sum(kpi.alerts_opened for kpi in self.kpis)

    def as_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "n_kpis": self.n_kpis,
            "states": self.states,
            "total_queue_depth": self.total_queue_depth,
            "total_dropped": self.total_dropped,
            "total_quarantines": self.total_quarantines,
            "total_points_ingested": self.total_points_ingested,
            "total_alerts_opened": self.total_alerts_opened,
            "kpis": [kpi.as_dict() for kpi in self.kpis],
        }

    def render(self) -> str:
        """A fixed-width table for terminals (the ``status`` CLI)."""
        header = (
            f"{'KPI':<20} {'STATE':<12} {'SHARD':>5} {'QUEUE':>6} "
            f"{'POINTS':>8} {'ALERTS':>7} {'DROPPED':>8} {'QUAR':>5} "
            f"{'CTHLD':>8} {'ING-P99':>9}"
        )
        lines = [header, "-" * len(header)]
        for kpi in self.kpis:
            p99 = (
                "-" if kpi.ingest_p99 is None
                else f"{kpi.ingest_p99:.4g}s"
            )
            lines.append(
                f"{kpi.kpi_id:<20} {kpi.state:<12} {kpi.shard:>5} "
                f"{kpi.queue_depth:>6} {kpi.points_ingested:>8} "
                f"{kpi.alerts_opened:>7} {kpi.dropped_total:>8} "
                f"{kpi.quarantines:>5} {kpi.cthld:>8.4f} {p99:>9}"
            )
        states = self.states
        summary = ", ".join(
            f"{count} {state}" for state, count in states.items() if count
        )
        lines.append("-" * len(header))
        lines.append(
            f"{self.n_kpis} KPIs ({summary or 'none'}); "
            f"{self.total_points_ingested} points, "
            f"{self.total_alerts_opened} alerts, "
            f"{self.total_dropped} dropped, "
            f"{self.total_quarantines} quarantines, "
            f"{self.cycles} pump cycles"
        )
        return "\n".join(lines)


__all__ = [
    "ACTIVE",
    "QUARANTINED",
    "RECOVERED",
    "DEGRADED",
    "KPI_STATES",
    "KpiStatus",
    "FleetStatus",
]
