"""The fleet manager: N concurrent KPI monitors, fault-isolated.

Opprentice's deployment story (§5.8) is per-KPI, but a real monitoring
team runs hundreds of KPIs at once. :class:`FleetManager` owns one
:class:`~repro.core.MonitoringService` per KPI and adds the operational
layer around them:

* **Sharded dispatch** — KPIs are consistent-hashed onto shards
  (:class:`~repro.fleet.scheduler.Scheduler`); :meth:`pump` drains each
  KPI's bounded ingest queue in batches and can run independent shards
  concurrently through :func:`~repro.core.execution.map_ordered`.
* **Fault isolation** — an exception from one KPI's detector bank or
  classifier quarantines *that KPI only*: its failing point is dropped
  (counted), the rest of its batch goes back to the queue front, and it
  sits out an exponential backoff (in pump cycles) before retrying.
  After ``max_retries`` consecutive failures the KPI is ``degraded``
  and drops points at offer time until an operator :meth:`revive`\\ s
  it. The other KPIs never see any of this — their alert streams are
  bit-identical to a fleet without the fault.
* **Staggered retraining** — :meth:`retrain` runs at most
  ``max_concurrent_retrains`` KPIs per wave, so the weekly retraining
  spike (§5.8: minutes per KPI) never stalls the whole fleet at once.
* **Crash recovery** — :meth:`save` writes a fleet directory (manifest
  + per-KPI model and service checkpoints); :meth:`restore` rebuilds
  the fleet mid-run, reproducing the remaining alert stream exactly.
* **Rollups** — kpi_id-tagged gauges/counters on the global provider,
  a :class:`~repro.fleet.status.FleetStatus` snapshot API, and
  :meth:`metrics_snapshot` merging every per-service registry into one
  exportable document.

Determinism: dispatch order is shard index, then registration order
within the shard, then queue order — independent of dict hashing and
of the worker count (``map_ordered`` preserves item order, and shards
share no state).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.execution import map_ordered
from ..core.persistence import (
    load_model,
    load_service_checkpoint,
    save_model,
    save_service_checkpoint,
)
from ..core.service import AlertEvent, MonitoringService
from ..obs import estimate_percentile, get_provider, merge_snapshots
from ..timeseries import TimeSeries
from .scheduler import Scheduler
from .status import (
    ACTIVE,
    DEGRADED,
    KPI_STATES,
    QUARANTINED,
    RECOVERED,
    FleetStatus,
    KpiStatus,
)

#: On-disk layout version of the fleet directory written by
#: :meth:`FleetManager.save`.
FLEET_FORMAT_VERSION = 1

#: KPI ids become directory names under ``<fleet>/kpis/``, so they are
#: restricted to a filesystem-safe alphabet (no separators, no leading
#: dot, bounded length).
_KPI_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")

ServiceFactory = Callable[[str], MonitoringService]


def _validate_kpi_id(kpi_id: str) -> str:
    if not _KPI_ID_PATTERN.match(kpi_id):
        raise ValueError(
            f"invalid KPI id {kpi_id!r}: must match "
            "[A-Za-z0-9][A-Za-z0-9._-]{0,127} (it names a checkpoint "
            "directory)"
        )
    return kpi_id


@dataclass
class _KpiHandle:
    """The fleet's mutable bookkeeping around one service."""

    service: MonitoringService
    state: str = ACTIVE
    retries: int = 0
    backoff_remaining: int = 0
    quarantines: int = 0
    last_error: Optional[str] = None
    dropped: Dict[str, int] = field(default_factory=dict)


class FleetManager:
    """Orchestrates many per-KPI monitoring services as one fleet."""

    def __init__(
        self,
        *,
        n_shards: int = 4,
        queue_depth: int = 1024,
        queue_policy: str = "drop-oldest",
        batch_points: int = 64,
        backoff_base: int = 1,
        backoff_cap: int = 64,
        max_retries: int = 5,
        max_concurrent_retrains: int = 2,
        dispatch_workers: int = 1,
        service_factory: Optional[ServiceFactory] = None,
    ):
        if batch_points < 1:
            raise ValueError("batch_points must be >= 1")
        if backoff_base < 1 or backoff_cap < backoff_base:
            raise ValueError(
                "backoff must satisfy 1 <= backoff_base <= backoff_cap"
            )
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if max_concurrent_retrains < 1:
            raise ValueError("max_concurrent_retrains must be >= 1")
        self._scheduler = Scheduler(
            n_shards=n_shards,
            queue_depth=queue_depth,
            queue_policy=queue_policy,
        )
        self.batch_points = batch_points
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_retries = max_retries
        self.max_concurrent_retrains = max_concurrent_retrains
        self.dispatch_workers = dispatch_workers
        self._service_factory = service_factory
        self._kpis: Dict[str, _KpiHandle] = {}
        self._cycles = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    @property
    def kpi_ids(self) -> List[str]:
        return list(self._kpis)

    def __len__(self) -> int:
        return len(self._kpis)

    def __contains__(self, kpi_id: str) -> bool:
        return kpi_id in self._kpis

    def service(self, kpi_id: str) -> MonitoringService:
        return self._kpis[kpi_id].service

    def state(self, kpi_id: str) -> str:
        return self._kpis[kpi_id].state

    def shard_of(self, kpi_id: str) -> int:
        return self._scheduler.shard_of(kpi_id)

    def add_kpi(
        self,
        kpi_id: str,
        *,
        service: Optional[MonitoringService] = None,
        bootstrap: Optional[TimeSeries] = None,
    ) -> MonitoringService:
        """Register a KPI, optionally bootstrapping its service.

        Either pass an already-bootstrapped ``service``, or a labelled
        ``bootstrap`` series (a service is then built via the fleet's
        ``service_factory``, or with defaults). The series is renamed to
        ``kpi_id`` so every :class:`~repro.core.AlertEvent` the fleet
        emits carries the right attribution.
        """
        _validate_kpi_id(kpi_id)
        if kpi_id in self._kpis:
            raise ValueError(f"KPI {kpi_id!r} is already managed")
        if service is None:
            service = (
                self._service_factory(kpi_id)
                if self._service_factory is not None
                else MonitoringService()
            )
        if bootstrap is not None:
            if bootstrap.name != kpi_id:
                bootstrap = TimeSeries(
                    values=bootstrap.values,
                    interval=bootstrap.interval,
                    start=bootstrap.start,
                    labels=bootstrap.labels,
                    name=kpi_id,
                )
            service.bootstrap(bootstrap)
        if service.kpi is None:
            raise ValueError(
                "the fleet manages bootstrapped services only: pass "
                "bootstrap= or a service that already ran bootstrap()"
            )
        if service.kpi != kpi_id:
            raise ValueError(
                f"service monitors KPI {service.kpi!r}, not {kpi_id!r}; "
                "alert attribution would be wrong"
            )
        self._scheduler.register(kpi_id)
        self._kpis[kpi_id] = _KpiHandle(service=service)
        # Pre-register the drop counter at zero so a clean run reports
        # a *measured* zero drop ratio instead of "no data" (the SLO
        # gate rightly refuses to pass an absent numerator).
        get_provider().counter(
            "repro_fleet_dropped_points_total",
            "Fleet ingest points dropped, by KPI and reason",
            kpi=kpi_id,
            reason=self._scheduler.queue_policy,
        )
        self._refresh_state_gauges()
        return service

    def remove_kpi(self, kpi_id: str) -> None:
        del self._kpis[kpi_id]
        self._scheduler.unregister(kpi_id)
        self._refresh_state_gauges()

    def revive(self, kpi_id: str) -> None:
        """Operator override: put a quarantined/degraded KPI back into
        rotation with a clean retry budget."""
        handle = self._kpis[kpi_id]
        handle.state = ACTIVE
        handle.retries = 0
        handle.backoff_remaining = 0
        handle.last_error = None
        self._refresh_state_gauges()
        get_provider().emit("kpi_revived", kpi=kpi_id)

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------
    def offer(self, kpi_id: str, value: float) -> bool:
        """Queue one point for ``kpi_id``; returns True if it was
        accepted without displacing another point.

        Degraded KPIs drop at offer time (reason ``degraded``); a full
        queue applies the configured backpressure policy, and any drop
        is counted in ``repro_fleet_dropped_points_total``.
        """
        handle = self._kpis[kpi_id]
        if handle.state == DEGRADED:
            self._record_drop(kpi_id, handle, "degraded")
            return False
        reason = self._scheduler.offer(kpi_id, value)
        self._queue_gauge(kpi_id)
        if reason is not None:
            self._record_drop(kpi_id, handle, reason)
            return False
        return True

    def offer_many(self, kpi_id: str, values: Sequence[float]) -> int:
        """Queue many points; returns how many were accepted."""
        return sum(1 for value in values if self.offer(kpi_id, value))

    def pump(
        self, max_points_per_kpi: Optional[int] = None
    ) -> List[AlertEvent]:
        """One dispatch cycle: drain every KPI's queue in batches.

        Shards run through :func:`~repro.core.execution.map_ordered`
        (``dispatch_workers`` > 1 overlaps them); within a shard KPIs
        run in registration order. Returns every alert event raised this
        cycle, in deterministic dispatch order.
        """
        obs = get_provider()
        limit = (
            self.batch_points
            if max_points_per_kpi is None
            else max_points_per_kpi
        )
        shards = [
            (index, kpis)
            for index, kpis in enumerate(self._scheduler.kpis_by_shard())
            if kpis
        ]
        with obs.span(
            "fleet.pump", n_kpis=len(self._kpis), n_shards=len(shards)
        ) as span:
            results = map_ordered(
                lambda shard: [
                    self._pump_kpi(kpi_id, limit) for kpi_id in shard[1]
                ],
                shards,
                workers=self.dispatch_workers,
            )
            events = [
                event
                for shard_events in results
                for kpi_events in shard_events
                for event in kpi_events
            ]
            span.set("n_events", len(events))
        self._cycles += 1
        self._refresh_state_gauges()
        return events

    def _pump_kpi(self, kpi_id: str, limit: int) -> List[AlertEvent]:
        """Dispatch one KPI's next batch, isolating its failures."""
        handle = self._kpis[kpi_id]
        if handle.state == DEGRADED:
            return []
        if handle.state == QUARANTINED and handle.backoff_remaining > 0:
            handle.backoff_remaining -= 1
            return []
        batch = self._scheduler.drain(kpi_id, limit)
        events: List[AlertEvent] = []
        ingest_timer = get_provider().timer(
            "repro_fleet_ingest_seconds",
            "Per-point fleet ingest wall time (queue drain to alert "
            "decision), labelled by KPI",
            kpi=kpi_id,
        )
        for position, value in enumerate(batch):
            try:
                with ingest_timer:
                    events.extend(handle.service.ingest(value))
            except Exception as error:  # repro: disable=api-hygiene — fault isolation: one KPI's detector/classifier failure must quarantine that KPI, not crash the fleet
                self._record_drop(kpi_id, handle, "error")
                self._scheduler.requeue_front(kpi_id, batch[position + 1:])
                self._on_failure(kpi_id, handle, error)
                self._queue_gauge(kpi_id)
                return events
        if batch:
            self._on_success(kpi_id, handle)
        self._queue_gauge(kpi_id)
        return events

    def drain_all(
        self, max_cycles: int = 1_000_000
    ) -> List[AlertEvent]:
        """Pump until every queue is empty (or only unpumpable KPIs —
        quarantined/degraded — still hold points)."""
        events: List[AlertEvent] = []
        for _ in range(max_cycles):
            if not self._has_pumpable_points():
                break
            events.extend(self.pump())
        return events

    def _has_pumpable_points(self) -> bool:
        for kpi_id, handle in self._kpis.items():
            if handle.state == DEGRADED:
                continue
            if self._scheduler.depth(kpi_id) > 0:
                return True
        return False

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_failure(
        self, kpi_id: str, handle: _KpiHandle, error: BaseException
    ) -> None:
        obs = get_provider()
        handle.retries += 1
        handle.quarantines += 1
        handle.last_error = repr(error)
        obs.counter(
            "repro_fleet_quarantines_total",
            "KPI quarantine transitions after a dispatch failure",
            kpi=kpi_id,
        ).inc()
        if handle.retries > self.max_retries:
            handle.state = DEGRADED
            handle.backoff_remaining = 0
            obs.emit(
                "kpi_degraded",
                kpi=kpi_id,
                retries=handle.retries,
                error=handle.last_error,
            )
        else:
            backoff = min(
                self.backoff_base * 2 ** (handle.retries - 1),
                self.backoff_cap,
            )
            handle.state = QUARANTINED
            handle.backoff_remaining = backoff
            obs.emit(
                "kpi_quarantined",
                kpi=kpi_id,
                retries=handle.retries,
                backoff_cycles=backoff,
                error=handle.last_error,
            )
        self._refresh_state_gauges()

    def _on_success(self, kpi_id: str, handle: _KpiHandle) -> None:
        if handle.state == QUARANTINED:
            handle.state = RECOVERED
            handle.retries = 0
            handle.backoff_remaining = 0
            get_provider().emit(
                "kpi_recovered", kpi=kpi_id, quarantines=handle.quarantines
            )
            self._refresh_state_gauges()

    def _record_drop(
        self, kpi_id: str, handle: _KpiHandle, reason: str
    ) -> None:
        handle.dropped[reason] = handle.dropped.get(reason, 0) + 1
        get_provider().counter(
            "repro_fleet_dropped_points_total",
            "Fleet ingest points dropped, by KPI and reason",
            kpi=kpi_id,
            reason=reason,
        ).inc()

    # ------------------------------------------------------------------
    # Labels + staggered retraining
    # ------------------------------------------------------------------
    def submit_labels(self, kpi_id: str, windows) -> None:
        self._kpis[kpi_id].service.submit_labels(windows)

    def retrain(
        self, kpi_ids: Optional[Sequence[str]] = None
    ) -> Dict[str, Optional[float]]:
        """Retrain KPIs in waves of ``max_concurrent_retrains``.

        Targets every non-degraded KPI with pending points unless
        ``kpi_ids`` narrows the set. A retraining failure quarantines
        that KPI like a dispatch failure would. Returns
        ``{kpi_id: new_cthld}`` (None for a KPI whose retrain failed).
        """
        obs = get_provider()
        targets = [
            kpi_id
            for kpi_id in (kpi_ids if kpi_ids is not None else self._kpis)
            if self._kpis[kpi_id].state != DEGRADED
            and self._kpis[kpi_id].service.pending_points > 0
        ]
        results: Dict[str, Optional[float]] = {}
        with obs.span("fleet.retrain", n_kpis=len(targets)):
            gauge = obs.gauge(
                "repro_fleet_retraining",
                "KPIs retraining in the current wave",
            )
            for begin in range(0, len(targets), self.max_concurrent_retrains):
                wave = targets[begin:begin + self.max_concurrent_retrains]
                gauge.set(len(wave))
                outcomes = map_ordered(
                    self._retrain_one, wave, workers=len(wave)
                )
                results.update(dict(zip(wave, outcomes)))
            gauge.set(0)
        self._refresh_state_gauges()
        return results

    def _retrain_one(self, kpi_id: str) -> Optional[float]:
        handle = self._kpis[kpi_id]
        try:
            return handle.service.retrain()
        except Exception as error:  # repro: disable=api-hygiene — fault isolation: a failed retrain quarantines the KPI instead of aborting the fleet's wave
            self._on_failure(kpi_id, handle, error)
            return None

    # ------------------------------------------------------------------
    # Rollups
    # ------------------------------------------------------------------
    def _ingest_p99(self, kpi_id: str) -> Optional[float]:
        """Estimated p99 of ``repro_fleet_ingest_seconds{kpi=...}`` from
        the global provider (None when obs is off or no points yet)."""
        histogram = get_provider().histogram(
            "repro_fleet_ingest_seconds",
            "Per-point fleet ingest wall time (queue drain to alert "
            "decision), labelled by KPI",
            kpi=kpi_id,
        )
        counts = getattr(histogram, "counts", None)
        if counts is None:  # NullProvider handle has no buckets
            return None
        cumulative: List[float] = []
        running = 0.0
        for count in counts:
            running += count
            cumulative.append(running)
        return estimate_percentile(histogram.buckets, cumulative, 0.99)

    def status(self) -> FleetStatus:
        """A point-in-time :class:`FleetStatus` snapshot."""
        kpis = []
        for kpi_id, handle in self._kpis.items():
            stats = handle.service.stats
            kpis.append(
                KpiStatus(
                    kpi_id=kpi_id,
                    state=handle.state,
                    shard=self._scheduler.shard_of(kpi_id),
                    queue_depth=self._scheduler.depth(kpi_id),
                    points_ingested=stats.points_ingested,
                    anomalous_points=stats.anomalous_points,
                    alerts_opened=stats.alerts_opened,
                    retrain_rounds=stats.retrain_rounds,
                    callback_errors=stats.callback_errors,
                    pending_points=handle.service.pending_points,
                    cthld=handle.service.cthld,
                    retries=handle.retries,
                    backoff_remaining=handle.backoff_remaining,
                    quarantines=handle.quarantines,
                    last_error=handle.last_error,
                    dropped=dict(handle.dropped),
                    diagnosed=stats.alerts_diagnosed,
                    ingest_p99=self._ingest_p99(kpi_id),
                )
            )
        return FleetStatus(kpis=tuple(kpis), cycles=self._cycles)

    def metrics_snapshot(self) -> dict:
        """Every per-service registry merged into one snapshot, samples
        tagged ``kpi=<id>`` (see :func:`~repro.obs.merge_snapshots`)."""
        return merge_snapshots(
            {
                kpi_id: handle.service.stats.registry.snapshot()
                for kpi_id, handle in self._kpis.items()
            },
            label="kpi",
        )

    def _refresh_state_gauges(self) -> None:
        obs = get_provider()
        counts = {state: 0 for state in KPI_STATES}
        for handle in self._kpis.values():
            counts[handle.state] += 1
        for state, count in counts.items():
            obs.gauge(
                "repro_fleet_kpis",
                "Managed KPIs by lifecycle state",
                state=state,
            ).set(count)

    def _queue_gauge(self, kpi_id: str) -> None:
        get_provider().gauge(
            "repro_fleet_queue_depth",
            "Pending points in a KPI's ingest queue",
            kpi=kpi_id,
        ).set(self._scheduler.depth(kpi_id))

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def save(
        self,
        directory: Union[str, Path],
        *,
        include_features: bool = True,
    ) -> Path:
        """Write the fleet to ``directory``: a ``fleet.json`` manifest
        (config, per-KPI lifecycle state, queued points) plus
        ``kpis/<id>/model.json`` and ``kpis/<id>/service.json``.

        ``include_features=False`` shrinks the checkpoints at the cost
        of one full refit per KPI on its first post-restore retrain.
        """
        root = Path(directory)
        obs = get_provider()
        with obs.span("fleet.save", n_kpis=len(self._kpis)):
            (root / "kpis").mkdir(parents=True, exist_ok=True)
            entries = []
            for kpi_id, handle in self._kpis.items():
                kpi_dir = root / "kpis" / kpi_id
                kpi_dir.mkdir(parents=True, exist_ok=True)
                save_model(handle.service.opprentice, kpi_dir / "model.json")
                save_service_checkpoint(
                    handle.service,
                    kpi_dir / "service.json",
                    include_features=include_features,
                )
                stats = handle.service.stats
                entries.append(
                    {
                        "kpi_id": kpi_id,
                        "state": handle.state,
                        "shard": self._scheduler.shard_of(kpi_id),
                        "retries": handle.retries,
                        "backoff_remaining": handle.backoff_remaining,
                        "quarantines": handle.quarantines,
                        "last_error": handle.last_error,
                        "dropped": dict(handle.dropped),
                        # Headline service numbers, embedded so
                        # `repro-fleet status --json` can render a full
                        # FleetStatus without loading any model
                        # (restore ignores them: they live in the
                        # service checkpoint too).
                        "stats": {
                            "points_ingested": stats.points_ingested,
                            "anomalous_points": stats.anomalous_points,
                            "alerts_opened": stats.alerts_opened,
                            "retrain_rounds": stats.retrain_rounds,
                            "callback_errors": stats.callback_errors,
                            "alerts_diagnosed": stats.alerts_diagnosed,
                            "pending_points": handle.service.pending_points,
                            "cthld": handle.service.cthld,
                        },
                        "queue": self._scheduler.queue(kpi_id).drain(None),
                    }
                )
                # drain() above emptied the live queue; put the points
                # straight back so save() is a pure observer.
                self._scheduler.requeue_front(kpi_id, entries[-1]["queue"])
            manifest = {
                "format_version": FLEET_FORMAT_VERSION,
                "config": {
                    "n_shards": self._scheduler.n_shards,
                    "queue_depth": self._scheduler.queue_depth,
                    "queue_policy": self._scheduler.queue_policy,
                    "batch_points": self.batch_points,
                    "backoff_base": self.backoff_base,
                    "backoff_cap": self.backoff_cap,
                    "max_retries": self.max_retries,
                    "max_concurrent_retrains": self.max_concurrent_retrains,
                    "dispatch_workers": self.dispatch_workers,
                },
                "cycles": self._cycles,
                "kpis": entries,
            }
            (root / "fleet.json").write_text(json.dumps(manifest, indent=2))
        return root

    @classmethod
    def restore(
        cls,
        directory: Union[str, Path],
        *,
        service_factory: Optional[ServiceFactory] = None,
        dispatch_workers: Optional[int] = None,
        kpi_ids: Optional[Sequence[str]] = None,
    ) -> "FleetManager":
        """Rebuild a fleet from a :meth:`save` directory.

        ``service_factory`` must build services with the *same detector
        bank and classifier factory* the fleet ran with (the per-KPI
        model load validates the bank through its feature names); the
        default builds default-bank services. The restored fleet's next
        :meth:`pump`/:meth:`retrain` behave exactly as the uninterrupted
        fleet's would — queued points, backoffs, quarantine states and
        open alert runs all survive.

        ``kpi_ids`` restores only that subset of the checkpoint — the
        serve plane's shard processes use this to load exactly the
        KPIs their consistent-hash slice owns out of one shared fleet
        directory. Unknown ids raise (a partition that silently loses
        KPIs would drop their traffic on the floor).
        """
        root = Path(directory)
        manifest = json.loads((root / "fleet.json").read_text())
        version = manifest.get("format_version")
        if version != FLEET_FORMAT_VERSION:
            raise ValueError(
                f"unsupported fleet format {version!r} "
                f"(expected {FLEET_FORMAT_VERSION})"
            )
        if kpi_ids is not None:
            known = {entry["kpi_id"] for entry in manifest["kpis"]}
            missing = sorted(set(kpi_ids) - known)
            if missing:
                raise ValueError(
                    f"checkpoint {root} has no KPI(s) {missing}; "
                    f"it holds {sorted(known)}"
                )
            wanted = set(kpi_ids)
            manifest = dict(manifest)
            manifest["kpis"] = [
                entry
                for entry in manifest["kpis"]
                if entry["kpi_id"] in wanted
            ]
        config = manifest["config"]
        manager = cls(
            n_shards=config["n_shards"],
            queue_depth=config["queue_depth"],
            queue_policy=config["queue_policy"],
            batch_points=config["batch_points"],
            backoff_base=config["backoff_base"],
            backoff_cap=config["backoff_cap"],
            max_retries=config["max_retries"],
            max_concurrent_retrains=config["max_concurrent_retrains"],
            dispatch_workers=(
                config["dispatch_workers"]
                if dispatch_workers is None
                else dispatch_workers
            ),
            service_factory=service_factory,
        )
        obs = get_provider()
        with obs.span("fleet.restore", n_kpis=len(manifest["kpis"])):
            for entry in manifest["kpis"]:
                kpi_id = _validate_kpi_id(entry["kpi_id"])
                kpi_dir = root / "kpis" / kpi_id
                service = (
                    service_factory(kpi_id)
                    if service_factory is not None
                    else MonitoringService()
                )
                load_model(
                    kpi_dir / "model.json", opprentice=service.opprentice
                )
                load_service_checkpoint(kpi_dir / "service.json", service)
                manager.add_kpi(kpi_id, service=service)
                handle = manager._kpis[kpi_id]
                handle.state = entry["state"]
                handle.retries = int(entry["retries"])
                handle.backoff_remaining = int(entry["backoff_remaining"])
                handle.quarantines = int(entry["quarantines"])
                handle.last_error = entry["last_error"]
                handle.dropped = {
                    reason: int(count)
                    for reason, count in entry["dropped"].items()
                }
                # Refill the queue verbatim (bypassing the drop policy:
                # the points fitted before, so they fit now).
                manager._scheduler.requeue_front(kpi_id, entry["queue"])
                manager._queue_gauge(kpi_id)
            manager._cycles = int(manifest.get("cycles", 0))
        manager._refresh_state_gauges()
        return manager


__all__ = [
    "FLEET_FORMAT_VERSION",
    "FleetManager",
    "ServiceFactory",
]
