"""The ``repro-fleet`` command: drive a multi-KPI fleet from a shell.

Three subcommands::

    repro-fleet run --kpis 8 --weeks 4 --bootstrap-weeks 2 --save fleet/
        # generate N synthetic KPIs, bootstrap each, stream the rest
        # through the fleet (pump + staggered retrains), print the
        # rollup table, optionally checkpoint the fleet directory

    repro-fleet run --csv pv.csv --csv srt.csv ...
        # the same loop over labelled CSVs (the file stem is the KPI id)

    repro-fleet status fleet/
        # summarize a saved fleet directory without loading the models

    repro-fleet replay fleet/ new_pv.csv ...
        # restore a fleet mid-run and stream new CSV points through it

``--obs-out`` writes the fleet's merged per-KPI metrics snapshot (every
sample tagged ``kpi=<id>``) as a JSON document the ``repro-obs`` CLI
can diff/render; the process-global provider additionally honours
``REPRO_OBS=1`` like every other entry point.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..core import MonitoringService
from ..ml import RandomForest
from ..obs import enable_from_env, write_snapshot
from ..timeseries import TimeSeries
from ..timeseries.io import read_csv
from .banks import small_bank
from .manager import FleetManager
from .status import DEGRADED, FleetStatus, status_document


def _service_factory(args, points_per_week: int):
    diagnoser = None
    if getattr(args, "diagnose", False):
        from ..diagnosis import default_diagnoser

        diagnoser = default_diagnoser()

    def build(kpi_id: str) -> MonitoringService:
        configs = (
            None if args.bank == "full" else small_bank(points_per_week)
        )
        return MonitoringService(
            configs=configs,
            classifier_factory=lambda: RandomForest(
                n_estimators=args.trees, seed=0
            ),
            min_duration_points=args.min_duration,
            diagnoser=diagnoser,
        )

    return build


def _build_fleet(args, points_per_week: int) -> FleetManager:
    return FleetManager(
        n_shards=args.shards,
        queue_depth=args.queue_depth,
        queue_policy=args.queue_policy,
        batch_points=args.batch_points,
        max_concurrent_retrains=args.max_concurrent_retrains,
        dispatch_workers=args.dispatch_workers,
        service_factory=_service_factory(args, points_per_week),
    )


def _generated_scenario(args) -> List[TimeSeries]:
    """``--kpis N``: N labelled synthetic KPIs with varied profiles."""
    from ..data import SeasonalProfile, generate_kpi, inject_anomalies

    series = []
    for index in range(args.kpis):
        generated = generate_kpi(
            weeks=args.weeks,
            interval=args.interval,
            profile=SeasonalProfile(
                base_level=100.0 * (1 + index % 5),
                daily_amplitude=0.4 + 0.05 * (index % 4),
                noise_scale=0.02,
                trend=0.0,
            ),
            seed=args.seed + index,
            name=f"kpi-{index:03d}",
        )
        injected = inject_anomalies(
            generated.series,
            target_fraction=args.anomaly_fraction,
            seed=args.seed + index,
        )
        series.append(injected.series)
    return series


def _csv_scenario(paths: List[str], interval: Optional[int]) -> List[TimeSeries]:
    series = []
    for path in paths:
        stem = Path(path).stem
        series.append(read_csv(path, interval=interval, name=stem))
    return series


def _stream(fleet: FleetManager, live: dict, args) -> int:
    """Offer every KPI's live points in lockstep chunks, pumping as we
    go; staggered retrains fire every ``--retrain-every`` points."""
    n_events = 0
    offsets = {kpi_id: 0 for kpi_id in live}
    since_retrain = 0
    while any(
        offsets[kpi_id] < len(points) for kpi_id, points in live.items()
    ):
        for kpi_id, points in live.items():
            begin = offsets[kpi_id]
            chunk = points[begin:begin + args.batch_points]
            if len(chunk):
                fleet.offer_many(kpi_id, [float(v) for v in chunk])
                offsets[kpi_id] = begin + len(chunk)
        n_events += len(fleet.drain_all())
        since_retrain += args.batch_points
        if args.retrain_every and since_retrain >= args.retrain_every:
            since_retrain = 0
            fleet.retrain()
    return n_events


def _cmd_run(args) -> int:
    points_per_week = (7 * 24 * 3600) // args.interval
    if args.csv:
        series = _csv_scenario(args.csv, args.interval)
    elif args.kpis:
        series = _generated_scenario(args)
    else:
        print("run: pass --kpis N or --csv FILE", file=sys.stderr)
        return 2
    bootstrap_points = int(args.bootstrap_weeks * points_per_week)
    for one in series:
        if not one.is_labeled:
            print(f"{one.name}: series is unlabelled", file=sys.stderr)
            return 2
        if len(one) <= bootstrap_points:
            print(
                f"{one.name}: {len(one)} points, need more than the "
                f"{bootstrap_points}-point bootstrap",
                file=sys.stderr,
            )
            return 2

    fleet = _build_fleet(args, points_per_week)
    live = {}
    for one in series:
        fleet.add_kpi(one.name, bootstrap=one.slice(0, bootstrap_points))
        live[one.name] = one.slice(bootstrap_points, len(one)).values
    n_events = _stream(fleet, live, args)

    status = fleet.status()
    print(status.render())
    print(f"{n_events} alert events")
    if args.save:
        fleet.save(args.save)
        print(f"fleet checkpoint written to {args.save}")
    if args.obs_out:
        write_snapshot(fleet.metrics_snapshot(), args.obs_out)
        print(f"merged metrics snapshot written to {args.obs_out}")
    if args.json:
        print(json.dumps(status_document(status), indent=2))
    return 0


def _cmd_status(args) -> int:
    root = Path(args.directory)
    manifest_path = root / "fleet.json"
    if not manifest_path.exists():
        print(f"{root}: no fleet.json manifest", file=sys.stderr)
        return 2
    manifest = json.loads(manifest_path.read_text())
    if args.json:
        # The same serializer the live `run --json` path and the
        # repro-serve /status endpoint use — one schema, three surfaces.
        document = status_document(
            FleetStatus.from_manifest(manifest), source="manifest"
        )
        print(json.dumps(document, indent=2))
        return 0
    entries = manifest.get("kpis", [])
    print(
        f"fleet at {root}: {len(entries)} KPIs, "
        f"{manifest.get('cycles', 0)} pump cycles, "
        f"config {json.dumps(manifest.get('config', {}))}"
    )
    header = (
        f"{'KPI':<20} {'STATE':<12} {'QUEUED':>6} {'DROPPED':>8} "
        f"{'QUAR':>5} {'RETRIES':>7}  LAST ERROR"
    )
    print(header)
    print("-" * len(header))
    for entry in entries:
        dropped = sum(entry.get("dropped", {}).values())
        print(
            f"{entry['kpi_id']:<20} {entry['state']:<12} "
            f"{len(entry.get('queue', [])):>6} {dropped:>8} "
            f"{entry.get('quarantines', 0):>5} "
            f"{entry.get('retries', 0):>7}  "
            f"{entry.get('last_error') or '-'}"
        )
    degraded = [e["kpi_id"] for e in entries if e["state"] == DEGRADED]
    if degraded:
        print(f"degraded (needs revive): {', '.join(degraded)}")
    return 0


def _cmd_replay(args) -> int:
    points_per_week = (7 * 24 * 3600) // args.interval
    fleet = FleetManager.restore(
        args.directory,
        service_factory=_service_factory(args, points_per_week),
    )
    live = {}
    for path in args.csv:
        stem = Path(path).stem
        if stem not in fleet:
            print(
                f"{path}: KPI {stem!r} is not in this fleet "
                f"(have: {', '.join(fleet.kpi_ids)})",
                file=sys.stderr,
            )
            return 2
        live[stem] = read_csv(path, interval=args.interval, name=stem).values
    n_events = _stream(fleet, live, args)
    print(fleet.status().render())
    print(f"{n_events} alert events")
    if args.save:
        fleet.save(args.save)
        print(f"fleet checkpoint written to {args.save}")
    return 0


def _add_fleet_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--interval", type=int, default=3600,
                        help="sampling interval in seconds")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=1024)
    parser.add_argument("--queue-policy", default="drop-oldest",
                        choices=["drop-oldest", "drop-newest", "block"])
    parser.add_argument("--batch-points", type=int, default=64)
    parser.add_argument("--dispatch-workers", type=int, default=1)
    parser.add_argument("--max-concurrent-retrains", type=int, default=2)
    parser.add_argument("--retrain-every", type=int, default=0,
                        help="retrain after this many streamed points "
                             "per KPI (0 = never)")
    parser.add_argument("--bank", choices=["small", "full"], default="small",
                        help="detector bank: the 7-config smoke bank or "
                             "the full Table 3 registry")
    parser.add_argument("--trees", type=int, default=15)
    parser.add_argument("--min-duration", type=int, default=1)
    parser.add_argument("--diagnose", action="store_true",
                        help="fit the anomaly-kind diagnoser and attach "
                             "a diagnosis to every closed alert")
    parser.add_argument("--save", default=None,
                        help="write a fleet checkpoint directory at the end")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="multi-KPI fleet orchestration over Opprentice "
                    "monitoring services",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="bootstrap a fleet and stream points through it"
    )
    run.add_argument("--kpis", type=int, default=0,
                     help="generate this many synthetic KPIs")
    run.add_argument("--csv", action="append", default=[],
                     help="labelled KPI CSV (repeatable; stem = KPI id)")
    run.add_argument("--weeks", type=float, default=4.0,
                     help="generated scenario length")
    run.add_argument("--bootstrap-weeks", type=float, default=2.0,
                     help="labelled prefix used for bootstrap")
    run.add_argument("--anomaly-fraction", type=float, default=0.03)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--obs-out", default=None,
                     help="write the merged per-KPI metrics snapshot JSON")
    run.add_argument("--json", action="store_true",
                     help="also print the full status as JSON")
    _add_fleet_options(run)

    status = commands.add_parser(
        "status", help="summarize a saved fleet directory"
    )
    status.add_argument("directory", help="fleet checkpoint directory")
    status.add_argument(
        "--json", action="store_true",
        help="emit the shared status document (same schema as "
             "`run --json` and the repro-serve /status endpoint)",
    )

    replay = commands.add_parser(
        "replay", help="restore a fleet and stream new CSV points"
    )
    replay.add_argument("directory", help="fleet checkpoint directory")
    replay.add_argument("csv", nargs="+",
                        help="unlabelled KPI CSVs (stem = KPI id)")
    _add_fleet_options(replay)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    enable_from_env()
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "status":
        return _cmd_status(args)
    return _cmd_replay(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
