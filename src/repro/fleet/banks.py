"""Shared detector banks for fleet-scale runs.

The full Table 3 bank (133 configurations, HW season scans) is priced
for one KPI; a fleet of 64+ KPIs on one core needs a lighter bank with
the same detector diversity. :func:`small_bank` is that bank — it was
born in the ``repro-fleet`` CLI and is now shared with the
``repro-loadgen`` soak harness so benchmarks, soaks and the CLI all
exercise identical per-point work.
"""

from __future__ import annotations

from ..detectors import (
    EWMA,
    Diff,
    HistoricalAverage,
    SimpleMA,
    SimpleThreshold,
    TSDMad,
    build_configs,
)


def small_bank(points_per_week: int):
    """A 7-configuration bank for fleet smokes and soaks — the same
    shape the unit tests use, fast enough for 64 KPIs on one core."""
    return build_configs(
        [
            SimpleThreshold(),
            Diff("last-slot", 1),
            SimpleMA(5),
            SimpleMA(20),
            EWMA(0.5),
            TSDMad(1, points_per_week),
            HistoricalAverage(1, points_per_week // 7),
        ]
    )


__all__ = ["small_bank"]
