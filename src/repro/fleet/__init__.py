"""Multi-KPI orchestration over Opprentice monitoring services.

Opprentice (§5.8) costs out a *single* KPI's detection loop; a
monitoring team runs hundreds. This package is the operational layer
that scales the per-KPI :class:`~repro.core.MonitoringService` out to a
fleet:

* :class:`FleetManager` — owns one service per KPI; batch dispatch,
  fault isolation (quarantine with exponential backoff → degraded),
  staggered retraining, fleet checkpoints (:meth:`FleetManager.save` /
  :meth:`FleetManager.restore`), and rollups.
* :class:`Scheduler` — consistent-hash KPI→shard assignment plus
  bounded per-KPI ingest queues with explicit backpressure policies
  (``drop-oldest`` / ``drop-newest`` / ``block``).
* :class:`FleetStatus` / :class:`KpiStatus` — the snapshot API behind
  the ``repro-fleet`` CLI (``python -m repro.fleet``).

The KPI lifecycle: ``active`` KPIs dispatch normally; a dispatch or
retrain failure moves the KPI to ``quarantined`` (exponential backoff
in pump cycles, then a retry); a successful retry marks it
``recovered``; exhausting ``max_retries`` marks it ``degraded`` until
an operator calls :meth:`FleetManager.revive`. Faults never cross KPI
boundaries: the other KPIs' alert streams are bit-identical to a fleet
without the fault (pinned by the fleet test suite).
"""

from .banks import small_bank
from .manager import FLEET_FORMAT_VERSION, FleetManager, ServiceFactory
from .scheduler import (
    QUEUE_POLICIES,
    BackpressureError,
    ConsistentHashRing,
    IngestQueue,
    Scheduler,
)
from .status import (
    ACTIVE,
    DEGRADED,
    KPI_STATES,
    QUARANTINED,
    RECOVERED,
    STATUS_DOCUMENT_VERSION,
    FleetStatus,
    KpiStatus,
    merge_statuses,
    status_document,
)

__all__ = [
    "small_bank",
    "FleetManager",
    "ServiceFactory",
    "FLEET_FORMAT_VERSION",
    "Scheduler",
    "ConsistentHashRing",
    "IngestQueue",
    "BackpressureError",
    "QUEUE_POLICIES",
    "FleetStatus",
    "KpiStatus",
    "KPI_STATES",
    "STATUS_DOCUMENT_VERSION",
    "ACTIVE",
    "QUARANTINED",
    "RECOVERED",
    "DEGRADED",
    "merge_statuses",
    "status_document",
]
