"""Named incident scenarios for demos, tests and chaos-style drills.

§2.1 lists the anomaly patterns operators care about in the abstract
(jitters, slow ramp-ups, sudden spikes and dips); real incidents are
*sequences* of those patterns. Each scenario here scripts a realistic
multi-phase incident onto a clean KPI and returns the exact ground
truth, so detector behaviour through an incident lifecycle can be
studied deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..timeseries import AnomalyWindow, TimeSeries, windows_to_points


@dataclass
class Incident:
    """A scripted incident: the labelled series and phase annotations."""

    series: TimeSeries
    windows: List[AnomalyWindow]
    #: Human-readable phase descriptions, parallel to ``windows``.
    phases: List[str]

    @property
    def labels(self) -> np.ndarray:
        return windows_to_points(self.windows, len(self.series))


def _finalize(series: TimeSeries, values, windows, phases) -> Incident:
    # Phases are kept distinct even when their windows touch (the whole
    # point of a scripted incident is its phase structure), so the
    # windows are sorted but deliberately NOT merged.
    windows = sorted(windows)
    labelled = TimeSeries(
        values=values,
        interval=series.interval,
        start=series.start,
        labels=windows_to_points(windows, len(series)),
        name=series.name,
    )
    return Incident(series=labelled, windows=windows, phases=phases)


def outage_and_recovery(
    series: TimeSeries, *, at: int, outage_points: int = 12,
    recovery_points: int = 24, depth: float = 0.85,
) -> Incident:
    """A hard outage: traffic collapses, then ramps back to normal.

    Phase 1: sudden drop to ``(1 - depth)`` of normal for
    ``outage_points``. Phase 2: linear recovery ramp over
    ``recovery_points``.
    """
    n = len(series)
    if not 0 <= at < n - outage_points - recovery_points:
        raise ValueError("incident does not fit in the series")
    if not 0.0 < depth <= 1.0:
        raise ValueError(f"depth must be in (0, 1], got {depth}")
    values = series.values.copy()
    outage_end = at + outage_points
    recovery_end = outage_end + recovery_points
    values[at:outage_end] *= 1.0 - depth
    ramp = np.linspace(1.0 - depth, 1.0, recovery_points, endpoint=False)
    values[outage_end:recovery_end] *= ramp
    return _finalize(
        series, values,
        [AnomalyWindow(at, outage_end), AnomalyWindow(outage_end, recovery_end)],
        ["outage", "recovery ramp"],
    )


def gradual_degradation(
    series: TimeSeries, *, at: int, build_points: int = 36,
    plateau_points: int = 24, magnitude: float = 0.6,
) -> Incident:
    """A slow burn: the KPI drifts upward (e.g. latency creep from a
    leaking deployment), plateaus, then is fixed abruptly."""
    n = len(series)
    if not 0 <= at < n - build_points - plateau_points:
        raise ValueError("incident does not fit in the series")
    values = series.values.copy()
    build_end = at + build_points
    plateau_end = build_end + plateau_points
    drift = np.linspace(0.0, magnitude, build_points)
    values[at:build_end] *= 1.0 + drift
    values[build_end:plateau_end] *= 1.0 + magnitude
    return _finalize(
        series, values,
        [AnomalyWindow(at, build_end), AnomalyWindow(build_end, plateau_end)],
        ["gradual build-up", "degraded plateau"],
    )


def flash_crowd(
    series: TimeSeries, *, at: int, surge_points: int = 8,
    tail_points: int = 16, magnitude: float = 2.5,
) -> Incident:
    """A flash crowd: a sharp surge followed by an elevated decaying
    tail (breaking-news traffic, retry storms)."""
    n = len(series)
    if not 0 <= at < n - surge_points - tail_points:
        raise ValueError("incident does not fit in the series")
    values = series.values.copy()
    surge_end = at + surge_points
    tail_end = surge_end + tail_points
    values[at:surge_end] *= 1.0 + magnitude
    decay = magnitude * np.exp(
        -(np.arange(tail_points) + 1.0) / (tail_points / 3.0)
    )
    values[surge_end:tail_end] *= 1.0 + decay
    return _finalize(
        series, values,
        [AnomalyWindow(at, surge_end), AnomalyWindow(surge_end, tail_end)],
        ["surge", "decaying tail"],
    )


def cascading_failure(
    series: TimeSeries, *, at: int, stages: int = 3,
    stage_points: int = 10, gap_points: int = 20,
    magnitude: float = 1.0,
) -> Incident:
    """A cascade: repeated, worsening spikes separated by lulls (one
    backend failing after another)."""
    n = len(series)
    span = stages * stage_points + (stages - 1) * gap_points
    if stages < 2:
        raise ValueError("a cascade needs at least 2 stages")
    if not 0 <= at < n - span:
        raise ValueError("incident does not fit in the series")
    values = series.values.copy()
    windows, phases = [], []
    cursor = at
    for stage in range(stages):
        end = cursor + stage_points
        values[cursor:end] *= 1.0 + magnitude * (stage + 1)
        windows.append(AnomalyWindow(cursor, end))
        phases.append(f"cascade stage {stage + 1}")
        cursor = end + gap_points
    return _finalize(series, values, windows, phases)


#: Scenario registry for data-driven drills.
SCENARIOS: Dict[str, Callable[..., Incident]] = {
    "outage_and_recovery": outage_and_recovery,
    "gradual_degradation": gradual_degradation,
    "flash_crowd": flash_crowd,
    "cascading_failure": cascading_failure,
}
