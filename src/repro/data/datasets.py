"""Dataset profiles matching Table 1 of the paper.

Three KPIs are reproduced:

========  ========  ======  ===========  =====  =========
KPI       interval  weeks   seasonality  Cv     anomalies
========  ========  ======  ===========  =====  =========
PV        1 min     25      strong       0.48   7.8%
#SR       1 min     19      weak         2.1    2.8%
SRT       60 min    16      moderate     0.07   7.4%
========  ========  ======  ===========  =====  =========

By default PV and #SR are generated at a 10-minute interval so the full
evaluation suite (which retrains a random forest every week for up to 17
moving test sets) runs on one machine in minutes; pass
``paper_interval=True`` for the 1-minute grid. All other Table 1
characteristics are matched by construction and validated in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..timeseries import MINUTE
from .anomalies import InjectionResult, inject_anomalies
from .generator import SeasonalProfile, generate_kpi


@dataclass(frozen=True)
class KPIProfile:
    """Everything needed to regenerate one of the paper's KPIs."""

    name: str
    weeks: float
    interval: int
    paper_interval_seconds: int
    anomaly_fraction: float
    signal: SeasonalProfile
    seed: int
    mean_anomaly_window: float = 8.0
    #: Severity range of injected anomalies. SRT uses subtler anomalies
    #: so its overall Cv stays at the Table 1 value of 0.07.
    severity_range: tuple = (0.5, 2.5)
    #: Optional anomaly-pattern mix overriding the default injector
    #: weights (e.g. #SR anomalies are overwhelmingly upward spikes,
    #: which is why the paper finds simple threshold its best detector).
    injector_mix: dict | None = None


#: PV — search page views. Strongly seasonal daily volume curve with a
#: weekday/weekend effect; Cv ~ 0.48 comes almost entirely from the
#: seasonal swing.
PV_PROFILE = KPIProfile(
    name="PV",
    weeks=25,
    interval=10 * MINUTE,
    paper_interval_seconds=1 * MINUTE,
    anomaly_fraction=0.078,
    signal=SeasonalProfile(
        base_level=1000.0,
        daily_amplitude=0.9,
        daily_harmonics=3,
        weekend_factor=0.75,
        trend=0.08,
        noise_scale=0.02,
        noise_ar=0.5,
        multiplicative_noise=True,
    ),
    seed=1001,
)

#: #SR — number of slow responses of the search data centers. Spiky,
#: weakly seasonal count data; the overall Cv ~ 2.1 comes from the
#: anomalous spikes themselves plus moderate background bursts. The
#: anomalies are overwhelmingly *upward spikes that exceed the normal
#: burst range*, matching the paper's finding that a simple static
#: threshold is the single best basic detector for this KPI.
SR_PROFILE = KPIProfile(
    name="#SR",
    weeks=19,
    interval=10 * MINUTE,
    paper_interval_seconds=1 * MINUTE,
    anomaly_fraction=0.028,
    signal=SeasonalProfile(
        base_level=20.0,
        daily_amplitude=0.25,
        daily_harmonics=2,
        weekend_factor=0.95,
        trend=0.0,
        noise_scale=0.5,
        noise_ar=0.3,
        multiplicative_noise=False,
        burst_rate=0.004,
        burst_scale=1.5,
        burst_length=4.0,
    ),
    seed=2002,
    mean_anomaly_window=5.0,
    severity_range=(10.0, 40.0),
    injector_mix={"spike": 0.8, "level_shift": 0.1, "jitter": 0.1},
)

#: SRT — 80th percentile of search response time. Tightly concentrated
#: around its mean (Cv ~ 0.07) with a moderate daily rhythm.
SRT_PROFILE = KPIProfile(
    name="SRT",
    weeks=16,
    interval=60 * MINUTE,
    paper_interval_seconds=60 * MINUTE,
    anomaly_fraction=0.074,
    signal=SeasonalProfile(
        base_level=400.0,
        daily_amplitude=0.09,
        daily_harmonics=2,
        weekend_factor=0.99,
        trend=0.01,
        noise_scale=0.018,
        noise_ar=0.4,
        multiplicative_noise=True,
    ),
    seed=3003,
    mean_anomaly_window=4.0,
    severity_range=(0.12, 0.45),
)

PROFILES: Dict[str, KPIProfile] = {
    "PV": PV_PROFILE,
    "#SR": SR_PROFILE,
    "SRT": SRT_PROFILE,
}

#: TRAFFIC — aggregated traffic volume of an ISP ([5] in the paper;
#: §5.1 argues PV "are visually similar to other kinds of volume data",
#: naming exactly this KPI). Strong diurnal swing, pronounced weekend
#: drop, occasional dips from maintenance.
TRAFFIC_PROFILE = KPIProfile(
    name="TRAFFIC",
    weeks=12,
    interval=10 * MINUTE,
    paper_interval_seconds=5 * MINUTE,
    anomaly_fraction=0.05,
    signal=SeasonalProfile(
        base_level=8000.0,
        daily_amplitude=0.8,
        daily_harmonics=2,
        weekend_factor=0.6,
        trend=0.05,
        noise_scale=0.03,
        noise_ar=0.6,
        multiplicative_noise=True,
    ),
    seed=4004,
    mean_anomaly_window=6.0,
    injector_mix={"dip": 0.5, "level_shift": 0.3, "spike": 0.2},
)

#: RTT — round-trip time of an ISP path ([6] in the paper, also named
#: in §5.1). Latency-like: tight around the mean with congestion spikes.
RTT_PROFILE = KPIProfile(
    name="RTT",
    weeks=12,
    interval=10 * MINUTE,
    paper_interval_seconds=1 * MINUTE,
    anomaly_fraction=0.06,
    signal=SeasonalProfile(
        base_level=45.0,
        daily_amplitude=0.12,
        daily_harmonics=2,
        weekend_factor=0.97,
        trend=0.0,
        noise_scale=0.03,
        noise_ar=0.5,
        multiplicative_noise=True,
    ),
    seed=5005,
    mean_anomaly_window=5.0,
    severity_range=(0.3, 1.2),
    injector_mix={"spike": 0.5, "level_shift": 0.3, "jitter": 0.2},
)

#: The §5.1 "other domains" profiles, kept separate from the Table 1
#: trio so the paper-exact experiments stay untouched.
EXTRA_PROFILES: Dict[str, KPIProfile] = {
    "TRAFFIC": TRAFFIC_PROFILE,
    "RTT": RTT_PROFILE,
}


def make_kpi(
    profile: KPIProfile,
    *,
    seed_offset: int = 0,
    weeks: float | None = None,
    paper_interval: bool = False,
    with_anomalies: bool = True,
) -> InjectionResult:
    """Generate one KPI from its profile, with ground-truth labels.

    Parameters
    ----------
    seed_offset:
        Added to the profile seed, so independent replicas of the same
        KPI can be drawn for robustness experiments.
    weeks:
        Override the Table 1 length (shorter runs for unit tests).
    paper_interval:
        Use the paper's exact sampling interval (1 minute for PV/#SR).
    with_anomalies:
        If false, return the clean series with all-zero labels.
    """
    interval = profile.paper_interval_seconds if paper_interval else profile.interval
    generated = generate_kpi(
        weeks=weeks if weeks is not None else profile.weeks,
        interval=interval,
        profile=profile.signal,
        seed=profile.seed + seed_offset,
        name=profile.name,
    )
    if not with_anomalies:
        clean = generated.series.with_labels([0] * len(generated.series))
        return InjectionResult(series=clean, windows=[], kinds=[])
    injectors = None
    if profile.injector_mix is not None:
        from .anomalies import DEFAULT_INJECTORS

        injectors = {
            kind: (DEFAULT_INJECTORS[kind][0], weight)
            for kind, weight in profile.injector_mix.items()
        }
    return inject_anomalies(
        generated.series,
        target_fraction=profile.anomaly_fraction,
        seed=profile.seed + seed_offset + 77,
        mean_window=profile.mean_anomaly_window,
        severity_range=profile.severity_range,
        injectors=injectors,
    )


def make_pv(**kwargs) -> InjectionResult:
    """The PV KPI (Fig 1a): strongly seasonal search page views."""
    return make_kpi(PV_PROFILE, **kwargs)


def make_sr(**kwargs) -> InjectionResult:
    """The #SR KPI (Fig 1b): spiky slow-response counts."""
    return make_kpi(SR_PROFILE, **kwargs)


def make_srt(**kwargs) -> InjectionResult:
    """The SRT KPI (Fig 1c): 80th-percentile search response time."""
    return make_kpi(SRT_PROFILE, **kwargs)


def make_all(**kwargs) -> Dict[str, InjectionResult]:
    """All three KPIs, keyed by name, in the paper's order."""
    return {name: make_kpi(profile, **kwargs) for name, profile in PROFILES.items()}


def same_type_kpis(
    profile: KPIProfile, *, count: int, scale_spread: float = 4.0, **kwargs
) -> List[InjectionResult]:
    """KPIs "of the same type" at different scales (§6: e.g. PV
    originated from different ISPs). Each replica shares the profile's
    shape but has its own seed and a random overall scale, exercising
    the cross-KPI transfer path."""
    import numpy as np

    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(profile.seed + 555)
    replicas = []
    for i in range(count):
        scale = float(rng.uniform(1.0, scale_spread))
        scaled_signal = SeasonalProfile(
            **{
                **profile.signal.__dict__,
                "base_level": profile.signal.base_level * scale,
            }
        )
        scaled = KPIProfile(
            name=f"{profile.name}-{i}",
            weeks=profile.weeks,
            interval=profile.interval,
            paper_interval_seconds=profile.paper_interval_seconds,
            anomaly_fraction=profile.anomaly_fraction,
            signal=scaled_signal,
            seed=profile.seed,
            mean_anomaly_window=profile.mean_anomaly_window,
        )
        replicas.append(make_kpi(scaled, seed_offset=31 * (i + 1), **kwargs))
    return replicas
