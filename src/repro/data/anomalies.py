"""Anomaly injection with exact ground truth.

§2.1 of the paper describes the anomaly patterns operators care about:
"jitters, slow ramp-ups, sudden spikes and dips" at different severity
levels (e.g. a sudden drop by 20% or 50%). Each injector here implements
one of those patterns; :func:`inject_anomalies` places a mix of them
until a target anomaly fraction (§5.1: 7.8% / 2.8% / 7.4% of points) is
reached, and returns the exact ground-truth windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..timeseries import AnomalyWindow, TimeSeries, merge_windows, windows_to_points

#: An injector mutates a value slice in place given (values, rng, level).
Injector = Callable[[np.ndarray, np.random.Generator, float], None]


def _local_scale(values: np.ndarray) -> float:
    """Mean magnitude of the window, ignoring missing points (injectors
    must not let a NaN poison the whole window)."""
    finite = values[np.isfinite(values)]
    return float(np.abs(finite).mean()) if len(finite) else 0.0


def inject_spike(values: np.ndarray, rng: np.random.Generator, level: float) -> None:
    """Sudden upward spike: values rise by 20%-300% with a sharp attack
    and exponential decay."""
    n = len(values)
    magnitude = level * _local_scale(values)
    envelope = np.exp(-np.arange(n) / max(n / 3.0, 1.0))
    values += magnitude * envelope


def inject_dip(values: np.ndarray, rng: np.random.Generator, level: float) -> None:
    """Sudden drop: e.g. "a sudden drop by 20% or 50%" (§2.1). The drop
    fraction scales with the severity level (default levels of 0.5-2.5
    give 22%-72% drops)."""
    drop = min(0.9, 0.1 + 0.25 * level)
    values *= 1.0 - drop


def inject_ramp(values: np.ndarray, rng: np.random.Generator, level: float) -> None:
    """Slow ramp-up reaching ``level`` times the local mean at the end."""
    n = len(values)
    magnitude = level * _local_scale(values)
    values += magnitude * np.linspace(0.0, 1.0, n)


def inject_jitter(values: np.ndarray, rng: np.random.Generator, level: float) -> None:
    """Continuous jitter: alternating noise much larger than normal
    (the pattern the search engine's "MA of diff" detector targets)."""
    scale = 0.15 * (1.0 + level) * max(_local_scale(values), 1e-12)
    signs = np.where(np.arange(len(values)) % 2 == 0, 1.0, -1.0)
    values += signs * rng.uniform(0.5, 1.5, size=len(values)) * scale


def inject_level_shift(
    values: np.ndarray, rng: np.random.Generator, level: float
) -> None:
    """Sustained level shift up or down for the whole window."""
    direction = 1.0 if rng.random() < 0.5 else -1.0
    shift = (0.25 + 0.25 * level) * _local_scale(values)
    values += direction * shift


#: The default anomaly mix, weighted roughly by how often each pattern
#: appears in operational volume KPIs.
DEFAULT_INJECTORS: Dict[str, Tuple[Injector, float]] = {
    "spike": (inject_spike, 0.3),
    "dip": (inject_dip, 0.3),
    "ramp": (inject_ramp, 0.1),
    "jitter": (inject_jitter, 0.15),
    "level_shift": (inject_level_shift, 0.15),
}


@dataclass
class InjectionResult:
    """A labelled series plus per-window metadata."""

    series: TimeSeries
    windows: List[AnomalyWindow]
    kinds: List[str]

    @property
    def labels(self) -> np.ndarray:
        return windows_to_points(self.windows, len(self.series))


def inject_anomalies(
    series: TimeSeries,
    *,
    target_fraction: float,
    seed: int = 0,
    mean_window: float = 8.0,
    max_window: int = 60,
    injectors: Dict[str, Tuple[Injector, float]] | None = None,
    severity_range: Tuple[float, float] = (0.5, 2.5),
) -> InjectionResult:
    """Inject anomaly windows until ``target_fraction`` of points are
    anomalous, and return the labelled series with ground truth.

    Windows are placed uniformly at random without overlap; window
    lengths are geometric with mean ``mean_window`` points. Severity
    levels are drawn uniformly from ``severity_range`` so the data
    contain both subtle and blatant anomalies, as in real KPIs.
    """
    if not 0.0 < target_fraction < 0.5:
        raise ValueError(
            f"target_fraction must be in (0, 0.5), got {target_fraction}"
        )
    injectors = injectors or DEFAULT_INJECTORS
    names = list(injectors)
    weights = np.array([injectors[k][1] for k in names], dtype=float)
    weights /= weights.sum()

    rng = np.random.default_rng(seed)
    n = len(series)
    values = series.values.copy()
    occupied = np.zeros(n, dtype=bool)
    windows: List[AnomalyWindow] = []
    kinds: List[str] = []
    target_points = int(round(target_fraction * n))
    anomalous_points = 0
    attempts = 0
    max_attempts = 50 * max(target_points, 1)

    while anomalous_points < target_points and attempts < max_attempts:
        attempts += 1
        length = min(max_window, 1 + int(rng.geometric(1.0 / mean_window)))
        length = min(length, target_points - anomalous_points + 2)
        start = int(rng.integers(0, max(n - length, 1)))
        end = start + length
        # Keep one point of separation so truth windows stay distinct.
        lo, hi = max(0, start - 1), min(n, end + 1)
        if occupied[lo:hi].any():
            continue
        kind = names[int(rng.choice(len(names), p=weights))]
        level = float(rng.uniform(*severity_range))
        injectors[kind][0](values[start:end], rng, level)
        occupied[start:end] = True
        windows.append(AnomalyWindow(start, end))
        kinds.append(kind)
        anomalous_points += length

    if series.missing_mask.any():
        values[series.missing_mask] = np.nan
    # Windows are placed in random order but reported sorted; kinds must
    # follow their windows or the ground-truth pairing silently breaks.
    order = sorted(range(len(windows)), key=lambda i: windows[i])
    windows = [windows[i] for i in order]
    kinds = [kinds[i] for i in order]
    windows = merge_windows(windows)
    labelled = TimeSeries(
        values=values,
        interval=series.interval,
        start=series.start,
        labels=windows_to_points(windows, n),
        name=series.name,
    )
    return InjectionResult(series=labelled, windows=windows, kinds=kinds)


def drop_points(
    series: TimeSeries, *, fraction: float, seed: int = 0
) -> TimeSeries:
    """Knock out a random fraction of points (NaN) to simulate the
    "dirty data" missing-point problem of §6."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    rng = np.random.default_rng(seed)
    values = series.values.copy()
    n_drop = int(round(fraction * len(series)))
    if n_drop:
        idx = rng.choice(len(series), size=n_drop, replace=False)
        values[idx] = np.nan
    return TimeSeries(
        values=values,
        interval=series.interval,
        start=series.start,
        labels=series.labels,
        name=series.name,
    )
