"""Synthetic seasonal KPI generator.

The paper evaluates on three proprietary KPIs from a top global search
engine (PV, #SR, SRT). We cannot obtain those traces, so this module
generates synthetic KPIs whose published characteristics (Table 1:
sampling interval, length, seasonality strength, coefficient of
variation) are matched by construction. The generator composes:

* a smooth daily profile (random Fourier series, fixed per KPI seed),
* a weekly modulation (weekday/weekend effect),
* a slow trend,
* autocorrelated (AR(1)) multiplicative or additive noise,
* optional heavy-tailed bursts for spiky KPIs such as #SR.

Anomalies are injected separately (`repro.data.anomalies`) so the ground
truth windows are known exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..timeseries import TimeSeries


@dataclass
class SeasonalProfile:
    """Parameters of the synthetic KPI signal.

    The defaults produce a PV-like strongly seasonal volume curve; the
    dataset profiles in :mod:`repro.data.datasets` override them to match
    each Table 1 row.
    """

    #: Mean level of the KPI (arbitrary units; paper hides absolutes).
    base_level: float = 1000.0
    #: Peak-to-trough amplitude of the daily cycle, as a fraction of base.
    daily_amplitude: float = 0.6
    #: Number of Fourier harmonics in the daily shape (more = bumpier).
    daily_harmonics: int = 4
    #: Weekend level relative to weekdays (1.0 = no weekly effect).
    weekend_factor: float = 0.8
    #: Linear trend over the whole series, as a fraction of base.
    trend: float = 0.05
    #: Standard deviation of the AR(1) noise, as a fraction of base.
    noise_scale: float = 0.03
    #: AR(1) coefficient of the noise (0 = white).
    noise_ar: float = 0.6
    #: If true the noise multiplies the seasonal curve, else it adds.
    multiplicative_noise: bool = True
    #: Rate (per point) of heavy-tailed bursts; 0 disables them.
    burst_rate: float = 0.0
    #: Scale of burst magnitudes, as a multiple of base_level.
    burst_scale: float = 3.0
    #: Mean duration of a burst, in points.
    burst_length: float = 3.0
    #: Clip the signal at zero (volumes and counts cannot go negative).
    non_negative: bool = True


@dataclass
class GeneratedKPI:
    """Output of :func:`generate_kpi`: the clean series plus components."""

    series: TimeSeries
    seasonal: np.ndarray = field(repr=False)
    noise: np.ndarray = field(repr=False)


def _daily_shape(rng: np.random.Generator, harmonics: int, points: int) -> np.ndarray:
    """A smooth positive daily profile with unit mean, from random
    Fourier coefficients. The same seed always yields the same shape, so
    a KPI keeps its identity across runs."""
    phase = 2.0 * np.pi * np.arange(points) / points
    shape = np.zeros(points)
    for k in range(1, harmonics + 1):
        amplitude = rng.normal(0.0, 1.0 / k)
        offset = rng.uniform(0.0, 2.0 * np.pi)
        shape += amplitude * np.cos(k * phase + offset)
    # Normalise to zero mean, unit peak amplitude.
    shape -= shape.mean()
    peak = np.abs(shape).max()
    if peak > 0:
        shape /= peak
    return shape


def _ar1_noise(
    rng: np.random.Generator, n: int, scale: float, ar: float
) -> np.ndarray:
    """AR(1) noise with stationary standard deviation ``scale``."""
    if not 0.0 <= ar < 1.0:
        raise ValueError(f"noise_ar must be in [0, 1), got {ar}")
    innovation_scale = scale * np.sqrt(1.0 - ar * ar)
    innovations = rng.normal(0.0, innovation_scale, size=n)
    noise = np.empty(n)
    state = rng.normal(0.0, scale)
    for i in range(n):
        state = ar * state + innovations[i]
        noise[i] = state
    return noise


def _bursts(
    rng: np.random.Generator, n: int, profile: SeasonalProfile
) -> np.ndarray:
    """Heavy-tailed additive bursts (the background spikiness of #SR).

    These are *not* labelled anomalies — they are the KPI's normal
    behaviour, which is exactly what makes spiky KPIs hard to detect on.
    """
    bursts = np.zeros(n)
    if profile.burst_rate <= 0.0:
        return bursts
    n_bursts = rng.poisson(profile.burst_rate * n)
    for _ in range(n_bursts):
        start = int(rng.integers(0, n))
        length = max(1, int(rng.exponential(profile.burst_length)))
        magnitude = rng.pareto(2.5) * profile.burst_scale * profile.base_level
        envelope = np.exp(-np.arange(length) / max(profile.burst_length, 1.0))
        end = min(start + length, n)
        bursts[start:end] += magnitude * envelope[: end - start]
    return bursts


def generate_kpi(
    *,
    weeks: float,
    interval: int,
    profile: Optional[SeasonalProfile] = None,
    seed: int = 0,
    name: str = "",
    start: int = 0,
) -> GeneratedKPI:
    """Generate a clean (anomaly-free) KPI series.

    Parameters
    ----------
    weeks:
        Length of the series in weeks.
    interval:
        Sampling interval in seconds.
    profile:
        Signal parameters; defaults to a PV-like profile.
    seed:
        RNG seed; the KPI is fully reproducible from it.
    """
    if weeks <= 0:
        raise ValueError(f"weeks must be positive, got {weeks}")
    profile = profile or SeasonalProfile()
    rng = np.random.default_rng(seed)
    points_per_day = (24 * 3600) // interval
    if points_per_day * interval != 24 * 3600:
        raise ValueError(f"interval {interval}s does not divide one day")
    n = int(round(weeks * 7 * points_per_day))

    daily = _daily_shape(rng, profile.daily_harmonics, points_per_day)
    day_index = np.arange(n) // points_per_day
    phase = np.arange(n) % points_per_day
    weekday = day_index % 7

    seasonal = 1.0 + profile.daily_amplitude * daily[phase]
    weekly = np.where(weekday >= 5, profile.weekend_factor, 1.0)
    trend = 1.0 + profile.trend * np.arange(n) / max(n - 1, 1)
    curve = profile.base_level * seasonal * weekly * trend

    noise = _ar1_noise(rng, n, profile.noise_scale, profile.noise_ar)
    if profile.multiplicative_noise:
        values = curve * (1.0 + noise)
    else:
        values = curve + profile.base_level * noise
    values = values + _bursts(rng, n, profile)
    if profile.non_negative:
        values = np.maximum(values, 0.0)

    series = TimeSeries(values=values, interval=interval, start=start, name=name)
    return GeneratedKPI(series=series, seasonal=curve, noise=noise)
