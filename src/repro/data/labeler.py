"""Simulated operator labeling, and the labeling-time model of Fig 14.

The paper's operators label anomalies by dragging windows in a GUI tool
(§4.2). Two properties of that process matter to the learning pipeline
and are reproduced here:

1. **Labels are imperfect at window boundaries** — "the boundaries of an
   anomalous window are often extended or narrowed when labeling". The
   simulated operator jitters every window boundary and can miss subtle
   windows entirely.
2. **Labeling time scales with the number of anomalous windows**, not
   points (Fig 14), because one drag covers one window. The time model
   here has a navigation term (scanning the month of data) and a
   per-window term (zoom in + drag), calibrated so a month of data costs
   under 6 minutes as reported in §5.7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..timeseries import (
    AnomalyWindow,
    TimeSeries,
    jitter_window,
    merge_windows,
    points_to_windows,
    windows_to_points,
)


@dataclass
class SimulatedOperator:
    """Labels ground-truth anomaly windows the way a human would.

    Parameters
    ----------
    boundary_jitter:
        Maximum boundary shift, in points, applied independently to each
        window edge.
    miss_rate:
        Probability that an entire window goes unnoticed (subtle
        anomalies are occasionally missed on a zoomed-out view).
    false_window_rate:
        Expected number of spurious labelled windows per 1000 points
        (operators occasionally label normal wiggles).
    """

    boundary_jitter: int = 2
    miss_rate: float = 0.02
    false_window_rate: float = 0.05
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.boundary_jitter < 0:
            raise ValueError("boundary_jitter must be >= 0")
        if not 0.0 <= self.miss_rate < 1.0:
            raise ValueError("miss_rate must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)

    def label(
        self, series: TimeSeries, truth_windows: List[AnomalyWindow]
    ) -> TimeSeries:
        """Produce an operator-labelled copy of ``series``."""
        n = len(series)
        labelled: List[AnomalyWindow] = []
        for window in truth_windows:
            if self._rng.random() < self.miss_rate:
                continue
            if self.boundary_jitter > 0:
                window = jitter_window(window, self._rng, self.boundary_jitter, n)
            labelled.append(window)
        n_false = self._rng.poisson(self.false_window_rate * n / 1000.0)
        for _ in range(n_false):
            start = int(self._rng.integers(0, max(n - 3, 1)))
            length = int(self._rng.integers(1, 4))
            labelled.append(AnomalyWindow(start, min(start + length, n)))
        labels = windows_to_points(merge_windows(labelled), n)
        return series.with_labels(labels)


@dataclass(frozen=True)
class LabelingTimeModel:
    """Minutes to label one month of data (Fig 14).

    ``minutes = navigation_per_point * n_points + per_window * n_windows``

    Defaults are calibrated against §5.7: a month of 1-minute PV data
    (~43k points, tens of windows) costs under 6 minutes; 25 weeks of PV
    total ~16 minutes; SRT months are fastest because an hour-interval
    month has only ~720 points.
    """

    navigation_per_point: float = 5.0e-5
    per_window: float = 0.09
    fixed_overhead: float = 0.25

    def month_minutes(self, n_points: int, n_windows: int) -> float:
        if n_points < 0 or n_windows < 0:
            raise ValueError("counts must be non-negative")
        return (
            self.fixed_overhead
            + self.navigation_per_point * n_points
            + self.per_window * n_windows
        )


@dataclass(frozen=True)
class MonthLabelingCost:
    """One Fig 14 point: a month of one KPI."""

    kpi: str
    month: int
    n_points: int
    n_windows: int
    minutes: float


def labeling_costs(
    series: TimeSeries,
    *,
    model: LabelingTimeModel | None = None,
    days_per_month: int = 30,
) -> List[MonthLabelingCost]:
    """Per-month labeling cost of a labelled series (the Fig 14 series).

    The window count per month is recovered from the point labels, since
    each maximal run of anomalous points is one label action.
    """
    if not series.is_labeled:
        raise ValueError("series must be labelled")
    model = model or LabelingTimeModel()
    costs = []
    for month_index in range(series.n_months(days_per_month)):
        month = series.month(month_index, days_per_month)
        n_windows = len(points_to_windows(month.labels))
        costs.append(
            MonthLabelingCost(
                kpi=series.name,
                month=month_index,
                n_points=len(month),
                n_windows=n_windows,
                minutes=model.month_minutes(len(month), n_windows),
            )
        )
    return costs


def total_labeling_minutes(
    series: TimeSeries, *, model: LabelingTimeModel | None = None
) -> float:
    """Total minutes to label the whole series (§5.7 reports 16 / 17 / 6
    minutes for PV / #SR / SRT)."""
    return sum(c.minutes for c in labeling_costs(series, model=model))
