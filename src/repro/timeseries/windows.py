"""Anomaly windows and their conversion to point labels.

Operators label *windows* of anomalies with the labeling tool (§4.2):
one click-and-drag covers a run of anomalous points. Learning and
detection, however, operate on individual points (§4.3.1). This module
converts between the two representations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np


@dataclass(frozen=True, order=True)
class AnomalyWindow:
    """A half-open index range ``[begin, end)`` of anomalous points."""

    begin: int
    end: int

    def __post_init__(self) -> None:
        if self.begin < 0 or self.end <= self.begin:
            raise ValueError(f"invalid window [{self.begin}, {self.end})")

    def __len__(self) -> int:
        return self.end - self.begin

    def overlaps(self, other: "AnomalyWindow") -> bool:
        return self.begin < other.end and other.begin < self.end

    def contains(self, index: int) -> bool:
        return self.begin <= index < self.end


def windows_to_points(windows: Iterable[AnomalyWindow], length: int) -> np.ndarray:
    """Expand window labels to a 0/1 point-label array of ``length``.

    Windows may overlap (operators can re-label); overlapping regions
    are simply anomalous. Windows extending past ``length`` are clipped.
    """
    labels = np.zeros(length, dtype=np.int8)
    for window in windows:
        if window.begin >= length:
            continue
        labels[window.begin:min(window.end, length)] = 1
    return labels


def points_to_windows(labels: Sequence[int]) -> List[AnomalyWindow]:
    """Collapse 0/1 point labels back into maximal anomalous windows.

    The number of windows is what drives labeling time in Fig 14 — one
    label action covers one window of continuous anomalies.
    """
    labels = np.asarray(labels, dtype=np.int8)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if len(labels) == 0:
        return []
    # Locate the rising and falling edges of the 0/1 signal.
    padded = np.concatenate([[0], labels, [0]])
    edges = np.flatnonzero(np.diff(padded))
    starts, ends = edges[::2], edges[1::2]
    return [AnomalyWindow(int(b), int(e)) for b, e in zip(starts, ends)]


def merge_windows(windows: Iterable[AnomalyWindow]) -> List[AnomalyWindow]:
    """Merge overlapping or touching windows into a minimal sorted list."""
    merged: List[AnomalyWindow] = []
    for window in sorted(windows):
        if merged and window.begin <= merged[-1].end:
            last = merged[-1]
            merged[-1] = AnomalyWindow(last.begin, max(last.end, window.end))
        else:
            merged.append(window)
    return merged


def subtract_window(
    windows: Iterable[AnomalyWindow], cancel: AnomalyWindow
) -> List[AnomalyWindow]:
    """Remove ``cancel`` from a set of windows (right-click drag in the
    labeling tool partially cancels previously labelled windows)."""
    result: List[AnomalyWindow] = []
    for window in windows:
        if not window.overlaps(cancel):
            result.append(window)
            continue
        if window.begin < cancel.begin:
            result.append(AnomalyWindow(window.begin, cancel.begin))
        if cancel.end < window.end:
            result.append(AnomalyWindow(cancel.end, window.end))
    return sorted(result)


def jitter_window(
    window: AnomalyWindow,
    rng: np.random.Generator,
    max_shift: int,
    length: int,
) -> AnomalyWindow:
    """Perturb window boundaries to model operator labeling error (§4.2:
    "the boundaries of an anomalous window are often extended or
    narrowed when labeling")."""
    if max_shift < 0:
        raise ValueError(f"max_shift must be >= 0, got {max_shift}")
    begin = window.begin + int(rng.integers(-max_shift, max_shift + 1))
    end = window.end + int(rng.integers(-max_shift, max_shift + 1))
    begin = max(0, min(begin, length - 1))
    end = max(begin + 1, min(end, length))
    return AnomalyWindow(begin, end)
