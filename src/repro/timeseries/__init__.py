"""Time-series substrate: containers, window labels, and statistics."""

from .io import (
    from_csv_string,
    read_csv,
    read_csv_gz,
    read_ndjson,
    to_csv_string,
    write_csv,
    write_csv_gz,
    write_ndjson,
)
from .resample import downsample, to_interval
from .series import DAY, MINUTE, WEEK, TimeSeries, TimeSeriesError
from .stats import (
    SeriesSummary,
    classify_seasonality,
    coefficient_of_variation,
    seasonal_autocorrelation,
    seasonality_strength,
    summarize,
)
from .windows import (
    AnomalyWindow,
    jitter_window,
    merge_windows,
    points_to_windows,
    subtract_window,
    windows_to_points,
)

__all__ = [
    "read_csv",
    "read_csv_gz",
    "read_ndjson",
    "downsample",
    "to_interval",
    "write_csv",
    "write_csv_gz",
    "write_ndjson",
    "to_csv_string",
    "from_csv_string",
    "DAY",
    "MINUTE",
    "WEEK",
    "TimeSeries",
    "TimeSeriesError",
    "AnomalyWindow",
    "windows_to_points",
    "points_to_windows",
    "merge_windows",
    "subtract_window",
    "jitter_window",
    "SeriesSummary",
    "coefficient_of_variation",
    "seasonal_autocorrelation",
    "seasonality_strength",
    "classify_seasonality",
    "summarize",
]
