"""Regularly sampled KPI time series.

Opprentice works on (timestamp, value) KPI data collected at a fixed
interval (Table 1 of the paper: 1-minute PV and #SR, 60-minute SRT).
:class:`TimeSeries` is the container every other subsystem consumes: it
stores the values on a regular time grid, an optional missing-data mask
(NaN values), and optional point-level anomaly labels produced by the
labeling tool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

#: Seconds in one minute / day / week, used for grid arithmetic.
MINUTE = 60
DAY = 24 * 60 * MINUTE
WEEK = 7 * DAY


class TimeSeriesError(ValueError):
    """Raised for malformed series (irregular grid, bad label shape...)."""


@dataclass
class TimeSeries:
    """A regularly sampled KPI time series with optional labels.

    Parameters
    ----------
    values:
        Float array of KPI values. Missing points are ``NaN``.
    interval:
        Sampling interval in seconds (e.g. ``60`` for 1-minute data).
    start:
        Timestamp (seconds since epoch) of the first point.
    labels:
        Optional int8 array of the same length: 1 = anomaly, 0 = normal.
    name:
        Optional KPI name ("PV", "#SR", "SRT", ...).
    """

    values: np.ndarray
    interval: int
    start: int = 0
    labels: Optional[np.ndarray] = None
    name: str = ""
    _timestamps: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 1:
            raise TimeSeriesError(
                f"values must be 1-D, got shape {self.values.shape}"
            )
        if self.interval <= 0:
            raise TimeSeriesError(f"interval must be positive, got {self.interval}")
        if self.labels is not None:
            self.labels = np.asarray(self.labels, dtype=np.int8)
            if self.labels.shape != self.values.shape:
                raise TimeSeriesError(
                    f"labels shape {self.labels.shape} does not match "
                    f"values shape {self.values.shape}"
                )
            bad = set(np.unique(self.labels)) - {0, 1}
            if bad:
                raise TimeSeriesError(f"labels must be 0/1, got extra values {bad}")

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    @property
    def timestamps(self) -> np.ndarray:
        """Timestamps (seconds) of every point, computed lazily."""
        if self._timestamps is None or len(self._timestamps) != len(self.values):
            self._timestamps = (
                self.start + np.arange(len(self.values), dtype=np.int64) * self.interval
            )
        return self._timestamps

    @property
    def is_labeled(self) -> bool:
        return self.labels is not None

    @property
    def missing_mask(self) -> np.ndarray:
        """Boolean mask of missing (NaN) points — the "dirty data" of §6."""
        return np.isnan(self.values)

    @property
    def n_missing(self) -> int:
        return int(self.missing_mask.sum())

    # ------------------------------------------------------------------
    # Grid arithmetic
    # ------------------------------------------------------------------
    @property
    def points_per_day(self) -> int:
        """Number of samples in one day (paper detectors use day windows)."""
        ppd = DAY / self.interval
        if ppd != int(ppd):
            raise TimeSeriesError(
                f"interval {self.interval}s does not divide one day evenly"
            )
        return int(ppd)

    @property
    def points_per_week(self) -> int:
        return 7 * self.points_per_day

    @property
    def n_weeks(self) -> float:
        """Length of the series in weeks (may be fractional)."""
        return len(self) / self.points_per_week

    def index_at(self, timestamp: int) -> int:
        """Grid index of ``timestamp`` (must lie exactly on the grid)."""
        offset = timestamp - self.start
        if offset % self.interval != 0:
            raise TimeSeriesError(
                f"timestamp {timestamp} is not on the grid "
                f"(start={self.start}, interval={self.interval})"
            )
        index = offset // self.interval
        if not 0 <= index < len(self):
            raise TimeSeriesError(f"timestamp {timestamp} outside the series")
        return int(index)

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------
    def slice(self, begin: int, end: int) -> "TimeSeries":
        """Sub-series covering indices ``[begin, end)`` (views, not copies)."""
        if begin < 0 or end > len(self) or begin > end:
            raise TimeSeriesError(
                f"slice [{begin}, {end}) outside series of length {len(self)}"
            )
        return TimeSeries(
            values=self.values[begin:end],
            interval=self.interval,
            start=self.start + begin * self.interval,
            labels=None if self.labels is None else self.labels[begin:end],
            name=self.name,
        )

    def week(self, index: int) -> "TimeSeries":
        """The ``index``-th whole week of the series (0-based)."""
        ppw = self.points_per_week
        begin = index * ppw
        if begin >= len(self) or index < 0:
            raise TimeSeriesError(
                f"week {index} outside series of {self.n_weeks:.2f} weeks"
            )
        return self.slice(begin, min(begin + ppw, len(self)))

    def weeks(self) -> Iterator["TimeSeries"]:
        """Iterate over whole (possibly final partial) weeks."""
        for i in range(math.ceil(self.n_weeks)):
            yield self.week(i)

    def month(self, index: int, days: int = 30) -> "TimeSeries":
        """The ``index``-th "month" (30-day block by default, §5.7)."""
        ppm = days * self.points_per_day
        begin = index * ppm
        if begin >= len(self) or index < 0:
            raise TimeSeriesError(f"month {index} outside series")
        return self.slice(begin, min(begin + ppm, len(self)))

    def n_months(self, days: int = 30) -> int:
        return math.ceil(len(self) / (days * self.points_per_day))

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def with_labels(self, labels: Sequence[int]) -> "TimeSeries":
        """A copy of this series carrying ``labels``."""
        return TimeSeries(
            values=self.values,
            interval=self.interval,
            start=self.start,
            labels=np.asarray(labels, dtype=np.int8),
            name=self.name,
        )

    def anomaly_fraction(self) -> float:
        """Fraction of labelled points that are anomalies (§5.1 reports
        7.8%, 2.8% and 7.4% for PV, #SR and SRT)."""
        if self.labels is None:
            raise TimeSeriesError("series has no labels")
        return float(self.labels.mean())

    def copy(self) -> "TimeSeries":
        return TimeSeries(
            values=self.values.copy(),
            interval=self.interval,
            start=self.start,
            labels=None if self.labels is None else self.labels.copy(),
            name=self.name,
        )

    def concat(self, other: "TimeSeries") -> "TimeSeries":
        """Append ``other``, which must continue this series' grid."""
        if other.interval != self.interval:
            raise TimeSeriesError(
                f"interval mismatch: {self.interval} vs {other.interval}"
            )
        expected_start = self.start + len(self) * self.interval
        if other.start != expected_start:
            raise TimeSeriesError(
                f"other.start={other.start}, expected {expected_start}"
            )
        if (self.labels is None) != (other.labels is None):
            raise TimeSeriesError("cannot concat labelled and unlabelled series")
        labels = None
        if self.labels is not None and other.labels is not None:
            labels = np.concatenate([self.labels, other.labels])
        return TimeSeries(
            values=np.concatenate([self.values, other.values]),
            interval=self.interval,
            start=self.start,
            labels=labels,
            name=self.name,
        )
