"""Grid resampling: moving between sampling intervals.

The paper's KPIs arrive at 1-minute granularity; monitoring pipelines
routinely aggregate to coarser grids (this repository's default
profiles use 10 minutes for tractability). ``downsample`` aggregates
blocks of points onto a coarser grid with an explicit aggregation
choice — ``"mean"`` for volume-like KPIs, ``"max"`` to preserve spike
visibility (the same reason the labeling tool renders with max, §4.2).

Labels aggregate with ANY semantics: a coarse point is anomalous if any
fine point inside it was. Missing fine points are ignored by the
aggregator; an entirely-missing block stays missing.
"""

from __future__ import annotations

import warnings

import numpy as np

from .series import TimeSeries, TimeSeriesError

_AGGREGATORS = {
    "mean": np.nanmean,
    "max": np.nanmax,
    "min": np.nanmin,
    "median": np.nanmedian,
    "sum": np.nansum,
}


def downsample(
    series: TimeSeries, factor: int, *, aggregate: str = "mean"
) -> TimeSeries:
    """Aggregate every ``factor`` consecutive points into one.

    A trailing partial block is dropped (it would be a biased sample).
    ``sum`` treats an all-missing block as missing, not 0.
    """
    if factor < 1:
        raise TimeSeriesError(f"factor must be >= 1, got {factor}")
    if aggregate not in _AGGREGATORS:
        raise TimeSeriesError(
            f"aggregate must be one of {sorted(_AGGREGATORS)}, got {aggregate!r}"
        )
    if factor == 1:
        return series.copy()
    n_blocks = len(series) // factor
    if n_blocks == 0:
        raise TimeSeriesError(
            f"series of {len(series)} points has no complete block of {factor}"
        )
    blocks = series.values[: n_blocks * factor].reshape(n_blocks, factor)
    aggregator = _AGGREGATORS[aggregate]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        values = aggregator(blocks, axis=1)
    all_missing = np.isnan(blocks).all(axis=1)
    values = np.where(all_missing, np.nan, values)

    labels = None
    if series.labels is not None:
        label_blocks = series.labels[: n_blocks * factor].reshape(
            n_blocks, factor
        )
        labels = label_blocks.any(axis=1).astype(np.int8)
    return TimeSeries(
        values=values,
        interval=series.interval * factor,
        start=series.start,
        labels=labels,
        name=series.name,
    )


def to_interval(
    series: TimeSeries, interval: int, *, aggregate: str = "mean"
) -> TimeSeries:
    """Downsample to an exact target ``interval`` (seconds)."""
    if interval <= 0 or interval % series.interval != 0:
        raise TimeSeriesError(
            f"target interval {interval} is not a multiple of the series "
            f"interval {series.interval}"
        )
    return downsample(series, interval // series.interval, aggregate=aggregate)
