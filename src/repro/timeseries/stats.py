"""Descriptive statistics for KPI series (Table 1 of the paper).

The paper characterises its three KPIs by sampling interval, length in
weeks, seasonality strength (strong / moderate / weak) and coefficient
of variation (Cv). These functions compute the same quantities so the
synthetic datasets can be validated against Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .series import TimeSeries


def coefficient_of_variation(series: TimeSeries) -> float:
    """Cv = standard deviation / mean, ignoring missing points.

    Table 1 reports Cv = 0.48 (PV), 2.1 (#SR) and 0.07 (SRT).
    """
    values = series.values[~series.missing_mask]
    if len(values) == 0:
        raise ValueError("series has no observed points")
    mean = float(values.mean())
    if mean == 0.0:
        raise ValueError("Cv undefined for zero-mean series")
    return float(values.std() / abs(mean))


def seasonal_autocorrelation(series: TimeSeries, period: int) -> float:
    """Autocorrelation of the series at lag ``period`` (in points).

    A strongly seasonal KPI such as PV has autocorrelation close to 1 at
    the daily period; a weakly seasonal one such as #SR is near 0.
    Missing points are mean-imputed for the purpose of this statistic.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    values = series.values.copy()
    mask = series.missing_mask
    if mask.all():
        raise ValueError("series has no observed points")
    values[mask] = values[~mask].mean()
    if len(values) <= period:
        raise ValueError(
            f"series of length {len(values)} too short for period {period}"
        )
    centred = values - values.mean()
    denom = float(np.dot(centred, centred))
    if denom == 0.0:
        return 0.0
    num = float(np.dot(centred[:-period], centred[period:]))
    return num / denom


def seasonality_strength(series: TimeSeries, period: int | None = None) -> float:
    """Seasonality strength in [0, 1] following Hyndman's FPP definition:
    ``max(0, 1 - var(remainder) / var(seasonal + remainder))`` where the
    seasonal component is the per-phase mean after linear detrending.
    """
    if period is None:
        period = series.points_per_day
    values = series.values.copy()
    mask = series.missing_mask
    values[mask] = np.nanmean(series.values)
    n = len(values)
    if n < 2 * period:
        raise ValueError(f"need at least two periods ({2 * period}), got {n}")
    # Remove a linear trend.
    x = np.arange(n, dtype=np.float64)
    slope, intercept = np.polyfit(x, values, 1)
    detrended = values - (slope * x + intercept)
    # Per-phase means form the seasonal component.
    phases = np.arange(n) % period
    seasonal = np.zeros(n)
    for phase in range(period):
        sel = phases == phase
        seasonal[sel] = detrended[sel].mean()
    remainder = detrended - seasonal
    denom = float(np.var(seasonal + remainder))
    if denom == 0.0:
        return 0.0
    return max(0.0, 1.0 - float(np.var(remainder)) / denom)


@dataclass(frozen=True)
class SeriesSummary:
    """The Table 1 row for one KPI."""

    name: str
    interval_minutes: float
    length_weeks: float
    seasonality: float
    seasonality_label: str
    cv: float
    anomaly_fraction: float | None

    def row(self) -> str:
        anom = (
            "-" if self.anomaly_fraction is None
            else f"{100 * self.anomaly_fraction:.1f}%"
        )
        return (
            f"{self.name:>6} | interval={self.interval_minutes:g}min "
            f"| weeks={self.length_weeks:.0f} "
            f"| seasonality={self.seasonality_label} ({self.seasonality:.2f}) "
            f"| Cv={self.cv:.2f} | anomalies={anom}"
        )


def classify_seasonality(strength: float) -> str:
    """Map a numeric seasonality strength onto the paper's labels."""
    if strength >= 0.8:
        return "strong"
    if strength >= 0.4:
        return "moderate"
    return "weak"


def summarize(series: TimeSeries) -> SeriesSummary:
    """Compute the full Table 1 row for one series.

    Seasonality is measured at the daily period and, when the series is
    long enough, the weekly period (which additionally captures the
    weekday/weekend structure of volume KPIs such as PV); the stronger
    of the two is reported.
    """
    strength = seasonality_strength(series, series.points_per_day)
    if len(series) >= 2 * series.points_per_week:
        strength = max(
            strength, seasonality_strength(series, series.points_per_week)
        )
    return SeriesSummary(
        name=series.name or "?",
        interval_minutes=series.interval / 60.0,
        length_weeks=series.n_weeks,
        seasonality=strength,
        seasonality_label=classify_seasonality(strength),
        cv=coefficient_of_variation(series),
        anomaly_fraction=(
            series.anomaly_fraction() if series.is_labeled else None
        ),
    )
