"""File import/export for KPI series.

Real deployments collect KPI data "from SNMP, syslogs, network traces,
web access logs" (§2.1) and land it in flat files. This module reads
and writes the simple interchange format

    timestamp,value[,label]

with ``timestamp`` in epoch seconds on a regular grid, in three
containers: plain CSV, gzip-compressed CSV, and NDJSON (one
``{"timestamp": ..., "value": ..., "label": ...}`` object per line).
Gaps in the grid become missing (NaN) points, so dirty data round-trips
faithfully, in every container.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
import math
from pathlib import Path
from typing import List, Optional, TextIO, Tuple, Union

import numpy as np

from .series import TimeSeries, TimeSeriesError

PathOrFile = Union[str, Path, TextIO]


def _open_for(target: PathOrFile, mode: str):
    if isinstance(target, (str, Path)):
        return open(target, mode, newline=""), True
    return target, False


def _open_gzip(target: PathOrFile, mode: str):
    if isinstance(target, (str, Path)):
        return gzip.open(target, mode + "t", newline=""), True
    return target, False


def write_csv(series: TimeSeries, target: PathOrFile) -> None:
    """Write ``timestamp,value[,label]`` rows (header included).

    Missing points are written with an empty value field.
    """
    handle, owned = _open_for(target, "w")
    try:
        writer = csv.writer(handle)
        header = ["timestamp", "value"]
        if series.is_labeled:
            header.append("label")
        writer.writerow(header)
        timestamps = series.timestamps
        for i, value in enumerate(series.values):
            row = [
                int(timestamps[i]),
                "" if math.isnan(value) else repr(float(value)),
            ]
            if series.is_labeled:
                row.append(int(series.labels[i]))
            writer.writerow(row)
    finally:
        if owned:
            handle.close()


def read_csv(
    source: PathOrFile,
    *,
    interval: Optional[int] = None,
    name: str = "",
) -> TimeSeries:
    """Read a ``timestamp,value[,label]`` CSV into a :class:`TimeSeries`.

    * the header row is optional;
    * rows may arrive out of order — they are sorted by timestamp;
    * ``interval`` defaults to the smallest timestamp gap;
    * grid gaps become NaN (missing) points with label 0;
    * duplicate timestamps are an error.
    """
    handle, owned = _open_for(source, "r")
    try:
        rows = []
        has_labels = False
        for lineno, row in enumerate(csv.reader(handle), 1):
            if not row or not row[0].strip():
                continue
            first = row[0].strip().lower()
            if lineno == 1 and first == "timestamp":
                continue
            if len(row) < 2:
                raise TimeSeriesError(
                    f"line {lineno}: expected timestamp,value[,label]"
                )
            timestamp = int(float(row[0]))
            raw_value = row[1].strip()
            value = float(raw_value) if raw_value else math.nan
            label = 0
            if len(row) >= 3 and row[2].strip():
                label = int(row[2])
                has_labels = True
            rows.append((timestamp, value, label))
    finally:
        if owned:
            handle.close()

    return _assemble_rows(
        rows, has_labels=has_labels, interval=interval, name=name,
        what="CSV",
    )


def _assemble_rows(
    rows: List[Tuple[int, float, int]],
    *,
    has_labels: bool,
    interval: Optional[int],
    name: str,
    what: str,
) -> TimeSeries:
    """Turn parsed ``(timestamp, value, label)`` rows into a series.

    Shared by every container format so the grid semantics (sorting,
    duplicate rejection, interval inference, gap filling) are identical
    whether the rows came from CSV, gzip-CSV or NDJSON.
    """
    if not rows:
        raise TimeSeriesError(f"{what} contains no data rows")
    rows.sort(key=lambda r: r[0])
    timestamps = np.array([r[0] for r in rows], dtype=np.int64)
    if len(np.unique(timestamps)) != len(timestamps):
        raise TimeSeriesError(f"duplicate timestamps in {what}")

    if interval is None:
        if len(timestamps) < 2:
            raise TimeSeriesError(
                "cannot infer the interval from a single row; pass interval="
            )
        interval = int(np.diff(timestamps).min())
    if interval <= 0:
        raise TimeSeriesError(f"interval must be positive, got {interval}")
    offsets = timestamps - timestamps[0]
    if (offsets % interval).any():
        raise TimeSeriesError(
            f"timestamps do not lie on a {interval}-second grid"
        )

    n = int(offsets[-1] // interval) + 1
    values = np.full(n, np.nan)
    labels = np.zeros(n, dtype=np.int8)
    indices = offsets // interval
    values[indices] = [r[1] for r in rows]
    labels[indices] = [r[2] for r in rows]
    return TimeSeries(
        values=values,
        interval=interval,
        start=int(timestamps[0]),
        labels=labels if has_labels else None,
        name=name,
    )


def write_csv_gz(series: TimeSeries, target: PathOrFile) -> None:
    """Write :func:`write_csv` output through a gzip stream."""
    handle, owned = _open_gzip(target, "w")
    try:
        write_csv(series, handle)
    finally:
        if owned:
            handle.close()


def read_csv_gz(
    source: PathOrFile,
    *,
    interval: Optional[int] = None,
    name: str = "",
) -> TimeSeries:
    """Read a gzip-compressed CSV (same semantics as :func:`read_csv`)."""
    handle, owned = _open_gzip(source, "r")
    try:
        return read_csv(handle, interval=interval, name=name)
    finally:
        if owned:
            handle.close()


def write_ndjson(series: TimeSeries, target: PathOrFile) -> None:
    """Write one ``{"timestamp", "value"[, "label"]}`` object per line.

    Missing points are written with ``"value": null``.
    """
    handle, owned = _open_for(target, "w")
    try:
        timestamps = series.timestamps
        for i, value in enumerate(series.values):
            row = {
                "timestamp": int(timestamps[i]),
                "value": None if math.isnan(value) else float(value),
            }
            if series.is_labeled:
                row["label"] = int(series.labels[i])
            handle.write(json.dumps(row, separators=(",", ":")) + "\n")
    finally:
        if owned:
            handle.close()


def read_ndjson(
    source: PathOrFile,
    *,
    interval: Optional[int] = None,
    name: str = "",
) -> TimeSeries:
    """Read NDJSON rows into a :class:`TimeSeries`.

    Same grid semantics as :func:`read_csv`: rows may arrive out of
    order, gaps become NaN, duplicates and off-grid timestamps error.
    ``"value": null`` (or a missing value field) is a missing point.
    """
    handle, owned = _open_for(source, "r")
    try:
        rows = []
        has_labels = False
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TimeSeriesError(
                    f"line {lineno}: invalid JSON ({exc.msg})"
                ) from exc
            if not isinstance(obj, dict) or "timestamp" not in obj:
                raise TimeSeriesError(
                    f"line {lineno}: expected an object with a timestamp"
                )
            timestamp = int(obj["timestamp"])
            raw_value = obj.get("value")
            value = math.nan if raw_value is None else float(raw_value)
            label = 0
            if obj.get("label") is not None:
                label = int(obj["label"])
                has_labels = True
            rows.append((timestamp, value, label))
    finally:
        if owned:
            handle.close()

    return _assemble_rows(
        rows, has_labels=has_labels, interval=interval, name=name,
        what="NDJSON",
    )


def to_csv_string(series: TimeSeries) -> str:
    """The CSV text of a series (convenience for tests and snippets)."""
    buffer = io.StringIO()
    write_csv(series, buffer)
    return buffer.getvalue()


def from_csv_string(text: str, **kwargs) -> TimeSeries:
    """Parse CSV text produced by :func:`to_csv_string`."""
    return read_csv(io.StringIO(text), **kwargs)
