"""Anomaly-type diagnosis: classify *what kind* of anomaly an alert is.

Opprentice's output is a binary flag; §2.1's operators distinguish
"jitters, slow ramp-ups, sudden spikes and dips" and react to each
differently. This package adds that second stage: windowed shape
features over the alerted run (:mod:`.features`), a one-vs-rest forest
over the existing ``repro.ml`` machinery (:mod:`.classifier`), trained
on the injectors' free ground-truth kinds (:mod:`.training`), and the
multiclass scoring the CI smoke job reports (:mod:`.evaluate`).

`MonitoringService` attaches the predicted kind to every closed alert
(``AlertEvent.diagnosis``), and the fitted diagnoser rides inside
service checkpoints, so fleet shards and the serve plane diagnose
identically after a crash-restore.
"""

from .classifier import DIAGNOSER_FORMAT_VERSION, AnomalyDiagnoser
from .evaluate import diagnosis_report, kind_confusion, macro_f1
from .features import CONTEXT_POINTS, FEATURE_NAMES, window_shape_features
from .training import (
    default_diagnoser,
    fit_diagnoser,
    series_period,
    training_corpus,
    window_training_rows,
)

__all__ = [
    "AnomalyDiagnoser",
    "DIAGNOSER_FORMAT_VERSION",
    "CONTEXT_POINTS",
    "FEATURE_NAMES",
    "window_shape_features",
    "default_diagnoser",
    "fit_diagnoser",
    "series_period",
    "training_corpus",
    "window_training_rows",
    "diagnosis_report",
    "kind_confusion",
    "macro_f1",
]
