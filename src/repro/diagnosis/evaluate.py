"""Multiclass evaluation for the diagnosis stage.

`repro.evaluation` is built around the paper's binary precision/recall
machinery; diagnosis needs the multiclass counterparts — a per-kind
confusion matrix and macro-averaged F1 — in a JSON-friendly shape the
CI corpus-smoke job can upload as an artifact.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def kind_confusion(
    true_kinds: Sequence[str],
    predicted_kinds: Sequence[str],
    *,
    kinds: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Confusion counts: ``matrix[i][j]`` = true kind i predicted as j."""
    if len(true_kinds) != len(predicted_kinds):
        raise ValueError(
            f"{len(true_kinds)} true kinds vs {len(predicted_kinds)} predictions"
        )
    if kinds is None:
        kinds = sorted(set(true_kinds) | set(predicted_kinds))
    else:
        kinds = list(kinds)
        missing = (set(true_kinds) | set(predicted_kinds)) - set(kinds)
        if missing:
            raise ValueError(f"kinds {sorted(missing)} not in {kinds}")
    index = {kind: i for i, kind in enumerate(kinds)}
    matrix = [[0 for _ in kinds] for _ in kinds]
    for truth, predicted in zip(true_kinds, predicted_kinds):
        matrix[index[truth]][index[predicted]] += 1
    return {"kinds": kinds, "matrix": matrix}


def diagnosis_report(
    true_kinds: Sequence[str], predicted_kinds: Sequence[str]
) -> Dict[str, Any]:
    """Per-kind precision/recall/F1, macro-F1 and the confusion matrix."""
    confusion = kind_confusion(true_kinds, predicted_kinds)
    kinds: List[str] = confusion["kinds"]
    matrix = confusion["matrix"]
    per_kind: Dict[str, Dict[str, float]] = {}
    f1_values = []
    for i, kind in enumerate(kinds):
        true_positive = matrix[i][i]
        predicted_total = sum(row[i] for row in matrix)
        true_total = sum(matrix[i])
        precision = true_positive / predicted_total if predicted_total else 0.0
        recall = true_positive / true_total if true_total else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        per_kind[kind] = {
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "support": true_total,
        }
        f1_values.append(f1)
    return {
        "n_windows": len(true_kinds),
        "macro_f1": sum(f1_values) / len(f1_values) if f1_values else 0.0,
        "accuracy": (
            sum(matrix[i][i] for i in range(len(kinds))) / len(true_kinds)
            if true_kinds
            else 0.0
        ),
        "per_kind": per_kind,
        "confusion": confusion,
    }


def macro_f1(
    true_kinds: Sequence[str], predicted_kinds: Sequence[str]
) -> float:
    """Unweighted mean of per-kind F1 scores."""
    return diagnosis_report(true_kinds, predicted_kinds)["macro_f1"]
