"""A multiclass anomaly-type classifier over the binary forest.

``repro.ml`` classifiers are deliberately binary (the paper's detection
task is anomalous-or-not), so the diagnoser decomposes the type
question one-vs-rest: one :class:`~repro.ml.RandomForest` per anomaly
kind, votes compared across kinds. Ties break on the alphabetically
first kind, so predictions are deterministic.

Like every model in the repo the fitted diagnoser serialises to plain
JSON (:meth:`AnomalyDiagnoser.to_dict`), which is how it rides inside
service checkpoints and across the serve plane's shard processes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..ml import NotFittedError, RandomForest
from .features import window_shape_features

#: Dict-layout version for :meth:`AnomalyDiagnoser.to_dict`.
DIAGNOSER_FORMAT_VERSION = 1


class AnomalyDiagnoser:
    """One-vs-rest anomaly-kind classifier on window shape features."""

    def __init__(
        self,
        *,
        n_estimators: int = 48,
        max_depth: Optional[int] = None,
        seed: int = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self.kinds_: Optional[List[str]] = None
        self._forests: Dict[str, RandomForest] = {}

    # ------------------------------------------------------------------
    def fit(
        self, features: np.ndarray, kinds: Sequence[str]
    ) -> "AnomalyDiagnoser":
        """Fit on per-window feature rows and their ground-truth kinds."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or len(features) != len(kinds):
            raise ValueError(
                f"features {features.shape} do not match {len(kinds)} kinds"
            )
        observed = sorted(set(kinds))
        if len(observed) < 2:
            raise ValueError(
                f"need at least two anomaly kinds to fit, got {observed}"
            )
        labels = np.asarray(kinds)
        self._forests = {}
        for offset, kind in enumerate(observed):
            forest = RandomForest(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                seed=self.seed + offset,
            )
            forest.fit(features, (labels == kind).astype(np.int8))
            self._forests[kind] = forest
        self.kinds_ = observed
        return self

    def _require_fitted(self) -> List[str]:
        if self.kinds_ is None:
            raise NotFittedError("diagnoser is not fitted")
        return self.kinds_

    # ------------------------------------------------------------------
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Per-kind vote fractions, columns ordered as ``kinds_``.

        Rows are normalised to sum to 1 where any forest votes at all,
        so the output reads as a (deterministic) kind distribution.
        """
        kinds = self._require_fitted()
        features = np.asarray(features, dtype=np.float64)
        votes = np.column_stack(
            [self._forests[kind].predict_proba(features) for kind in kinds]
        )
        totals = votes.sum(axis=1, keepdims=True)
        return np.divide(
            votes, totals, out=np.asarray(votes, dtype=np.float64),
            where=totals > 0,
        )

    def predict(self, features: np.ndarray) -> List[str]:
        kinds = self._require_fitted()
        probs = self.predict_proba(features)
        return [kinds[int(i)] for i in np.argmax(probs, axis=1)]

    def diagnose(
        self,
        window: Sequence[float],
        context: Sequence[float],
        *,
        period: Optional[int] = None,
    ) -> str:
        """Classify one alert window given its preceding context."""
        row = window_shape_features(window, context, period=period)
        return self.predict(row.reshape(1, -1))[0]

    # ------------------------------------------------------------------
    # JSON persistence (same portable-artifact discipline as the rest
    # of the repo: tree arrays, no pickle).
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        kinds = self._require_fitted()
        return {
            "format_version": DIAGNOSER_FORMAT_VERSION,
            "n_estimators": self.n_estimators,
            "max_depth": self.max_depth,
            "seed": self.seed,
            "kinds": list(kinds),
            "forests": {
                kind: self._forests[kind].to_dict() for kind in kinds
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AnomalyDiagnoser":
        version = payload.get("format_version")
        if version != DIAGNOSER_FORMAT_VERSION:
            raise ValueError(
                f"unsupported diagnoser format {version!r} "
                f"(expected {DIAGNOSER_FORMAT_VERSION})"
            )
        diagnoser = cls(
            n_estimators=int(payload["n_estimators"]),
            max_depth=payload.get("max_depth"),
            seed=int(payload.get("seed", 0)),
        )
        diagnoser.kinds_ = [str(kind) for kind in payload["kinds"]]
        diagnoser._forests = {
            kind: RandomForest.from_dict(payload["forests"][kind])
            for kind in diagnoser.kinds_
        }
        return diagnoser
