"""Windowed shape features for anomaly-type classification.

§2.1 of the paper lists the anomaly *patterns* operators react to
differently — "jitters, slow ramp-ups, sudden spikes and dips" — and
the telecom taxonomy of Bordeau-Aubert et al. (arXiv 2308.16279) adds
sustained level shifts and variance changes. The features here are the
minimal scale-free summary that separates those shapes: deviations of
the alert window from its *expected* values, plus the window's internal
geometry (slope, decay, alternation, roughness).

The expectation is seasonal when it can be: given ``period`` (points
per day) and at least one period of preceding context, each window
point is compared against the value one period earlier — which is what
makes a multiplicative dip (ratio to expectation constant) separable
from an additive level shift (difference to expectation constant).
With less context the features degrade gracefully to a local-median
baseline.

Everything is causal: only the window itself and the points before it
are consulted, so the same function serves training (injected windows
with known kinds) and live diagnosis at alert-close time.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: Preceding points used for the local level/roughness baseline. The
#: seasonal expectation wants a full period of context on top of this;
#: callers should pass ``max(period, CONTEXT_POINTS)`` context points.
CONTEXT_POINTS = 32

FEATURE_NAMES = [
    "mean_dev",        # mean deviation from expectation, in units of
                       # the local level: sign separates up from down
    "abs_mean_dev",    # mean |deviation|: overall anomaly magnitude
    "direction",       # mean_dev / abs_mean_dev: +1 all-up, -1 all-down,
                       # ~0 alternating (jitter)
    "std_dev",         # spread of the additive deviations: small for a
                       # clean level shift, larger when the anomaly
                       # scales with the signal
    "first_dev",       # deviation of the first window point
    "last_dev",        # deviation of the last window point
    "max_dev",
    "min_dev",
    "argmax_pos",      # where the peak sits, 0..1 (spikes peak early)
    "argmin_pos",
    "slope",           # linear-fit slope of deviation over 0..1 (ramps)
    "decay",           # first_dev - last_dev (spikes decay, ramps climb)
    "late_minus_early",  # mean of the 2nd half minus mean of the 1st
    "alternation",     # fraction of sign flips in the first differences
                       # (the jitter injector alternates every point)
    "roughness",       # median |first difference|, in local-level units
    "rough_ratio",     # window roughness / context roughness: a
                       # multiplicative dip compresses the local texture
                       # (< 1), an additive level shift preserves it (~1)
    "mult_mean",       # mean(window/expected) - 1: the §2.1 "sudden
                       # drop by 20% or 50%" fraction, signed
    "mult_std",        # spread of window/expected: ~0 when the anomaly
                       # is a constant factor (dip)
    "affinity",        # log(mult_std / std_dev): negative favours a
                       # multiplicative shape, positive an additive one
    "has_seasonal",    # 1.0 when a full period of context backed the
                       # expectation, 0.0 on the local-median fallback
    "length",          # log1p(window length)
]


def _expected_values(
    window: np.ndarray,
    context: np.ndarray,
    level: float,
    period: Optional[int],
) -> tuple:
    """Per-point expectation for the window, and whether it is seasonal.

    With ``period`` points per day and at least a period of context,
    the expectation is the value one period before each window point
    (NaNs fall back to the level). Otherwise it is the flat local
    level.
    """
    n = len(window)
    if period and period >= 4 and len(context) >= period and n <= period:
        expected = context[len(context) - period:len(context) - period + n]
        expected = np.where(np.isfinite(expected), expected, level)
        return expected.astype(np.float64), True
    return np.full(n, level, dtype=np.float64), False


def window_shape_features(
    window: Sequence[float],
    context: Sequence[float],
    *,
    period: Optional[int] = None,
) -> np.ndarray:
    """Shape features of an anomalous window against its context.

    ``window`` is the alerted run of values, ``context`` the points
    immediately preceding it, ``period`` the seasonal period in points
    (points per day for daily KPIs). Missing (NaN) points are ignored;
    an all-missing window yields all zeros. Returns a vector aligned
    with :data:`FEATURE_NAMES`.
    """
    w_raw = np.asarray(window, dtype=np.float64)
    c_raw = np.asarray(context, dtype=np.float64)
    keep = np.isfinite(w_raw)
    out = np.zeros(len(FEATURE_NAMES), dtype=np.float64)
    if not keep.any():
        return out

    tail = c_raw[-CONTEXT_POINTS:]
    tail = tail[np.isfinite(tail)]
    reference = tail if len(tail) else w_raw[keep]
    level = float(np.median(reference))
    scale = max(abs(level), 1e-9)

    expected, seasonal = _expected_values(w_raw, c_raw, level, period)
    w = w_raw[keep]
    e = expected[keep]
    d = (w - e) / scale
    ratio = w / np.where(np.abs(e) > 1e-9, e, scale)
    n = len(d)

    mean_dev = float(d.mean())
    abs_mean = float(np.abs(d).mean())
    positions = np.linspace(0.0, 1.0, n) if n > 1 else np.zeros(1)
    diffs = np.diff(w) / scale
    if n > 1:
        centred = positions - positions.mean()
        slope = float(
            np.dot(centred, d - d.mean()) / max(np.dot(centred, centred), 1e-12)
        )
        flips = np.sign(diffs[1:]) * np.sign(diffs[:-1]) < 0
        alternation = float(flips.mean()) if len(flips) else (
            1.0 if diffs[0] != 0 else 0.0
        )
        roughness = float(np.median(np.abs(diffs)))
    else:
        slope = 0.0
        alternation = 0.0
        roughness = 0.0
    context_rough = (
        float(np.median(np.abs(np.diff(tail))) / scale)
        if len(tail) > 1
        else 0.0
    )
    half = max(n // 2, 1)
    late_minus_early = (
        float(d[half:].mean() - d[:half].mean()) if n > 1 else 0.0
    )
    mult_std = float(ratio.std())
    std_dev = float(d.std())

    out[0] = mean_dev
    out[1] = abs_mean
    out[2] = mean_dev / max(abs_mean, 1e-9)
    out[3] = std_dev
    out[4] = float(d[0])
    out[5] = float(d[-1])
    out[6] = float(d.max())
    out[7] = float(d.min())
    out[8] = float(np.argmax(d)) / max(n - 1, 1)
    out[9] = float(np.argmin(d)) / max(n - 1, 1)
    out[10] = slope
    out[11] = float(d[0] - d[-1])
    out[12] = late_minus_early
    out[13] = alternation
    out[14] = roughness
    out[15] = roughness / max(context_rough, 1e-9) if context_rough else 0.0
    out[16] = float(ratio.mean()) - 1.0
    out[17] = mult_std
    out[18] = float(np.log((mult_std + 1e-3) / (std_dev + 1e-3)))
    out[19] = 1.0 if seasonal else 0.0
    out[20] = float(np.log1p(n))
    return out
