"""Training data and the default diagnoser.

The injectors in :mod:`repro.data.anomalies` record the exact kind of
every window they place, so diagnosis training labels are free: build
labelled series across a spread of synthetic regimes, cut each ground
truth window plus its preceding context into shape features, and fit
the one-vs-rest forest. Everything is seeded, so two processes (or a
supervisor and the shard it forks) always train the same diagnoser.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data import (
    DEFAULT_INJECTORS,
    InjectionResult,
    SeasonalProfile,
    generate_kpi,
    inject_anomalies,
)
from .classifier import AnomalyDiagnoser
from .features import CONTEXT_POINTS, window_shape_features

#: Seasonal regimes the default diagnoser trains across: quiet and
#: noisy, flat and strongly daily, additive and bursty — so the shape
#: features learn the anomaly patterns, not one profile's texture.
_TRAINING_PROFILES: Tuple[Tuple[str, int, SeasonalProfile], ...] = (
    ("flat-quiet", 900, SeasonalProfile(
        base_level=120.0, daily_amplitude=0.15, noise_scale=0.02,
        trend=0.0,
    )),
    ("daily-strong", 1800, SeasonalProfile(
        base_level=80.0, daily_amplitude=0.6, noise_scale=0.03,
        trend=0.0,
    )),
    ("noisy-trend", 900, SeasonalProfile(
        base_level=200.0, daily_amplitude=0.3, noise_scale=0.06,
        trend=0.02, noise_ar=0.5,
    )),
    ("bursty", 1800, SeasonalProfile(
        base_level=60.0, daily_amplitude=0.4, noise_scale=0.04,
        burst_rate=0.01, burst_scale=0.6,
    )),
)


def series_period(interval: int) -> Optional[int]:
    """Points per day for a regular grid, or None off the daily cycle."""
    if interval > 0 and 86400 % interval == 0:
        return 86400 // interval
    return None


def window_training_rows(
    result: InjectionResult,
    *,
    context_points: Optional[int] = None,
) -> Tuple[np.ndarray, List[str]]:
    """Feature rows + kind labels for every ground-truth window.

    Pairs each window of an :class:`~repro.data.InjectionResult` with
    the values preceding it — a full seasonal period when the interval
    divides a day, else :data:`~repro.diagnosis.CONTEXT_POINTS` — which
    is exactly what the live diagnoser sees at alert-close time.
    """
    if len(result.windows) != len(result.kinds):
        raise ValueError(
            f"{len(result.windows)} windows but {len(result.kinds)} kinds"
        )
    period = series_period(result.series.interval)
    if context_points is None:
        context_points = max(period or 0, CONTEXT_POINTS)
    values = result.series.values
    rows = []
    for window in result.windows:
        context = values[max(window.begin - context_points, 0):window.begin]
        rows.append(
            window_shape_features(
                values[window.begin:window.end], context, period=period
            )
        )
    features = (
        np.vstack(rows) if rows else np.empty((0, 0), dtype=np.float64)
    )
    return features, list(result.kinds)


def training_corpus(
    *,
    seed: int = 0,
    weeks: float = 2.0,
    repeats: int = 3,
    injectors: Optional[Dict] = None,
) -> Tuple[np.ndarray, List[str]]:
    """A balanced, deterministic diagnosis training set.

    Injects anomalies into ``repeats`` differently-seeded copies of
    each training regime. The injector mix is flattened to equal
    weights so no kind is starved of examples regardless of the
    operational mix used at detection time.
    """
    if injectors is None:
        injectors = {
            kind: (fn, 1.0) for kind, (fn, _) in DEFAULT_INJECTORS.items()
        }
    blocks: List[np.ndarray] = []
    kinds: List[str] = []
    for index, (name, interval, profile) in enumerate(_TRAINING_PROFILES):
        for repeat in range(repeats):
            stream_seed = seed + 101 * index + 13 * repeat
            generated = generate_kpi(
                weeks=weeks,
                interval=interval,
                profile=profile,
                seed=stream_seed,
                name=f"diagnosis-train-{name}-{repeat}",
            )
            result = inject_anomalies(
                generated.series,
                target_fraction=0.25,
                seed=stream_seed + 7,
                mean_window=7.0,
                injectors=injectors,
            )
            rows, row_kinds = window_training_rows(result)
            if len(rows):
                blocks.append(rows)
                kinds.extend(row_kinds)
    return np.vstack(blocks), kinds


def fit_diagnoser(
    *,
    seed: int = 0,
    n_estimators: int = 32,
    weeks: float = 2.0,
    repeats: int = 8,
) -> AnomalyDiagnoser:
    """Fit a fresh diagnoser on the synthetic training corpus."""
    features, kinds = training_corpus(seed=seed, weeks=weeks, repeats=repeats)
    return AnomalyDiagnoser(n_estimators=n_estimators, seed=seed).fit(
        features, kinds
    )


@lru_cache(maxsize=1)
def default_diagnoser() -> AnomalyDiagnoser:
    """The process-wide default diagnoser (fitted once, deterministic).

    Every caller — the fleet CLI, the serve plane's shard factories,
    tests — gets the same fitted object, and because training is fully
    seeded, *different* processes converge on bit-identical forests.
    """
    return fit_diagnoser(seed=0)
