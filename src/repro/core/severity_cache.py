"""Content-addressed severity-column cache.

Every feature column Opprentice extracts is a pure function of three
things: the detector family, its sampled parameters, and the input
series. :class:`SeverityCache` keys columns by exactly that triple —
``sha256(feature_name | interval | value bytes)`` — so repeated
``fit`` / backtest / benchmark passes over the same KPI skip the
detector bank entirely, and invalidation is automatic: change any
input and the key changes with it.

Two layers:

* an in-process LRU (bounded entry count, thread-safe) that serves the
  common "same series, same session" case;
* an optional on-disk store (one ``.npy`` file per column under a
  two-level fan-out) that survives process restarts; point
  ``$REPRO_CACHE_DIR`` at a directory to enable it, or pass
  ``directory=`` explicitly.

Cached columns are returned read-only; the extractor copies them into
the output matrix, so shared entries can never be corrupted by callers.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..timeseries import TimeSeries

#: Environment variable enabling the on-disk store (and, via
#: :func:`SeverityCache.from_env`, caching as a whole).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default in-process LRU capacity, in columns. The full Table 3 bank
#: is 133 columns per KPI, so this comfortably holds a fleet of KPIs.
DEFAULT_MAX_ENTRIES = 4096

#: Bump when the severity semantics of any detector change in a way the
#: key cannot see (should be never — parameters are part of the key).
_KEY_VERSION = "v1"


def series_digest(series: TimeSeries) -> str:
    """Hex digest of everything a severity column depends on in the
    series: the exact value bytes (NaN patterns included) and the
    sampling interval (seasonal detectors consume it via window
    parameters derived from it)."""
    values = np.ascontiguousarray(series.values, dtype=np.float64)
    hasher = hashlib.sha256()
    hasher.update(_KEY_VERSION.encode())
    hasher.update(str(int(series.interval)).encode())
    hasher.update(values.tobytes())
    return hasher.hexdigest()


def column_key(feature_name: str, digest: str) -> str:
    """Cache key for one configuration's column of one series."""
    return hashlib.sha256(
        f"{_KEY_VERSION}|{feature_name}|{digest}".encode()
    ).hexdigest()


class SeverityCache:
    """A two-layer (memory LRU + optional disk) severity-column store."""

    def __init__(
        self,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        directory: Optional[Union[str, Path]] = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.directory = Path(directory) if directory else None
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_env(cls) -> Optional["SeverityCache"]:
        """A disk-backed cache when ``$REPRO_CACHE_DIR`` is set, else
        ``None`` (caching off). This is what extractors consult when no
        explicit cache is configured."""
        directory = os.environ.get(CACHE_DIR_ENV, "")
        if not directory:
            return None
        return cls(directory=directory)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def _path_for(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.npy"

    def get(self, key: str) -> Optional[np.ndarray]:
        """The cached column for ``key``, or ``None``. Disk hits are
        promoted into the memory LRU."""
        with self._lock:
            column = self._memory.get(key)
            if column is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return column
        if self.directory is not None:
            path = self._path_for(key)
            try:
                column = np.load(path, allow_pickle=False)
            except (OSError, ValueError):
                column = None
            if column is not None:
                column = np.asarray(column, dtype=np.float64)
                column.flags.writeable = False
                with self._lock:
                    self._remember(key, column)
                    self.hits += 1
                return column
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, column: np.ndarray) -> None:
        """Store one severity column under ``key`` (memory + disk)."""
        column = np.array(column, dtype=np.float64, copy=True).reshape(-1)
        column.flags.writeable = False
        with self._lock:
            self._remember(key, column)
        if self.directory is not None:
            path = self._path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: readers only ever see complete files.
            tmp = path.with_suffix(f".tmp-{os.getpid()}")
            try:
                with open(tmp, "wb") as handle:
                    np.save(handle, column, allow_pickle=False)
                os.replace(tmp, path)
            except OSError:
                tmp.unlink(missing_ok=True)

    def _remember(self, key: str, column: np.ndarray) -> None:
        self._memory[key] = column
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def clear_memory(self) -> None:
        """Drop the in-process layer (the disk store is untouched)."""
        with self._lock:
            self._memory.clear()
