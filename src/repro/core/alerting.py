"""Anomaly-duration filtering (§6, "Anomaly duration").

The paper deliberately detects at point level and notes that "it is
relatively easy to implement a duration filter based upon the
point-level anomalies we detected. For example, if operators are only
interested in continuous anomalies that last for more than 5 minutes,
one can solve it through a simple threshold filter." This module is
that filter, plus alert aggregation for paging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..obs import get_provider
from ..timeseries import AnomalyWindow, TimeSeries, points_to_windows


def duration_filter(
    predictions: np.ndarray, min_duration_points: int
) -> np.ndarray:
    """Suppress anomalous runs shorter than ``min_duration_points``.

    Points with missing predictions (negative placeholders) break runs
    and stay untouched.
    """
    if min_duration_points < 1:
        raise ValueError(
            f"min_duration_points must be >= 1, got {min_duration_points}"
        )
    predictions = np.asarray(predictions)
    filtered = predictions.copy()
    binary = (predictions == 1).astype(np.int8)
    for window in points_to_windows(binary):
        if len(window) < min_duration_points:
            filtered[window.begin: window.end] = 0
    return filtered


@dataclass(frozen=True)
class Alert:
    """One operator-facing alert: a continuous anomalous window."""

    begin_index: int
    end_index: int
    begin_timestamp: int
    end_timestamp: int
    peak_score: float

    @property
    def duration_points(self) -> int:
        return self.end_index - self.begin_index


def alerts_from_predictions(
    series: TimeSeries,
    predictions: np.ndarray,
    scores: np.ndarray,
    *,
    min_duration_points: int = 1,
) -> List[Alert]:
    """Aggregate point detections into alert windows.

    This is the reporting step of §6: "the detection results should be
    reported to operators and let operators decide how to deal with
    them".
    """
    predictions = np.asarray(predictions)
    scores = np.asarray(scores, dtype=np.float64)
    if len(predictions) != len(series) or len(scores) != len(series):
        raise ValueError("predictions/scores length must match the series")
    obs = get_provider()
    with obs.span(
        "alerting.aggregate",
        kpi=series.name or "",
        n_points=len(series),
    ) as span:
        filtered = duration_filter(predictions, min_duration_points)
        alerts = []
        for window in points_to_windows((filtered == 1).astype(np.int8)):
            window_scores = scores[window.begin: window.end]
            peak = (
                float(np.nanmax(window_scores)) if len(window_scores) else 0.0
            )
            alerts.append(
                Alert(
                    begin_index=window.begin,
                    end_index=window.end,
                    begin_timestamp=int(series.timestamps[window.begin]),
                    end_timestamp=int(series.timestamps[window.end - 1])
                    + series.interval,
                    peak_score=peak,
                )
            )
        span.set("n_alerts", len(alerts))
    obs.counter(
        "repro_alerts_emitted_total",
        "Alerts aggregated from batch predictions",
    ).inc(len(alerts))
    return alerts


def windows_from_alerts(alerts: List[Alert]) -> List[AnomalyWindow]:
    """The alert windows as plain label windows (for re-labeling flows)."""
    return [AnomalyWindow(a.begin_index, a.end_index) for a in alerts]
