"""An operational monitoring service around the Opprentice pipeline.

This is the deployment wrapper a downstream team would run (Fig 3's two
halves glued together): points stream in, alerts stream out, operator
labels arrive periodically, and the classifier retrains incrementally
on all labelled history with the cThld tracked by the EWMA rule.

    service = MonitoringService(preference=..., min_duration_points=2)
    service.bootstrap(labeled_history)         # initial training (>= warm-up)
    for value in live_feed:
        events = service.ingest(value)         # [] or [opened/closed alerts]
    service.submit_labels(windows)             # operator's weekly labeling
    service.retrain()                          # weekly incremental retrain

The service never looks at future data: detection uses the streaming
detectors, and retraining uses only points the operator has labelled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..detectors import DetectorConfig
from ..evaluation import MODERATE_PREFERENCE, AccuracyPreference
from ..ml import Classifier
from ..obs import MetricsRegistry, get_provider
from ..timeseries import AnomalyWindow, TimeSeries, merge_windows, windows_to_points
from .opprentice import Opprentice, default_classifier_factory
from .prediction import best_cthld
from .streaming import StreamingDetector

#: Version tag of the service-checkpoint dict layout produced by
#: :meth:`MonitoringService.snapshot`.
SERVICE_SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class AlertEvent:
    """An alert lifecycle event emitted by :meth:`MonitoringService.ingest`."""

    kind: str  # "opened" | "closed"
    begin_index: int
    end_index: int  # exclusive; == begin for a just-opened alert
    peak_score: float
    #: Which KPI the alert belongs to (the monitored series' name).
    #: Defaults to None so single-KPI callers constructing events by
    #: hand stay source-compatible; fleet deployments rely on it to
    #: attribute alerts from many services on one sink.
    kpi: Optional[str] = None
    #: The diagnosed anomaly *type* ("spike", "dip", "ramp", "jitter",
    #: "level_shift") attached when a ``closed`` event ends a run and
    #: the service carries a fitted diagnoser. None on ``opened``
    #: events (the shape is only classifiable once the run is whole)
    #: and on services without a diagnoser.
    diagnosis: Optional[str] = None


class ServiceStats:
    """Counters exposed for dashboards, backed by a per-service
    :class:`~repro.obs.MetricsRegistry`.

    The attribute API is unchanged (``stats.points_ingested += 1``
    still works via property setters) but the numbers now live in real
    counter metrics, so ``stats.registry.snapshot()`` exports the same
    dashboard through the Prometheus/JSON exporters. The registry is
    always live — independent of whether the process-global
    observability provider is enabled.

    The property setters are a non-atomic read-modify-write and exist
    only for tests and backfill; live code paths must use the
    ``inc_*`` methods, which increment the underlying counters under
    their lock and stay correct under concurrent ingest.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._points_ingested = self.registry.counter(
            "repro_points_ingested_total", "Points pushed through ingest()"
        )
        self._anomalous_points = self.registry.counter(
            "repro_points_anomalous_total",
            "Ingested points classified anomalous",
        )
        self._alerts_opened = self.registry.counter(
            "repro_alerts_opened_total",
            "Alerts that crossed the duration filter",
        )
        self._retrain_rounds = self.registry.counter(
            "repro_retrain_rounds_total", "Incremental retraining rounds"
        )
        self._callback_errors = self.registry.counter(
            "repro_alert_callback_errors_total",
            "Alert callbacks that raised (and were contained)",
        )
        #: Closed-alert diagnoses by anomaly kind. Kept as a plain dict
        #: alongside the kind-labelled registry counters so the counts
        #: round-trip through as_dict()/checkpoints like the scalars.
        self._alerts_diagnosed: Dict[str, int] = {}

    @property
    def points_ingested(self) -> int:
        return int(self._points_ingested.value)

    @points_ingested.setter
    def points_ingested(self, value: int) -> None:
        self._points_ingested._set_total(value)

    @property
    def anomalous_points(self) -> int:
        return int(self._anomalous_points.value)

    @anomalous_points.setter
    def anomalous_points(self, value: int) -> None:
        self._anomalous_points._set_total(value)

    @property
    def alerts_opened(self) -> int:
        return int(self._alerts_opened.value)

    @alerts_opened.setter
    def alerts_opened(self, value: int) -> None:
        self._alerts_opened._set_total(value)

    @property
    def retrain_rounds(self) -> int:
        return int(self._retrain_rounds.value)

    @retrain_rounds.setter
    def retrain_rounds(self, value: int) -> None:
        self._retrain_rounds._set_total(value)

    @property
    def callback_errors(self) -> int:
        return int(self._callback_errors.value)

    @callback_errors.setter
    def callback_errors(self, value: int) -> None:
        self._callback_errors._set_total(value)

    @property
    def alerts_diagnosed(self) -> Dict[str, int]:
        return dict(self._alerts_diagnosed)

    @alerts_diagnosed.setter
    def alerts_diagnosed(self, counts: Mapping[str, int]) -> None:
        self._alerts_diagnosed = {
            str(kind): int(count) for kind, count in counts.items()
        }
        for kind, count in self._alerts_diagnosed.items():
            self.registry.counter(
                "repro_alerts_diagnosed_total",
                "Closed alerts by diagnosed anomaly kind",
                kind=kind,
            )._set_total(count)

    # ------------------------------------------------------------------
    # Atomic increments for live code paths.
    # ------------------------------------------------------------------
    def inc_points_ingested(self, amount: int = 1) -> None:
        self._points_ingested.inc(amount)

    def inc_anomalous_points(self, amount: int = 1) -> None:
        self._anomalous_points.inc(amount)

    def inc_alerts_opened(self, amount: int = 1) -> None:
        self._alerts_opened.inc(amount)

    def inc_retrain_rounds(self, amount: int = 1) -> None:
        self._retrain_rounds.inc(amount)

    def inc_callback_errors(self, amount: int = 1) -> None:
        self._callback_errors.inc(amount)

    def inc_alerts_diagnosed(self, kind: str, amount: int = 1) -> None:
        self._alerts_diagnosed[kind] = (
            self._alerts_diagnosed.get(kind, 0) + amount
        )
        self.registry.counter(
            "repro_alerts_diagnosed_total",
            "Closed alerts by diagnosed anomaly kind",
            kind=kind,
        ).inc(amount)

    def as_dict(self) -> dict:
        return {
            "points_ingested": self.points_ingested,
            "anomalous_points": self.anomalous_points,
            "alerts_opened": self.alerts_opened,
            "retrain_rounds": self.retrain_rounds,
            "callback_errors": self.callback_errors,
            "alerts_diagnosed": self.alerts_diagnosed,
        }

    def __repr__(self) -> str:  # keeps the old dataclass-style repr
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ServiceStats({body})"


class MonitoringService:
    """Streaming detection + alerting + incremental retraining."""

    def __init__(
        self,
        *,
        configs: Optional[Sequence[DetectorConfig]] = None,
        preference: AccuracyPreference = MODERATE_PREFERENCE,
        classifier_factory: Callable[[], Classifier] = default_classifier_factory,
        min_duration_points: int = 1,
        max_train_points: Optional[int] = None,
        alert_callback: Optional[Callable[[AlertEvent], None]] = None,
        diagnoser=None,
        workers: int = 1,
        backend=None,
        cache=None,
    ):
        if min_duration_points < 1:
            raise ValueError("min_duration_points must be >= 1")
        # The extraction knobs matter for bootstrap() and retrain(),
        # which run the full bank over the labelled history; per-point
        # ingest uses the detector streams and is unaffected.
        self._opprentice = Opprentice(
            configs=configs,
            preference=preference,
            classifier_factory=classifier_factory,
            max_train_points=max_train_points,
            workers=workers,
            backend=backend,
            cache=cache,
        )
        self.min_duration_points = min_duration_points
        self._alert_callback = alert_callback
        #: Optional anomaly-type classifier
        #: (:class:`repro.diagnosis.AnomalyDiagnoser`); when present,
        #: every ``closed`` event carries its predicted kind.
        self.diagnoser = diagnoser
        self.stats = ServiceStats()

        self._history: Optional[TimeSeries] = None
        self._label_windows: List[AnomalyWindow] = []
        self._labeled_until = 0
        self._streaming: Optional[StreamingDetector] = None
        self._pending_values: List[float] = []
        #: Scores and severity rows of the pending (not yet labelled)
        #: points only — retraining consumes and resets both, so their
        #: memory is bounded by the inter-retrain window, not by the
        #: total history. The severity rows double as the new points'
        #: feature-matrix rows (stream == batch), which is what makes
        #: retraining O(new points).
        self._pending_scores: List[float] = []
        self._pending_rows: List[np.ndarray] = []
        self._run_begin: Optional[int] = None
        self._run_scores: List[float] = []

    # ------------------------------------------------------------------
    @property
    def opprentice(self) -> Opprentice:
        return self._opprentice

    @property
    def kpi(self) -> Optional[str]:
        """The monitored KPI's identity (the bootstrap series' name)."""
        return self._history.name if self._history is not None else None

    @property
    def history_length(self) -> int:
        base = len(self._history) if self._history is not None else 0
        return base + len(self._pending_values)

    @property
    def pending_points(self) -> int:
        """Ingested points not yet consumed by a retraining round."""
        return len(self._pending_values)

    @property
    def cthld(self) -> float:
        if self._opprentice.cthld_ is None:
            raise RuntimeError("service is not bootstrapped")
        return self._opprentice.cthld_

    # ------------------------------------------------------------------
    def bootstrap(self, labeled_history: TimeSeries) -> None:
        """Initial training on operator-labelled history (§4.1: "label
        anomalies in the historical data at the beginning")."""
        if not labeled_history.is_labeled:
            raise ValueError("bootstrap requires a labelled series")
        obs = get_provider()
        with obs.span(
            "service.bootstrap",
            kpi=labeled_history.name or "",
            n_points=len(labeled_history),
        ):
            self._history = labeled_history.copy()
            self._labeled_until = len(labeled_history)
            from ..timeseries import points_to_windows

            self._label_windows = points_to_windows(labeled_history.labels)
            self._opprentice.fit(labeled_history)
            self._streaming = StreamingDetector(
                self._opprentice, history=labeled_history
            )
            self._pending_values = []
            self._pending_scores = []
            self._pending_rows = []
        obs.gauge("repro_cthld", "Current classification threshold").set(
            self.cthld
        )
        obs.gauge(
            "repro_stream_buffer_points",
            "Points buffered across all detector streams",
        ).set(self._streaming.buffered_points())
        obs.emit(
            "bootstrap",
            kpi=labeled_history.name or "",
            n_points=len(labeled_history),
            cthld=self.cthld,
        )

    # ------------------------------------------------------------------
    def ingest(self, value: float) -> List[AlertEvent]:
        """Process one incoming point; returns alert lifecycle events."""
        if self._streaming is None:
            raise RuntimeError("bootstrap() must run before ingest()")
        obs = get_provider()
        with obs.timer(
            "repro_ingest_seconds", "MonitoringService.ingest wall time",
            kpi=self.kpi or "",
        ):
            decision = self._streaming.push(value)
        self._pending_values.append(float(value))
        self._pending_scores.append(decision.score)
        self._pending_rows.append(decision.severities)
        self.stats.inc_points_ingested()
        obs.counter(
            "repro_points_ingested_total", "Points pushed through ingest()"
        ).inc()

        events: List[AlertEvent] = []
        index = decision.index
        if decision.is_anomaly:
            self.stats.inc_anomalous_points()
            obs.counter(
                "repro_points_anomalous_total",
                "Ingested points classified anomalous",
            ).inc()
            if self._run_begin is None:
                self._run_begin = index
                self._run_scores = []
            self._run_scores.append(decision.score)
            run_length = index - self._run_begin + 1
            if run_length == self.min_duration_points:
                # The run just crossed the duration filter: open.
                events.append(
                    AlertEvent(
                        kind="opened",
                        begin_index=self._run_begin,
                        end_index=index + 1,
                        peak_score=max(self._run_scores),
                        kpi=self.kpi,
                    )
                )
                self.stats.inc_alerts_opened()
        else:
            if self._run_begin is not None:
                run_length = index - self._run_begin
                if run_length >= self.min_duration_points:
                    events.append(
                        AlertEvent(
                            kind="closed",
                            begin_index=self._run_begin,
                            end_index=index,
                            peak_score=max(self._run_scores),
                            kpi=self.kpi,
                            diagnosis=self._diagnose_run(
                                self._run_begin, index
                            ),
                        )
                    )
                self._run_begin = None
                self._run_scores = []
        self._dispatch_events(events)
        return events

    # ------------------------------------------------------------------
    def _values_slice(self, begin: int, end: int) -> np.ndarray:
        """Ingested values by absolute index, across the history/pending
        boundary (the indices :class:`AlertEvent` uses)."""
        base = len(self._history) if self._history is not None else 0
        parts = []
        if begin < base:
            parts.append(self._history.values[begin:min(end, base)])
        if end > base:
            parts.append(
                np.asarray(
                    self._pending_values[max(begin - base, 0):end - base],
                    dtype=np.float64,
                )
            )
        return (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
        )

    def _diagnose_run(self, begin: int, end: int) -> Optional[str]:
        """The diagnosed anomaly kind of a finished run, or None.

        Consults only the run's values and the points before it, so
        the diagnosis is a pure function of the ingested stream — an
        interrupted-and-restored service reproduces it exactly.
        """
        if self.diagnoser is None or end <= begin:
            return None
        from ..diagnosis import CONTEXT_POINTS, series_period

        interval = (
            int(self._history.interval) if self._history is not None else 0
        )
        period = series_period(interval) if interval else None
        context_len = max(period or 0, CONTEXT_POINTS)
        window = self._values_slice(begin, end)
        if not np.isfinite(window).any():
            return None
        context = self._values_slice(max(begin - context_len, 0), begin)
        return self.diagnoser.diagnose(window, context, period=period)

    def _dispatch_events(self, events: List[AlertEvent]) -> None:
        """Record alert lifecycle events and notify the callback.

        The callback is operator-supplied code (a pager, a webhook, a
        fleet sink): if it raises, the error is counted and logged but
        never propagates — a broken alert sink must not wedge the
        ingest stream mid-point.
        """
        obs = get_provider()
        for event in events:
            obs.counter(
                "repro_alerts_total",
                "Alert lifecycle transitions",
                event=event.kind,
            ).inc()
            if event.diagnosis is not None:
                self.stats.inc_alerts_diagnosed(event.diagnosis)
                obs.counter(
                    "repro_alerts_diagnosed_total",
                    "Closed alerts by diagnosed anomaly kind",
                    kind=event.diagnosis,
                ).inc()
            fields = dict(
                kpi=event.kpi or "",
                begin_index=event.begin_index,
                end_index=event.end_index,
                peak_score=event.peak_score,
            )
            if event.diagnosis is not None:
                fields["diagnosis"] = event.diagnosis
            obs.emit(f"alert_{event.kind}", **fields)
        if self._alert_callback is not None:
            for event in events:
                try:
                    self._alert_callback(event)
                except Exception as error:  # repro: disable=api-hygiene — callbacks are arbitrary operator code; swallowing (after counting) is the contract
                    self.stats.inc_callback_errors()
                    obs.counter(
                        "repro_alert_callback_errors_total",
                        "Alert callbacks that raised (and were contained)",
                    ).inc()
                    obs.emit(
                        "alert_callback_error",
                        kpi=event.kpi or "",
                        event=event.kind,
                        begin_index=event.begin_index,
                        error=repr(error),
                    )

    def _close_open_run(self) -> List[AlertEvent]:
        """Close a dangling alert run (retraining rebuilds the streams,
        so a run left open would never emit its ``closed`` event). The
        run ends — exclusively — at the last ingested point."""
        events: List[AlertEvent] = []
        if self._run_begin is not None:
            end = self.history_length
            if end - self._run_begin >= self.min_duration_points:
                events.append(
                    AlertEvent(
                        kind="closed",
                        begin_index=self._run_begin,
                        end_index=end,
                        peak_score=max(self._run_scores),
                        kpi=self.kpi,
                        diagnosis=self._diagnose_run(self._run_begin, end),
                    )
                )
            self._run_begin = None
            self._run_scores = []
        self._dispatch_events(events)
        return events

    # ------------------------------------------------------------------
    def submit_labels(self, windows: Sequence[AnomalyWindow]) -> None:
        """Operator labels for ingested (not yet labelled) data. Indices
        are absolute (matching :class:`AlertEvent` indices)."""
        total = self.history_length
        for window in windows:
            begin, end = int(window.begin), int(window.end)
            if begin < 0 or begin >= end:
                raise ValueError(
                    f"invalid label window [{begin}, {end}): begin must "
                    "be >= 0 and < end"
                )
            if end > total:
                raise ValueError(
                    f"window {window} beyond ingested history ({total})"
                )
        self._label_windows = merge_windows(
            list(self._label_windows) + list(windows)
        )

    def retrain(self) -> float:
        """Incremental retraining on all ingested data (§3.2).

        All pending points become labelled history (anomalous where the
        operator submitted windows), the best cThld of the newly
        labelled span feeds the EWMA predictor, and the classifier is
        refitted incrementally: the training feature matrix is extended
        with the severity rows already collected during streaming
        detection, and the warm detector streams carry over through a
        checkpoint instead of replaying history — both O(new points),
        keeping retrain cost flat in history length. An alert run still
        open at this point is closed first (its ``closed`` event goes to
        the callback/metrics, not to this call's return value), so alert
        lifecycles always pair up. Returns the new cThld.
        """
        if self._history is None:
            raise RuntimeError("bootstrap() must run before retrain()")
        if not self._pending_values:
            raise ValueError("no new data since the last retraining round")
        obs = get_provider()
        retrain_span = obs.span(
            "service.retrain",
            kpi=self._history.name or "",
            n_new_points=len(self._pending_values),
        )
        with retrain_span:
            return self._retrain_impl(retrain_span)

    def _retrain_impl(self, span) -> float:
        assert self._history is not None
        assert self._streaming is not None
        obs = get_provider()
        began = time.perf_counter()
        new_values = np.asarray(self._pending_values)
        extension = TimeSeries(
            values=new_values,
            interval=self._history.interval,
            start=self._history.start
            + len(self._history) * self._history.interval,
            labels=np.zeros(len(new_values), dtype=np.int8),
            name=self._history.name,
        )
        combined = self._history.concat(extension)
        labels = windows_to_points(self._label_windows, len(combined))
        combined = combined.with_labels(labels)

        # Feed the finished span's best cThld into the EWMA predictor.
        span_scores = np.asarray(self._pending_scores)
        span_labels = labels[self._labeled_until:]
        if len(span_scores) and span_labels.sum() > 0:
            best = best_cthld(
                span_scores, span_labels, self._opprentice.preference
            )
            self._opprentice.cthld_predictor.observe_best(best)

        # The streams have already seen every point of `combined`
        # (bootstrap replay + one push per ingested point), so their
        # current state *is* the post-replay state: checkpoint them now
        # and restore into the rebuilt detector instead of replaying.
        self._close_open_run()
        checkpoint = self._streaming.snapshot()

        if self._opprentice._feature_values is None:
            # A service restored from a checkpoint saved without the
            # feature-matrix cache (snapshot(include_features=False)):
            # fall back to a full refit, which re-extracts the combined
            # series and re-primes the cache. The incremental == full
            # equivalence tests make the two paths interchangeable.
            self._opprentice.fit(combined)
        else:
            self._opprentice.fit_incremental(
                combined, np.asarray(self._pending_rows, dtype=np.float64)
            )
        self._opprentice.cthld_ = self._opprentice.cthld_predictor.predict(
            self._opprentice.classifier_factory,
            self._opprentice._train_features,
            self._opprentice._train_labels,
        )
        self._streaming = StreamingDetector(
            self._opprentice, checkpoint=checkpoint, kpi=combined.name
        )
        self._history = combined
        self._labeled_until = len(combined)
        self._pending_values = []
        self._pending_scores = []
        self._pending_rows = []
        self.stats.inc_retrain_rounds()
        obs.counter(
            "repro_retrain_rounds_total", "Incremental retraining rounds"
        ).inc()
        obs.gauge("repro_cthld", "Current classification threshold").set(
            self.cthld
        )
        obs.gauge(
            "repro_retrain_last_seconds",
            "Wall time of the most recent retraining round",
        ).set(time.perf_counter() - began)
        obs.gauge(
            "repro_stream_buffer_points",
            "Points buffered across all detector streams",
        ).set(self._streaming.buffered_points())
        span.set("cthld", self.cthld)
        obs.emit(
            "retrain",
            kpi=combined.name or "",
            n_points=len(combined),
            cthld=self.cthld,
        )
        return self.cthld

    # ------------------------------------------------------------------
    # Checkpointing: the full mutable service state as one JSON dict.
    # ------------------------------------------------------------------
    def snapshot(self, include_features: bool = True) -> Dict[str, Any]:
        """The service's mutable state as a JSON-serializable dict.

        Together with the model artifact (:func:`~repro.core.save_model`)
        this makes a deployed service fully restartable: restoring the
        snapshot into a fresh service over the same fitted model
        reproduces the uninterrupted service's future alert stream
        exactly — including an alert run still *open* at checkpoint time
        (``_run_begin``/``_run_scores``) and the pending not-yet-labelled
        buffers, so a crash-restart never silently drops an in-flight
        alert or the points awaiting the next retraining round.

        ``include_features=False`` omits the cached training feature
        matrix (the bulkiest part, O(history × configs)); a service
        restored without it stays bit-identical for ingest and falls
        back to a full refit on its next :meth:`retrain`.
        """
        if self._history is None or self._streaming is None:
            raise RuntimeError("bootstrap() must run before snapshot()")
        features = self._opprentice._feature_values
        return {
            "format_version": SERVICE_SNAPSHOT_VERSION,
            "kpi": self._history.name,
            "min_duration_points": self.min_duration_points,
            "history": {
                "values": [float(v) for v in self._history.values],
                "labels": [int(v) for v in self._history.labels],
                "interval": int(self._history.interval),
                "start": int(self._history.start),
                "name": self._history.name,
            },
            "label_windows": [
                [int(w.begin), int(w.end)] for w in self._label_windows
            ],
            "labeled_until": int(self._labeled_until),
            "pending": {
                "values": list(self._pending_values),
                "scores": [float(s) for s in self._pending_scores],
                "rows": [
                    [float(x) for x in row] for row in self._pending_rows
                ],
            },
            "run": {
                "begin": self._run_begin,
                "scores": [float(s) for s in self._run_scores],
            },
            "stream": self._streaming.snapshot(),
            "cthld_predictor": self._opprentice.cthld_predictor.snapshot(),
            "train_features": (
                [[float(x) for x in row] for row in features]
                if include_features and features is not None
                else None
            ),
            "diagnoser": (
                self.diagnoser.to_dict()
                if self.diagnoser is not None
                else None
            ),
            "stats": self.stats.as_dict(),
        }

    def restore_snapshot(
        self, snapshot: Mapping[str, Any]
    ) -> "MonitoringService":
        """Load a :meth:`snapshot` into this service.

        The service must carry a *fitted* Opprentice over the same
        detector bank the snapshot was taken with (typically via
        :func:`~repro.core.load_model` into ``service.opprentice``); the
        stream restore validates the bank through its feature names.
        """
        version = snapshot.get("format_version")
        if version != SERVICE_SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported service snapshot version {version!r} "
                f"(expected {SERVICE_SNAPSHOT_VERSION})"
            )
        if (
            self._opprentice.classifier_ is None
            or self._opprentice.imputer_ is None
        ):
            raise RuntimeError(
                "restore_snapshot() needs a fitted model; load_model() "
                "into service.opprentice first"
            )
        with get_provider().span(
            "service.restore", kpi=snapshot.get("kpi") or ""
        ):
            stored = snapshot["history"]
            history = TimeSeries(
                values=np.asarray(stored["values"], dtype=np.float64),
                interval=int(stored["interval"]),
                start=int(stored["start"]),
                labels=np.asarray(stored["labels"], dtype=np.int8),
                name=stored["name"],
            )
            # A default-bank service has no configs until it sees a
            # series; derive them from the restored history so a plain
            # MonitoringService() can be rebuilt from model + snapshot
            # without re-bootstrapping.
            self._opprentice.extractor.configs(history)
            # The stream restore is the bank-compatibility gate: run it
            # first so a mismatched checkpoint leaves the service
            # untouched.
            streaming = StreamingDetector(
                self._opprentice, checkpoint=snapshot["stream"],
                kpi=history.name,
            )
            self._history = history
            self._label_windows = [
                AnomalyWindow(int(begin), int(end))
                for begin, end in snapshot["label_windows"]
            ]
            self._labeled_until = int(snapshot["labeled_until"])
            pending = snapshot["pending"]
            self._pending_values = [float(v) for v in pending["values"]]
            self._pending_scores = [float(s) for s in pending["scores"]]
            self._pending_rows = [
                np.asarray(row, dtype=np.float64) for row in pending["rows"]
            ]
            run = snapshot["run"]
            self._run_begin = (
                None if run["begin"] is None else int(run["begin"])
            )
            self._run_scores = [float(s) for s in run["scores"]]
            self._streaming = streaming
            self.min_duration_points = int(snapshot["min_duration_points"])
            self._opprentice.cthld_predictor.restore(
                snapshot.get("cthld_predictor") or {}
            )
            # Re-prime the incremental-retraining caches: the fitted
            # history and (when persisted) its raw feature rows.
            self._opprentice._history = history
            features = snapshot.get("train_features")
            self._opprentice._feature_values = (
                np.asarray(features, dtype=np.float64)
                if features is not None
                else None
            )
            diagnoser = snapshot.get("diagnoser")
            if diagnoser is not None:
                from ..diagnosis import AnomalyDiagnoser

                self.diagnoser = AnomalyDiagnoser.from_dict(diagnoser)
            stats = snapshot.get("stats") or {}
            self.stats.points_ingested = int(stats.get("points_ingested", 0))
            self.stats.anomalous_points = int(
                stats.get("anomalous_points", 0)
            )
            self.stats.alerts_opened = int(stats.get("alerts_opened", 0))
            self.stats.retrain_rounds = int(stats.get("retrain_rounds", 0))
            self.stats.callback_errors = int(stats.get("callback_errors", 0))
            self.stats.alerts_diagnosed = stats.get("alerts_diagnosed") or {}
        return self
