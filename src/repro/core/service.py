"""An operational monitoring service around the Opprentice pipeline.

This is the deployment wrapper a downstream team would run (Fig 3's two
halves glued together): points stream in, alerts stream out, operator
labels arrive periodically, and the classifier retrains incrementally
on all labelled history with the cThld tracked by the EWMA rule.

    service = MonitoringService(preference=..., min_duration_points=2)
    service.bootstrap(labeled_history)         # initial training (>= warm-up)
    for value in live_feed:
        events = service.ingest(value)         # [] or [opened/closed alerts]
    service.submit_labels(windows)             # operator's weekly labeling
    service.retrain()                          # weekly incremental retrain

The service never looks at future data: detection uses the streaming
detectors, and retraining uses only points the operator has labelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..detectors import DetectorConfig
from ..evaluation import MODERATE_PREFERENCE, AccuracyPreference
from ..ml import Classifier
from ..timeseries import AnomalyWindow, TimeSeries, merge_windows, windows_to_points
from .opprentice import Opprentice, default_classifier_factory
from .prediction import best_cthld
from .streaming import StreamingDetector


@dataclass(frozen=True)
class AlertEvent:
    """An alert lifecycle event emitted by :meth:`MonitoringService.ingest`."""

    kind: str  # "opened" | "closed"
    begin_index: int
    end_index: int  # exclusive; == begin for a just-opened alert
    peak_score: float


@dataclass
class ServiceStats:
    """Counters exposed for dashboards."""

    points_ingested: int = 0
    anomalous_points: int = 0
    alerts_opened: int = 0
    retrain_rounds: int = 0


class MonitoringService:
    """Streaming detection + alerting + incremental retraining."""

    def __init__(
        self,
        *,
        configs: Optional[Sequence[DetectorConfig]] = None,
        preference: AccuracyPreference = MODERATE_PREFERENCE,
        classifier_factory: Callable[[], Classifier] = default_classifier_factory,
        min_duration_points: int = 1,
        max_train_points: Optional[int] = None,
        alert_callback: Optional[Callable[[AlertEvent], None]] = None,
    ):
        if min_duration_points < 1:
            raise ValueError("min_duration_points must be >= 1")
        self._opprentice = Opprentice(
            configs=configs,
            preference=preference,
            classifier_factory=classifier_factory,
            max_train_points=max_train_points,
        )
        self.min_duration_points = min_duration_points
        self._alert_callback = alert_callback
        self.stats = ServiceStats()

        self._history: Optional[TimeSeries] = None
        self._label_windows: List[AnomalyWindow] = []
        self._labeled_until = 0
        self._streaming: Optional[StreamingDetector] = None
        self._scores: List[float] = []
        self._pending_values: List[float] = []
        self._run_begin: Optional[int] = None
        self._run_scores: List[float] = []

    # ------------------------------------------------------------------
    @property
    def opprentice(self) -> Opprentice:
        return self._opprentice

    @property
    def history_length(self) -> int:
        base = len(self._history) if self._history is not None else 0
        return base + len(self._pending_values)

    @property
    def cthld(self) -> float:
        if self._opprentice.cthld_ is None:
            raise RuntimeError("service is not bootstrapped")
        return self._opprentice.cthld_

    # ------------------------------------------------------------------
    def bootstrap(self, labeled_history: TimeSeries) -> None:
        """Initial training on operator-labelled history (§4.1: "label
        anomalies in the historical data at the beginning")."""
        if not labeled_history.is_labeled:
            raise ValueError("bootstrap requires a labelled series")
        self._history = labeled_history.copy()
        self._labeled_until = len(labeled_history)
        from ..timeseries import points_to_windows

        self._label_windows = points_to_windows(labeled_history.labels)
        self._opprentice.fit(labeled_history)
        self._streaming = StreamingDetector(
            self._opprentice, history=labeled_history
        )
        self._scores = [float("nan")] * len(labeled_history)
        self._pending_values = []

    # ------------------------------------------------------------------
    def ingest(self, value: float) -> List[AlertEvent]:
        """Process one incoming point; returns alert lifecycle events."""
        if self._streaming is None:
            raise RuntimeError("bootstrap() must run before ingest()")
        decision = self._streaming.push(value)
        self._pending_values.append(float(value))
        self._scores.append(decision.score)
        self.stats.points_ingested += 1

        events: List[AlertEvent] = []
        index = decision.index
        if decision.is_anomaly:
            self.stats.anomalous_points += 1
            if self._run_begin is None:
                self._run_begin = index
                self._run_scores = []
            self._run_scores.append(decision.score)
            run_length = index - self._run_begin + 1
            if run_length == self.min_duration_points:
                # The run just crossed the duration filter: open.
                events.append(
                    AlertEvent(
                        kind="opened",
                        begin_index=self._run_begin,
                        end_index=index + 1,
                        peak_score=max(self._run_scores),
                    )
                )
                self.stats.alerts_opened += 1
        else:
            if self._run_begin is not None:
                run_length = index - self._run_begin
                if run_length >= self.min_duration_points:
                    events.append(
                        AlertEvent(
                            kind="closed",
                            begin_index=self._run_begin,
                            end_index=index,
                            peak_score=max(self._run_scores),
                        )
                    )
                self._run_begin = None
                self._run_scores = []
        if self._alert_callback is not None:
            for event in events:
                self._alert_callback(event)
        return events

    # ------------------------------------------------------------------
    def submit_labels(self, windows: Sequence[AnomalyWindow]) -> None:
        """Operator labels for ingested (not yet labelled) data. Indices
        are absolute (matching :class:`AlertEvent` indices)."""
        total = self.history_length
        for window in windows:
            if window.end > total:
                raise ValueError(
                    f"window {window} beyond ingested history ({total})"
                )
        self._label_windows = merge_windows(
            list(self._label_windows) + list(windows)
        )

    def retrain(self) -> float:
        """Incremental retraining on all ingested data (§3.2).

        All pending points become labelled history (anomalous where the
        operator submitted windows), the best cThld of the newly
        labelled span feeds the EWMA predictor, and the classifier and
        detector streams are rebuilt. Returns the new cThld.
        """
        if self._history is None:
            raise RuntimeError("bootstrap() must run before retrain()")
        if not self._pending_values:
            raise ValueError("no new data since the last retraining round")

        new_values = np.asarray(self._pending_values)
        extension = TimeSeries(
            values=new_values,
            interval=self._history.interval,
            start=self._history.start
            + len(self._history) * self._history.interval,
            labels=np.zeros(len(new_values), dtype=np.int8),
            name=self._history.name,
        )
        combined = self._history.concat(extension)
        labels = windows_to_points(self._label_windows, len(combined))
        combined = combined.with_labels(labels)

        # Feed the finished span's best cThld into the EWMA predictor.
        span_scores = np.asarray(self._scores[self._labeled_until:])
        span_labels = labels[self._labeled_until:]
        if len(span_scores) and span_labels.sum() > 0:
            best = best_cthld(
                span_scores, span_labels, self._opprentice.preference
            )
            self._opprentice.cthld_predictor.observe_best(best)

        self._opprentice.fit(combined)
        self._opprentice.cthld_ = self._opprentice.cthld_predictor.predict(
            self._opprentice.classifier_factory,
            self._opprentice._train_features,
            self._opprentice._train_labels,
        )
        self._streaming = StreamingDetector(self._opprentice, history=combined)
        self._history = combined
        self._labeled_until = len(combined)
        self._pending_values = []
        self.stats.retrain_rounds += 1
        return self.cthld
