"""Pluggable execution backends for feature extraction (§5.8).

The paper's per-point detection cost is dominated by running the
14-detector / 133-configuration bank, and §5.8 notes that "all the
detectors can run in parallel". This module turns that observation into
an explicit execution layer: the extraction work is first compiled into
:class:`ExtractionTask` units (one fused :class:`FamilyTask` per
detector family — see :func:`repro.detectors.build_family_evaluators` —
so sibling configurations share their window sums, seasonal gathers and
smoothing sweeps), then an :class:`ExecutionBackend` decides *where*
the tasks run:

* ``serial`` — one task after another in the calling thread;
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; real
  speed-ups only for detectors that release the GIL (SVD, the seasonal
  matrices), the pure-Python ones serialize;
* ``process`` — a *persistent* :class:`~concurrent.futures.ProcessPoolExecutor`
  fed through :mod:`multiprocessing.shared_memory`: the pool is forked
  once and reused across ``run_tasks`` calls, each call publishes the
  input series into a fresh shared segment that workers attach by name
  (and cache until the name changes), and only the per-configuration
  float64 severity columns travel back. ``close()`` — or garbage
  collection, via ``weakref.finalize`` — releases the pool and segment;
  a crashed worker triggers one pool re-fork and the undelivered tasks
  are resubmitted.

Whatever the backend, results are assembled into the feature matrix by
each task's registry indices, so the matrix is bit-identical across all
three backends (the test suite enforces this for the full Table 3
bank). Code reachable from the worker entry points must not mutate
module-level state — mutations would be invisible to the parent and
make results depend on worker scheduling; the ``worker-reachability``
lint rule enforces this statically by walking the project call graph
from ``_process_worker_run`` / ``_process_worker_attach``.
"""

from __future__ import annotations

import abc
import os
import weakref
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..detectors import DetectorConfig
from ..detectors.base import Detector, FamilyEvaluator, build_family_evaluators
from ..detectors.holt_winters import batch_severities
from ..obs import get_provider
from ..timeseries import TimeSeries

BACKEND_NAMES = ("serial", "thread", "process")


def get_fork_context():
    """The ``fork`` multiprocessing context (or the platform default
    where fork is unavailable).

    Shared by the persistent extraction pool below and the serve
    plane's :class:`~repro.serve.ShardSupervisor`: forked children
    inherit the parent's memory copy-on-write, so a bootstrapped
    template service (or a compiled detector bank) crosses into the
    worker for free instead of being pickled.
    """
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def resolve_workers(workers: int) -> int:
    """Validate and resolve a worker count.

    ``0`` means "auto": one worker per available CPU. Negative counts
    are rejected (they used to fall through to the serial path
    silently).
    """
    if workers < 0:
        raise ValueError(
            f"workers must be >= 0 (0 = one per CPU), got {workers}"
        )
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def map_ordered(fn, items: Sequence, workers: int = 1) -> list:
    """Apply ``fn`` to every item, returning results in *item* order.

    One worker (or one item) runs inline; more fan out over a thread
    pool. This is the in-process dispatch primitive the fleet layer
    (``repro.fleet``) uses to run independent shards concurrently:
    unlike the extraction backends there is no process option, because
    the units carry live stateful services (classifier, warm streams)
    that must not be copied into workers.
    """
    items = list(items)
    effective = resolve_workers(workers)
    if effective <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=min(effective, len(items))) as pool:
        return list(pool.map(fn, items))


# ----------------------------------------------------------------------
# Task model
# ----------------------------------------------------------------------
class ExtractionTask(abc.ABC):
    """One unit of extraction work filling one or more matrix columns."""

    #: Feature-matrix column indices this task fills, in output order.
    indices: Tuple[int, ...]
    #: Feature names of those columns (cache keys derive from these).
    names: Tuple[str, ...]
    #: Detector family, for the per-task latency histogram label.
    kind: str

    @abc.abstractmethod
    def run(self, series: TimeSeries) -> np.ndarray:
        """Severity columns of shape ``(len(series), len(indices))``."""


@dataclass(frozen=True)
class ConfigTask(ExtractionTask):
    """A single detector configuration -> a single severity column."""

    index: int
    detector: Detector

    @property
    def indices(self) -> Tuple[int, ...]:
        return (self.index,)

    @property
    def names(self) -> Tuple[str, ...]:
        return (self.detector.feature_name,)

    @property
    def kind(self) -> str:
        return self.detector.kind

    def run(self, series: TimeSeries) -> np.ndarray:
        return np.asarray(
            self.detector.severities(series), dtype=np.float64
        ).reshape(-1, 1)


@dataclass(frozen=True)
class HoltWintersBatchTask(ExtractionTask):
    """One vectorised pass over a season group of HW configurations.

    Kept for callers that compile their own task lists; the standard
    :func:`build_tasks` path now reaches the same ``batch_severities``
    sweep through the holt-winters :class:`FamilyTask`.
    """

    indices: Tuple[int, ...]
    names: Tuple[str, ...]
    alphas: Tuple[float, ...]
    betas: Tuple[float, ...]
    gammas: Tuple[float, ...]
    season_points: int

    kind = "holt-winters"

    def run(self, series: TimeSeries) -> np.ndarray:
        return np.asarray(
            batch_severities(
                series.values,
                np.asarray(self.alphas),
                np.asarray(self.betas),
                np.asarray(self.gammas),
                self.season_points,
            ),
            dtype=np.float64,
        )


@dataclass(frozen=True)
class FamilyTask(ExtractionTask):
    """One fused pass over a detector family's configurations."""

    evaluator: FamilyEvaluator

    @property
    def indices(self) -> Tuple[int, ...]:
        return self.evaluator.indices

    @property
    def names(self) -> Tuple[str, ...]:
        return self.evaluator.names

    @property
    def kind(self) -> str:
        return self.evaluator.kind

    def run(self, series: TimeSeries) -> np.ndarray:
        return np.asarray(self.evaluator.evaluate(series), dtype=np.float64)


def build_tasks(configs: Sequence[DetectorConfig]) -> List[ExtractionTask]:
    """Compile a configuration bank into extraction tasks.

    Configurations are grouped by detector family (window bank,
    seasonal residuals, historical grids, the Holt-Winters sweep,
    wavelet bands) into one fused :class:`FamilyTask` each; a config
    with no family becomes a single-config task. The grouping also
    works on arbitrary *subsets* of a bank — the cache layer compiles
    tasks only for the columns it misses.
    """
    return [
        FamilyTask(evaluator=evaluator)
        for evaluator in build_family_evaluators(configs)
    ]


def _run_task_instrumented(
    task: ExtractionTask, series: TimeSeries, backend: str
) -> np.ndarray:
    """Run one task under the standard observability envelope.

    In process-backend workers the global provider is the no-op, so the
    span/timer cost nothing there; the parent's ``feature_matrix.extract``
    span still records the overall wall time.
    """
    obs = get_provider()
    with obs.span(
        "extract.config",
        backend=backend,
        detector=task.kind,
        n_columns=len(task.indices),
    ):
        with obs.timer(
            "repro_detector_severities_seconds",
            "Severity extraction per detector configuration batch",
            detector=task.kind,
        ):
            return task.run(series)


TaskResult = Tuple[ExtractionTask, np.ndarray]


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class ExecutionBackend(abc.ABC):
    """Strategy deciding where extraction tasks execute."""

    name: str = "backend"

    def __init__(self, workers: int = 1):
        self.workers = resolve_workers(workers)

    @abc.abstractmethod
    def run_tasks(
        self, tasks: Sequence[ExtractionTask], series: TimeSeries
    ) -> Iterator[TaskResult]:
        """Yield ``(task, columns)`` pairs in any completion order."""

    def close(self) -> None:
        """Release any long-lived resources (pools, shared memory).

        A no-op for the stateless backends; the process backend holds a
        persistent pool and segment across ``run_tasks`` calls and
        frees them here (or on garbage collection)."""


class SerialBackend(ExecutionBackend):
    """Run every task in the calling thread, registry order."""

    name = "serial"

    def run_tasks(
        self, tasks: Sequence[ExtractionTask], series: TimeSeries
    ) -> Iterator[TaskResult]:
        for task in tasks:
            yield task, _run_task_instrumented(task, series, self.name)


class ThreadBackend(ExecutionBackend):
    """Fan tasks out over a thread pool (GIL-releasing detectors only
    actually overlap; this is the pre-existing behaviour)."""

    name = "thread"

    def run_tasks(
        self, tasks: Sequence[ExtractionTask], series: TimeSeries
    ) -> Iterator[TaskResult]:
        if self.workers <= 1 or len(tasks) <= 1:
            yield from SerialBackend(1).run_tasks(tasks, series)
            return
        from concurrent.futures import ThreadPoolExecutor

        def run(task: ExtractionTask) -> TaskResult:
            return task, _run_task_instrumented(task, series, self.name)

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            yield from pool.map(run, tasks)


# -- process backend ---------------------------------------------------
# Worker-global read-only series, attached (and cached) per shared-
# memory segment name: the persistent pool outlives any one series, so
# each task carries the segment metadata and the worker swaps its
# mapping only when the name changes.
_worker_series: Optional[TimeSeries] = None
_worker_shm = None
_worker_segment: Optional[str] = None

#: Segment metadata shipped with every task submission:
#: ``(shm_name, n_points, interval, start, name)``.
SeriesMeta = Tuple[str, int, int, int, str]


def _process_worker_attach(  # repro: disable=worker-reachability — caches the worker-local shared-memory mapping, swapped only when the parent publishes a new segment; invisible-to-parent by design
    shm_name: str, n_points: int, interval: int, start: int, name: str
) -> TimeSeries:
    from multiprocessing import shared_memory

    global _worker_series, _worker_shm, _worker_segment
    if _worker_segment != shm_name:
        if _worker_shm is not None:
            # The parent already unlinked the old segment when it
            # published the new one; closing the last mapping frees it.
            _worker_shm.close()
        # Forked workers share the parent's resource tracker, whose
        # registry is a set: attaching re-registers the same segment
        # name as a no-op, and the parent's unlink() unregisters it
        # exactly once — no extra bookkeeping needed here.
        _worker_shm = shared_memory.SharedMemory(name=shm_name)
        _worker_segment = shm_name
        values = np.ndarray(
            (n_points,), dtype=np.float64, buffer=_worker_shm.buf
        )
        values.flags.writeable = False
        _worker_series = TimeSeries(
            values=values, interval=interval, start=start, name=name
        )
    return _worker_series


def _process_worker_run(
    meta: SeriesMeta, task: ExtractionTask
) -> Tuple[ExtractionTask, np.ndarray]:
    series = _process_worker_attach(*meta)
    return task, _run_task_instrumented(task, series, "process")


class _PoolResources:
    """The process backend's long-lived resources, held in a separate
    object so a ``weakref.finalize`` on the backend can release them
    without keeping the backend itself alive."""

    def __init__(self) -> None:
        self.pool = None
        self.shm = None

    def drop_shm(self) -> None:
        if self.shm is not None:
            shm, self.shm = self.shm, None
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def drop_pool(self) -> None:
        if self.pool is not None:
            pool, self.pool = self.pool, None
            pool.shutdown(wait=False, cancel_futures=True)

    def release(self) -> None:
        self.drop_pool()
        self.drop_shm()


class ProcessBackend(ExecutionBackend):
    """Fan tasks out over a persistent process pool via shared memory.

    The pool is forked on first use and *reused across ``run_tasks``
    calls* — repeated extractions (the fleet loop, retraining) no
    longer pay a fork per call. Each call publishes the series into a
    fresh shared-memory segment (unlinking the previous one); workers
    attach by segment name and cache the mapping until the name
    changes, so the values cross the process boundary exactly once per
    series and each result crosses back as one float64 column block.

    Lifecycle: :meth:`close` shuts the pool down and unlinks the
    segment; a ``weakref.finalize`` does the same at garbage collection
    so an abandoned backend — or an abandoned ``run_tasks`` generator —
    never orphans the segment. If a worker dies mid-flight
    (``BrokenProcessPool``), the pool is re-forked once and the
    not-yet-delivered tasks are resubmitted.
    """

    name = "process"

    def __init__(self, workers: int = 1):
        super().__init__(workers)
        self._resources: Optional[_PoolResources] = None
        self._finalizer = None

    def _ensure_resources(self) -> _PoolResources:
        if self._finalizer is None or not self._finalizer.alive:
            self._resources = _PoolResources()
            self._finalizer = weakref.finalize(self, self._resources.release)
        return self._resources

    def _ensure_pool(self):
        resources = self._ensure_resources()
        if resources.pool is None:
            from concurrent.futures import ProcessPoolExecutor

            resources.pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=get_fork_context()
            )
        return resources.pool

    def _publish_series(self, series: TimeSeries) -> SeriesMeta:
        """Copy the series into a fresh shared segment (replacing the
        previous call's) and return the metadata workers attach with."""
        from multiprocessing import shared_memory

        resources = self._ensure_resources()
        values = np.ascontiguousarray(series.values, dtype=np.float64)
        resources.drop_shm()
        shm = shared_memory.SharedMemory(create=True, size=max(values.nbytes, 1))
        np.ndarray(values.shape, dtype=np.float64, buffer=shm.buf)[:] = values
        resources.shm = shm
        return (shm.name, len(series), series.interval, series.start, series.name)

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()

    def run_tasks(
        self, tasks: Sequence[ExtractionTask], series: TimeSeries
    ) -> Iterator[TaskResult]:
        if self.workers <= 1 or len(tasks) <= 1 or len(series) == 0:
            yield from SerialBackend(1).run_tasks(tasks, series)
            return
        from concurrent.futures.process import BrokenProcessPool

        meta = self._publish_series(series)
        pending: List[ExtractionTask] = list(tasks)
        refork_budget = 1
        while pending:
            pool = self._ensure_pool()
            futures = [
                pool.submit(_process_worker_run, meta, task)
                for task in pending
            ]
            try:
                for offset, future in enumerate(futures):
                    try:
                        task, columns = future.result()
                    except BrokenProcessPool:
                        # A worker died. Re-fork once and resubmit the
                        # tasks whose results were not delivered yet.
                        if refork_budget <= 0:
                            raise
                        refork_budget -= 1
                        self._ensure_resources().drop_pool()
                        pending = pending[offset:]
                        break
                    yield task, columns
                else:
                    pending = []
            finally:
                # Runs on normal exit, task exceptions, *and* early
                # generator disposal: never leave the persistent pool
                # grinding through work nobody will collect. The shared
                # segment itself stays owned by the backend — close()
                # or the GC finalizer unlinks it — so an abandoned
                # generator cannot orphan it either.
                for future in futures:
                    future.cancel()


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}

BackendSpec = Union[str, ExecutionBackend, None]


def resolve_backend(backend: BackendSpec, workers: int = 1) -> ExecutionBackend:
    """Turn a backend spec into a backend instance.

    ``None`` keeps the historical behaviour: serial for one worker, the
    thread pool when more are requested. A string selects by name; an
    :class:`ExecutionBackend` instance is returned unchanged (its own
    worker count wins).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    effective = resolve_workers(workers)
    if backend is None:
        backend = "thread" if effective > 1 else "serial"
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {backend!r}; "
            f"expected one of {sorted(_BACKENDS)}"
        ) from None
    return cls(workers=effective)
