"""Pluggable execution backends for feature extraction (§5.8).

The paper's per-point detection cost is dominated by running the
14-detector / 133-configuration bank, and §5.8 notes that "all the
detectors can run in parallel". This module turns that observation into
an explicit execution layer: the extraction work is first compiled into
:class:`ExtractionTask` units (one per configuration, plus one batched
task per Holt-Winters season group), then an :class:`ExecutionBackend`
decides *where* the tasks run:

* ``serial`` — one task after another in the calling thread;
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; real
  speed-ups only for detectors that release the GIL (SVD, the seasonal
  matrices), the pure-Python ones serialize;
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor` fed
  through :mod:`multiprocessing.shared_memory`: the input series is
  written to a shared segment once, every worker builds a *read-only*
  numpy view over it, and only the per-configuration float64 severity
  columns travel back.

Whatever the backend, results are assembled into the feature matrix by
each task's registry indices, so the matrix is bit-identical across all
three backends (the test suite enforces this for the full Table 3
bank). Code reachable from the worker entry points must not mutate
module-level state — mutations would be invisible to the parent and
make results depend on worker scheduling; the ``worker-reachability``
lint rule enforces this statically by walking the project call graph
from ``_process_worker_init`` / ``_process_worker_run``.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..detectors import DetectorConfig
from ..detectors.base import Detector
from ..detectors.holt_winters import HoltWinters, batch_severities
from ..obs import get_provider
from ..timeseries import TimeSeries

BACKEND_NAMES = ("serial", "thread", "process")


def resolve_workers(workers: int) -> int:
    """Validate and resolve a worker count.

    ``0`` means "auto": one worker per available CPU. Negative counts
    are rejected (they used to fall through to the serial path
    silently).
    """
    if workers < 0:
        raise ValueError(
            f"workers must be >= 0 (0 = one per CPU), got {workers}"
        )
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def map_ordered(fn, items: Sequence, workers: int = 1) -> list:
    """Apply ``fn`` to every item, returning results in *item* order.

    One worker (or one item) runs inline; more fan out over a thread
    pool. This is the in-process dispatch primitive the fleet layer
    (``repro.fleet``) uses to run independent shards concurrently:
    unlike the extraction backends there is no process option, because
    the units carry live stateful services (classifier, warm streams)
    that must not be copied into workers.
    """
    items = list(items)
    effective = resolve_workers(workers)
    if effective <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=min(effective, len(items))) as pool:
        return list(pool.map(fn, items))


# ----------------------------------------------------------------------
# Task model
# ----------------------------------------------------------------------
class ExtractionTask(abc.ABC):
    """One unit of extraction work filling one or more matrix columns."""

    #: Feature-matrix column indices this task fills, in output order.
    indices: Tuple[int, ...]
    #: Feature names of those columns (cache keys derive from these).
    names: Tuple[str, ...]
    #: Detector family, for the per-task latency histogram label.
    kind: str

    @abc.abstractmethod
    def run(self, series: TimeSeries) -> np.ndarray:
        """Severity columns of shape ``(len(series), len(indices))``."""


@dataclass(frozen=True)
class ConfigTask(ExtractionTask):
    """A single detector configuration -> a single severity column."""

    index: int
    detector: Detector

    @property
    def indices(self) -> Tuple[int, ...]:
        return (self.index,)

    @property
    def names(self) -> Tuple[str, ...]:
        return (self.detector.feature_name,)

    @property
    def kind(self) -> str:
        return self.detector.kind

    def run(self, series: TimeSeries) -> np.ndarray:
        return np.asarray(
            self.detector.severities(series), dtype=np.float64
        ).reshape(-1, 1)


@dataclass(frozen=True)
class HoltWintersBatchTask(ExtractionTask):
    """One vectorised pass over a season group of HW configurations."""

    indices: Tuple[int, ...]
    names: Tuple[str, ...]
    alphas: Tuple[float, ...]
    betas: Tuple[float, ...]
    gammas: Tuple[float, ...]
    season_points: int

    kind = "holt-winters"

    def run(self, series: TimeSeries) -> np.ndarray:
        return np.asarray(
            batch_severities(
                series.values,
                np.asarray(self.alphas),
                np.asarray(self.betas),
                np.asarray(self.gammas),
                self.season_points,
            ),
            dtype=np.float64,
        )


def build_tasks(configs: Sequence[DetectorConfig]) -> List[ExtractionTask]:
    """Compile a configuration bank into extraction tasks.

    Holt-Winters configurations are grouped per season length into one
    batched task each (the vectorised fast path); every other
    configuration becomes its own task.
    """
    hw_groups: dict = {}
    tasks: List[ExtractionTask] = []
    for config in configs:
        detector = config.detector
        if isinstance(detector, HoltWinters):
            hw_groups.setdefault(detector.season_points, []).append(config)
        else:
            tasks.append(ConfigTask(index=config.index, detector=detector))
    for season, group in hw_groups.items():
        tasks.append(
            HoltWintersBatchTask(
                indices=tuple(c.index for c in group),
                names=tuple(c.name for c in group),
                alphas=tuple(c.detector.alpha for c in group),
                betas=tuple(c.detector.beta for c in group),
                gammas=tuple(c.detector.gamma for c in group),
                season_points=season,
            )
        )
    return tasks


def _run_task_instrumented(
    task: ExtractionTask, series: TimeSeries, backend: str
) -> np.ndarray:
    """Run one task under the standard observability envelope.

    In process-backend workers the global provider is the no-op, so the
    span/timer cost nothing there; the parent's ``feature_matrix.extract``
    span still records the overall wall time.
    """
    obs = get_provider()
    with obs.span(
        "extract.config",
        backend=backend,
        detector=task.kind,
        n_columns=len(task.indices),
    ):
        with obs.timer(
            "repro_detector_severities_seconds",
            "Severity extraction per detector configuration batch",
            detector=task.kind,
        ):
            return task.run(series)


TaskResult = Tuple[ExtractionTask, np.ndarray]


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class ExecutionBackend(abc.ABC):
    """Strategy deciding where extraction tasks execute."""

    name: str = "backend"

    def __init__(self, workers: int = 1):
        self.workers = resolve_workers(workers)

    @abc.abstractmethod
    def run_tasks(
        self, tasks: Sequence[ExtractionTask], series: TimeSeries
    ) -> Iterator[TaskResult]:
        """Yield ``(task, columns)`` pairs in any completion order."""


class SerialBackend(ExecutionBackend):
    """Run every task in the calling thread, registry order."""

    name = "serial"

    def run_tasks(
        self, tasks: Sequence[ExtractionTask], series: TimeSeries
    ) -> Iterator[TaskResult]:
        for task in tasks:
            yield task, _run_task_instrumented(task, series, self.name)


class ThreadBackend(ExecutionBackend):
    """Fan tasks out over a thread pool (GIL-releasing detectors only
    actually overlap; this is the pre-existing behaviour)."""

    name = "thread"

    def run_tasks(
        self, tasks: Sequence[ExtractionTask], series: TimeSeries
    ) -> Iterator[TaskResult]:
        if self.workers <= 1 or len(tasks) <= 1:
            yield from SerialBackend(1).run_tasks(tasks, series)
            return
        from concurrent.futures import ThreadPoolExecutor

        def run(task: ExtractionTask) -> TaskResult:
            return task, _run_task_instrumented(task, series, self.name)

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            yield from pool.map(run, tasks)


# -- process backend ---------------------------------------------------
# Worker-global read-only series, installed once per worker by the pool
# initializer so each task submission only pickles the task itself.
_worker_series: Optional[TimeSeries] = None
_worker_shm = None


def _process_worker_init(  # repro: disable=worker-reachability — the pool initializer installs the worker-local shared-memory series exactly once per process by design
    shm_name: str, n_points: int, interval: int, start: int, name: str
) -> None:
    from multiprocessing import shared_memory

    global _worker_series, _worker_shm
    # Forked workers share the parent's resource tracker, whose registry
    # is a set: attaching re-registers the same segment name as a no-op,
    # and the parent's unlink() unregisters it exactly once — no extra
    # bookkeeping needed here.
    _worker_shm = shared_memory.SharedMemory(name=shm_name)
    values = np.ndarray((n_points,), dtype=np.float64, buffer=_worker_shm.buf)
    values.flags.writeable = False
    _worker_series = TimeSeries(
        values=values, interval=interval, start=start, name=name
    )


def _process_worker_run(task: ExtractionTask) -> Tuple[ExtractionTask, np.ndarray]:
    assert _worker_series is not None, "worker initializer did not run"
    return task, _run_task_instrumented(task, _worker_series, "process")


class ProcessBackend(ExecutionBackend):
    """Fan tasks out over a process pool via shared memory.

    The series values cross the process boundary exactly once (into a
    :class:`multiprocessing.shared_memory.SharedMemory` segment the
    workers map read-only); each result crosses back as one float64
    column block. Pure-Python detectors finally run on real cores
    instead of serializing on the GIL.
    """

    name = "process"

    def run_tasks(
        self, tasks: Sequence[ExtractionTask], series: TimeSeries
    ) -> Iterator[TaskResult]:
        if self.workers <= 1 or len(tasks) <= 1 or len(series) == 0:
            yield from SerialBackend(1).run_tasks(tasks, series)
            return
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import shared_memory

        values = np.ascontiguousarray(series.values, dtype=np.float64)
        shm = shared_memory.SharedMemory(create=True, size=values.nbytes)
        try:
            np.ndarray(values.shape, dtype=np.float64, buffer=shm.buf)[:] = values
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(tasks)),
                mp_context=context,
                initializer=_process_worker_init,
                initargs=(
                    shm.name,
                    len(series),
                    series.interval,
                    series.start,
                    series.name,
                ),
            ) as pool:
                futures = [
                    pool.submit(_process_worker_run, task) for task in tasks
                ]
                for future in futures:
                    yield future.result()
        finally:
            shm.close()
            shm.unlink()


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}

BackendSpec = Union[str, ExecutionBackend, None]


def resolve_backend(backend: BackendSpec, workers: int = 1) -> ExecutionBackend:
    """Turn a backend spec into a backend instance.

    ``None`` keeps the historical behaviour: serial for one worker, the
    thread pool when more are requested. A string selects by name; an
    :class:`ExecutionBackend` instance is returned unchanged (its own
    worker count wins).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    effective = resolve_workers(workers)
    if backend is None:
        backend = "thread" if effective > 1 else "serial"
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {backend!r}; "
            f"expected one of {sorted(_BACKENDS)}"
        ) from None
    return cls(workers=effective)
