"""Online cThld prediction (§4.5.2).

The best cThld for a week can only be computed after that week's ground
truth exists, so online detection must *predict* the cThld for the
upcoming week. Two predictors are compared in Fig 13:

* **EWMA** (Opprentice's choice): ``cThld_p[i] = alpha * cThld_b[i-1] +
  (1 - alpha) * cThld_p[i-1]`` with ``alpha = 0.8`` "to quickly catch up
  with the cThld variation"; the first week is initialised by 5-fold
  cross-validation.
* **5-fold cross-validation** every week (the baseline), which Fig 7
  explains underperforms because best cThlds drift week to week and
  resemble their *neighbours* more than the whole history.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

import numpy as np

from ..evaluation import (
    AccuracyPreference,
    PCScoreSelector,
    cross_validate_cthld,
)
from ..obs import get_provider

#: §4.5.2: "We use alpha = 0.8 in this paper".
EWMA_CTHLD_ALPHA = 0.8


class CThldPredictor(abc.ABC):
    """Predicts the cThld to use for the next test window."""

    name: str = "predictor"

    @abc.abstractmethod
    def predict(
        self,
        classifier_factory: Callable[[], object],
        train_features: np.ndarray,
        train_labels: np.ndarray,
    ) -> float:
        """The cThld for the upcoming window, given the training set the
        classifier was (re)trained on."""

    def observe_best(self, best_cthld: float) -> None:
        """Feed back the offline best cThld of the window that just
        finished (no-op for stateless predictors)."""

    def snapshot(self) -> dict:
        """JSON-serializable predictor state for service checkpoints
        (stateless predictors have none)."""
        return {}

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` (no-op for stateless predictors)."""


class CrossValidationPredictor(CThldPredictor):
    """Re-run 5-fold cross-validation on all history every week."""

    name = "5-fold"

    def __init__(self, preference: AccuracyPreference, k: int = 5):
        self.preference = preference
        self.k = k

    def predict(
        self,
        classifier_factory: Callable[[], object],
        train_features: np.ndarray,
        train_labels: np.ndarray,
    ) -> float:
        with get_provider().span(
            "cthld.predict", predictor=self.name, initial=False
        ) as span:
            cthld = cross_validate_cthld(
                classifier_factory,
                train_features,
                train_labels,
                self.preference,
                k=self.k,
            )
            span.set("cthld", cthld)
        return cthld


class EWMAPredictor(CThldPredictor):
    """Opprentice's EWMA-of-best-cThlds predictor.

    State machine: before the first prediction it falls back to 5-fold
    cross-validation ("For the first week, we use 5-fold
    cross-validation to initialize cThld_p[1]"); afterwards each
    :meth:`observe_best` folds the finished week's best cThld into the
    prediction.
    """

    name = "EWMA"

    def __init__(
        self,
        preference: AccuracyPreference,
        alpha: float = EWMA_CTHLD_ALPHA,
        k: int = 5,
    ):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.preference = preference
        self.alpha = alpha
        self.k = k
        self._prediction: Optional[float] = None

    @property
    def current(self) -> Optional[float]:
        """The current prediction (None before initialisation)."""
        return self._prediction

    def predict(
        self,
        classifier_factory: Callable[[], object],
        train_features: np.ndarray,
        train_labels: np.ndarray,
    ) -> float:
        if self._prediction is None:
            with get_provider().span(
                "cthld.predict", predictor=self.name, initial=True
            ) as span:
                self._prediction = cross_validate_cthld(
                    classifier_factory,
                    train_features,
                    train_labels,
                    self.preference,
                    k=self.k,
                )
                span.set("cthld", self._prediction)
        return self._prediction

    def observe_best(self, best_cthld: float) -> None:
        if not 0.0 <= best_cthld <= 1.0:
            raise ValueError(f"best_cthld must be in [0, 1], got {best_cthld}")
        if self._prediction is None:
            # Best observed before any prediction: adopt it outright.
            self._prediction = best_cthld
        else:
            self._prediction = (
                self.alpha * best_cthld + (1.0 - self.alpha) * self._prediction
            )
        obs = get_provider()
        obs.counter(
            "repro_cthld_updates_total",
            "Best-cThld observations folded into the predictor",
            predictor=self.name,
        ).inc()
        obs.gauge(
            "repro_cthld_prediction", "Predicted cThld for the next window"
        ).set(self._prediction)
        obs.emit(
            "cthld_observed",
            predictor=self.name,
            best=best_cthld,
            prediction=self._prediction,
        )

    def snapshot(self) -> dict:
        return {"prediction": self._prediction}

    def restore(self, state: dict) -> None:
        prediction = state.get("prediction")
        self._prediction = None if prediction is None else float(prediction)


def best_cthld(
    scores: np.ndarray,
    labels: np.ndarray,
    preference: AccuracyPreference,
) -> float:
    """The offline ("oracle") best cThld of a finished window: the
    PC-Score maximiser over its PR curve (§4.5.2). Returns 0.5 when the
    window has no anomalies (every threshold is equally hopeless)."""
    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=np.float64)
    finite = np.isfinite(scores)
    if labels[finite].sum() == 0:
        return 0.5
    # Select over the finite points only — NaN scores (warm-up/missing
    # points) carry no threshold information and must not reach the
    # selector.
    choice = PCScoreSelector(preference).select(scores[finite], labels[finite])
    return choice.threshold
