"""Detection across KPIs of the same type (§6).

"Some KPIs are of the same type and operators often care about similar
types of anomalies for them... the classifier trained upon those
labeled data can be used to detect across the same type of KPIs. Note
that, in order to reuse the classifier for the data of different
scales, the anomaly features extracted by basic detectors should be
normalized."

:class:`SeverityNormalizer` makes a feature matrix scale-free by
dividing every configuration's severities by a robust per-KPI scale
statistic (a high training quantile), so a classifier trained on one
KPI's normalised features applies to a scaled sibling.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..detectors import DetectorConfig
from ..evaluation import MODERATE_PREFERENCE, AccuracyPreference
from ..ml import Classifier, Imputer
from ..timeseries import TimeSeries
from .feature_matrix import FeatureExtractor
from .opprentice import DetectionResult, default_classifier_factory
from .prediction import best_cthld


class SeverityNormalizer:
    """Per-KPI severity scaling for cross-KPI classifier reuse.

    Each configuration's severities are divided by that KPI's own
    ``quantile`` severity (computed over the rows the normaliser is
    fitted on). Unlike the Imputer/StandardScaler pair, the statistics
    are re-fitted *per target KPI* — that is the whole point: the
    classifier sees scale-free features from every KPI.
    """

    def __init__(self, quantile: float = 0.95):
        if not 0.5 <= quantile < 1.0:
            raise ValueError(f"quantile must be in [0.5, 1), got {quantile}")
        self.quantile = quantile

    def normalize(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got {features.shape}")
        cleaned = np.where(np.isfinite(features), features, np.nan)
        with np.errstate(all="ignore"):
            scales = np.nanquantile(cleaned, self.quantile, axis=0)
        scales = np.where(
            np.isfinite(scales) & (scales > 0), scales, 1.0
        )
        return features / scales


class TransferDetector:
    """Train once on a labelled KPI, detect on same-type siblings.

    The workflow of §6: "operators only have to label one or just a few
    KPIs. Then the classifier trained upon those labeled data can be
    used to detect across the same type of KPIs."
    """

    def __init__(
        self,
        configs: Optional[Sequence[DetectorConfig]] = None,
        preference: AccuracyPreference = MODERATE_PREFERENCE,
        classifier_factory: Callable[[], Classifier] = default_classifier_factory,
        normalizer: Optional[SeverityNormalizer] = None,
    ):
        self.extractor = FeatureExtractor(configs)
        self.preference = preference
        self.classifier_factory = classifier_factory
        self.normalizer = normalizer or SeverityNormalizer()
        self.classifier_: Optional[Classifier] = None
        self.imputer_: Optional[Imputer] = None
        self.cthld_: float = 0.5

    def fit(self, series: TimeSeries) -> "TransferDetector":
        """Train on one labelled source KPI (normalised features)."""
        if not series.is_labeled:
            raise ValueError("fit requires a labelled series")
        matrix = self.extractor.extract(series)
        normalized = self.normalizer.normalize(matrix.values)
        self.imputer_ = Imputer().fit(normalized)
        imputed = self.imputer_.transform(normalized)
        self.classifier_ = self.classifier_factory()
        self.classifier_.fit(imputed, series.labels)
        scores = self.classifier_.predict_proba(imputed)
        self.cthld_ = best_cthld(scores, series.labels, self.preference)
        return self

    def detect(self, series: TimeSeries) -> DetectionResult:
        """Detect on a (possibly unlabelled) same-type KPI at any scale."""
        if self.classifier_ is None or self.imputer_ is None:
            raise RuntimeError("TransferDetector is not fitted")
        matrix = self.extractor.extract(series)
        normalized = self.normalizer.normalize(matrix.values)
        scores = self.classifier_.predict_proba(
            self.imputer_.transform(normalized)
        )
        return DetectionResult(
            series=series,
            scores=scores,
            cthld=self.cthld_,
            predictions=(scores >= self.cthld_).astype(np.int8),
        )
