"""Preference backtesting: what accuracy would each preference get?

§2.2: "The trade-off between [precision and recall] is often adjusted
according to real demands. For example, busy operators are more
sensitive to precision ... operators would care more about recall if a
KPI, e.g., revenue, is critical." Before committing to a preference,
operators can backtest several against labelled history:
:func:`backtest_preferences` runs the full online loop once per
preference and tabulates per-preference satisfaction, mean accuracy and
alert volume — the decision table for choosing R and P.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..evaluation import (
    MODERATE_PREFERENCE,
    SENSITIVE_TO_PRECISION,
    SENSITIVE_TO_RECALL,
    AccuracyPreference,
)
from .feature_matrix import FeatureExtractor
from .opprentice import default_classifier_factory, run_online

#: The three Fig 12 preferences, the natural starting grid.
DEFAULT_PREFERENCE_GRID = (
    MODERATE_PREFERENCE,
    SENSITIVE_TO_PRECISION,
    SENSITIVE_TO_RECALL,
)


@dataclass(frozen=True)
class PreferenceOutcome:
    """Backtest results for one candidate preference."""

    preference: AccuracyPreference
    satisfaction_rate: float
    mean_recall: float
    mean_precision: float
    detected_points: int
    detected_fraction: float

    def row(self) -> str:
        return (
            f"recall>={self.preference.recall:.2f} & "
            f"precision>={self.preference.precision:.2f}: "
            f"{self.satisfaction_rate:6.1%} windows satisfied | "
            f"mean r={self.mean_recall:.2f} p={self.mean_precision:.2f} | "
            f"{self.detected_points} detections "
            f"({self.detected_fraction:.1%} of points)"
        )


def backtest_preferences(
    series,
    *,
    preferences: Sequence[AccuracyPreference] = DEFAULT_PREFERENCE_GRID,
    configs=None,
    classifier_factory: Optional[Callable] = None,
    max_train_points: Optional[int] = None,
    window_weeks: int = 4,
) -> List[PreferenceOutcome]:
    """Run the online loop under each candidate preference.

    Features are extracted once and shared; the classifier retraining
    runs per preference because the cThld feedback loop differs.
    Returns outcomes in the order the preferences were given.
    """
    if not series.is_labeled:
        raise ValueError("backtesting requires a labelled series")
    if not preferences:
        raise ValueError("need at least one candidate preference")
    classifier_factory = classifier_factory or default_classifier_factory
    extractor = FeatureExtractor(configs)
    matrix = extractor.extract(series)

    outcomes = []
    for preference in preferences:
        run = run_online(
            series,
            configs=extractor.configs(series),
            preference=preference,
            classifier_factory=classifier_factory,
            features=matrix,
            max_train_points=max_train_points,
        )
        effective_window = min(window_weeks, len(run.outcomes))
        detected = run.n_detected()
        test_points = run.test_end - run.test_begin
        outcomes.append(
            PreferenceOutcome(
                preference=preference,
                satisfaction_rate=run.satisfaction_rate(
                    window_weeks=effective_window
                ),
                mean_recall=float(
                    np.mean([o.recall for o in run.outcomes])
                ),
                mean_precision=float(
                    np.mean([o.precision for o in run.outcomes])
                ),
                detected_points=detected,
                detected_fraction=detected / test_points,
            )
        )
    return outcomes


def render_backtest(outcomes: Sequence[PreferenceOutcome]) -> str:
    """The decision table as text."""
    if not outcomes:
        raise ValueError("no outcomes to render")
    lines = ["preference backtest (online loop per candidate):"]
    lines += [f"  {outcome.row()}" for outcome in outcomes]
    return "\n".join(lines)
