"""Assembling the severity feature matrix (§4.3).

"Multiple detectors are applied to the KPI data in parallel to extract
features" — here, every registered configuration contributes one column
of severities. Feature extraction, training and classification all work
on individual data points (§4.3.1), so the matrix has one row per grid
point of the KPI.

Holt-Winters configurations are computed through the vectorised batch
runner (64 configurations in one pass); everything else is already
vectorised per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..detectors import DetectorConfig, configs_for
from ..detectors.holt_winters import HoltWinters, batch_severities
from ..obs import get_provider
from ..timeseries import TimeSeries


@dataclass
class FeatureMatrix:
    """An (n_points, n_configs) severity matrix with column metadata.

    ``values[t, j]`` is configuration ``j``'s severity for point ``t``;
    NaN inside warm-up windows and at missing points.
    """

    values: np.ndarray
    names: List[str]

    def __post_init__(self) -> None:
        if self.values.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got {self.values.shape}")
        if self.values.shape[1] != len(self.names):
            raise ValueError(
                f"{self.values.shape[1]} columns vs {len(self.names)} names"
            )

    @property
    def n_points(self) -> int:
        return self.values.shape[0]

    @property
    def n_features(self) -> int:
        return self.values.shape[1]

    def rows(self, begin: int, end: int) -> np.ndarray:
        """The feature rows for points [begin, end)."""
        if begin < 0 or end > self.n_points or begin > end:
            raise ValueError(
                f"rows [{begin}, {end}) outside matrix of {self.n_points}"
            )
        return self.values[begin:end]

    def column(self, name: str) -> np.ndarray:
        """One configuration's severities by feature name."""
        try:
            index = self.names.index(name)
        except ValueError:
            raise KeyError(f"no feature named {name!r}") from None
        return self.values[:, index]


class FeatureExtractor:
    """Runs a detector bank over series to produce feature matrices.

    Parameters
    ----------
    configs:
        Detector configurations; defaults to the Table 3 bank sized for
        the first series passed to :meth:`extract`.
    workers:
        Thread count for parallel extraction (§5.8: "all the detectors
        can run in parallel"). The numpy-heavy detectors (SVD, the
        seasonal matrices) release the GIL, so threads give a real
        speed-up; 1 (default) runs sequentially.
    """

    def __init__(
        self,
        configs: Optional[Sequence[DetectorConfig]] = None,
        *,
        workers: int = 1,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._configs: Optional[List[DetectorConfig]] = (
            list(configs) if configs is not None else None
        )
        self.workers = workers

    def configs(self, series: Optional[TimeSeries] = None) -> List[DetectorConfig]:
        if self._configs is None:
            if series is None:
                raise ValueError(
                    "no configs set and no series to derive them from"
                )
            self._configs = configs_for(series)
        return self._configs

    @property
    def config_bank(self) -> Optional[Tuple[DetectorConfig, ...]]:
        """The resolved detector bank as an immutable tuple, or ``None``
        if the default bank has not been derived from a series yet. The
        public read-only counterpart of :meth:`configs` for callers that
        must not trigger (or cannot provide a series for) derivation."""
        if self._configs is None:
            return None
        return tuple(self._configs)

    @property
    def names(self) -> List[str]:
        if self._configs is None:
            raise RuntimeError("extractor has no configs yet")
        return [c.name for c in self._configs]

    def extract(self, series: TimeSeries) -> FeatureMatrix:
        """The full severity matrix for ``series``."""
        configs = self.configs(series)
        n = len(series)
        obs = get_provider()
        with obs.span(
            "feature_matrix.extract",
            kpi=series.name or "",
            n_points=n,
            n_configs=len(configs),
        ):
            matrix = np.full((n, len(configs)), np.nan)

            # Group the Holt-Winters configurations per season length and
            # run each group through the vectorised batch loop.
            hw_groups: dict = {}
            for config in configs:
                detector = config.detector
                if isinstance(detector, HoltWinters):
                    hw_groups.setdefault(
                        detector.season_points, []
                    ).append(config)

            for season, group in hw_groups.items():
                with obs.timer(
                    "repro_detector_severities_seconds",
                    "Severity extraction per detector configuration batch",
                    detector=group[0].detector.kind,
                ):
                    severities = batch_severities(
                        series.values,
                        np.array([c.detector.alpha for c in group]),
                        np.array([c.detector.beta for c in group]),
                        np.array([c.detector.gamma for c in group]),
                        season,
                    )
                for j, config in enumerate(group):
                    matrix[:, config.index] = severities[:, j]

            remaining = [
                c for c in configs if not isinstance(c.detector, HoltWinters)
            ]

            def run(config: DetectorConfig):
                with obs.timer(
                    "repro_detector_severities_seconds",
                    "Severity extraction per detector configuration batch",
                    detector=config.detector.kind,
                ):
                    return config.index, config.detector.severities(series)

            if self.workers > 1 and len(remaining) > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    for index, severities in pool.map(run, remaining):
                        matrix[:, index] = severities
            else:
                for config in remaining:
                    index, severities = run(config)
                    matrix[:, index] = severities
        obs.counter(
            "repro_feature_points_total",
            "Points x extraction passes through the detector bank",
        ).inc(n)
        return FeatureMatrix(values=matrix, names=[c.name for c in configs])


def extract_features(
    series: TimeSeries, configs: Optional[Sequence[DetectorConfig]] = None
) -> FeatureMatrix:
    """One-shot convenience wrapper around :class:`FeatureExtractor`."""
    return FeatureExtractor(configs).extract(series)
