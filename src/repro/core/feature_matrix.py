"""Assembling the severity feature matrix (§4.3).

"Multiple detectors are applied to the KPI data in parallel to extract
features" — here, every registered configuration contributes one column
of severities. Feature extraction, training and classification all work
on individual data points (§4.3.1), so the matrix has one row per grid
point of the KPI.

Holt-Winters configurations are computed through the vectorised batch
runner (64 configurations in one pass); everything else is already
vectorised per configuration. *Where* the work runs is delegated to an
execution backend (``serial`` / ``thread`` / ``process``, see
:mod:`repro.core.execution`), and already-computed columns are served
from an optional content-addressed :class:`~repro.core.severity_cache.
SeverityCache` — the matrix is bit-identical whichever combination is
active (see docs/performance.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..detectors import DetectorConfig, configs_for
from ..obs import get_provider
from ..timeseries import TimeSeries
from .execution import (
    BackendSpec,
    ExecutionBackend,
    build_tasks,
    resolve_backend,
    resolve_workers,
)
from .severity_cache import SeverityCache, column_key, series_digest


@dataclass
class FeatureMatrix:
    """An (n_points, n_configs) severity matrix with column metadata.

    ``values[t, j]`` is configuration ``j``'s severity for point ``t``;
    NaN inside warm-up windows and at missing points.
    """

    values: np.ndarray
    names: List[str]

    def __post_init__(self) -> None:
        if self.values.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got {self.values.shape}")
        if self.values.shape[1] != len(self.names):
            raise ValueError(
                f"{self.values.shape[1]} columns vs {len(self.names)} names"
            )

    @property
    def n_points(self) -> int:
        return self.values.shape[0]

    @property
    def n_features(self) -> int:
        return self.values.shape[1]

    def rows(self, begin: int, end: int) -> np.ndarray:
        """The feature rows for points [begin, end)."""
        if begin < 0 or end > self.n_points or begin > end:
            raise ValueError(
                f"rows [{begin}, {end}) outside matrix of {self.n_points}"
            )
        return self.values[begin:end]

    def column(self, name: str) -> np.ndarray:
        """One configuration's severities by feature name."""
        try:
            index = self.names.index(name)
        except ValueError:
            raise KeyError(f"no feature named {name!r}") from None
        return self.values[:, index]


class FeatureExtractor:
    """Runs a detector bank over series to produce feature matrices.

    Parameters
    ----------
    configs:
        Detector configurations; defaults to the Table 3 bank sized for
        the first series passed to :meth:`extract`.
    workers:
        Parallelism for extraction (§5.8: "all the detectors can run in
        parallel"). ``0`` means one worker per available CPU; ``1``
        (default) runs sequentially; negative counts raise.
    backend:
        Where the work runs: ``"serial"``, ``"thread"``, ``"process"``,
        or an :class:`~repro.core.execution.ExecutionBackend` instance.
        ``None`` keeps the historical mapping — serial for one worker,
        the thread pool for more. The ``process`` backend fans
        configurations out over real cores with the series shared via
        :mod:`multiprocessing.shared_memory`; all backends produce
        bit-identical matrices.
    cache:
        Severity-column cache: a
        :class:`~repro.core.severity_cache.SeverityCache`, ``True``
        (fresh in-memory cache, disk-backed when ``$REPRO_CACHE_DIR``
        is set), ``False`` (caching off even if the environment enables
        it), or ``None`` (default: on only when ``$REPRO_CACHE_DIR`` is
        set).
    """

    def __init__(
        self,
        configs: Optional[Sequence[DetectorConfig]] = None,
        *,
        workers: int = 1,
        backend: BackendSpec = None,
        cache: Union[SeverityCache, bool, None] = None,
    ):
        self.workers = resolve_workers(workers)
        self._configs: Optional[List[DetectorConfig]] = (
            list(configs) if configs is not None else None
        )
        self.backend: ExecutionBackend = resolve_backend(backend, self.workers)
        if cache is True:
            self.cache: Optional[SeverityCache] = SeverityCache.from_env() or SeverityCache()
        elif cache is False:
            self.cache = None
        elif cache is None:
            self.cache = SeverityCache.from_env()
        else:
            self.cache = cache

    def configs(self, series: Optional[TimeSeries] = None) -> List[DetectorConfig]:
        if self._configs is None:
            if series is None:
                raise ValueError(
                    "no configs set and no series to derive them from"
                )
            self._configs = configs_for(series)
        return self._configs

    @property
    def config_bank(self) -> Optional[Tuple[DetectorConfig, ...]]:
        """The resolved detector bank as an immutable tuple, or ``None``
        if the default bank has not been derived from a series yet. The
        public read-only counterpart of :meth:`configs` for callers that
        must not trigger (or cannot provide a series for) derivation."""
        if self._configs is None:
            return None
        return tuple(self._configs)

    @property
    def names(self) -> List[str]:
        if self._configs is None:
            raise RuntimeError("extractor has no configs yet")
        return [c.name for c in self._configs]

    def extract(self, series: TimeSeries) -> FeatureMatrix:
        """The full severity matrix for ``series``.

        Cached columns are filled first (a column hit costs one dict or
        file lookup, no detector runs); only the remaining tasks go to
        the execution backend. A fully warm cache therefore performs
        zero detector evaluations.
        """
        configs = self.configs(series)
        n = len(series)
        obs = get_provider()
        with obs.span(
            "feature_matrix.extract",
            kpi=series.name or "",
            n_points=n,
            n_configs=len(configs),
            backend=self.backend.name,
        ):
            obs.gauge(
                "repro_extract_workers",
                "Workers used by the active extraction backend",
            ).set(self.backend.workers)
            matrix = np.full((n, len(configs)), np.nan)
            tasks = build_tasks(configs)

            if self.cache is not None:
                digest = series_digest(series)
                keys = {
                    task: [column_key(name, digest) for name in task.names]
                    for task in tasks
                }
                remaining = []
                hits = misses = 0
                for task in tasks:
                    columns = [self.cache.get(key) for key in keys[task]]
                    if all(column is not None for column in columns):
                        # Every column of the task is warm: no detector
                        # evaluation needed.
                        hits += len(columns)
                        for index, column in zip(task.indices, columns):
                            matrix[:, index] = column
                    else:
                        misses += len(columns)
                        remaining.append(task)
                obs.counter(
                    "repro_extract_cache_hits_total",
                    "Severity columns served from the cache",
                ).inc(hits)
                obs.counter(
                    "repro_extract_cache_misses_total",
                    "Severity columns that had to be recomputed",
                ).inc(misses)
            else:
                keys = {}
                remaining = list(tasks)

            if remaining:
                for task, columns in self.backend.run_tasks(remaining, series):
                    for j, index in enumerate(task.indices):
                        matrix[:, index] = columns[:, j]
                    if self.cache is not None:
                        for j, key in enumerate(keys[task]):
                            self.cache.put(key, columns[:, j])
        obs.counter(
            "repro_feature_points_total",
            "Points x extraction passes through the detector bank",
        ).inc(n)
        return FeatureMatrix(values=matrix, names=[c.name for c in configs])


def extract_features(
    series: TimeSeries,
    configs: Optional[Sequence[DetectorConfig]] = None,
    *,
    workers: int = 1,
    backend: BackendSpec = None,
    cache: Union[SeverityCache, bool, None] = None,
) -> FeatureMatrix:
    """One-shot convenience wrapper around :class:`FeatureExtractor`."""
    return FeatureExtractor(
        configs, workers=workers, backend=backend, cache=cache
    ).extract(series)
