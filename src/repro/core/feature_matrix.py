"""Assembling the severity feature matrix (§4.3).

"Multiple detectors are applied to the KPI data in parallel to extract
features" — here, every registered configuration contributes one column
of severities. Feature extraction, training and classification all work
on individual data points (§4.3.1), so the matrix has one row per grid
point of the KPI.

Extraction is compiled at the detector-*family* level: sibling
configurations (the window bank, the Holt-Winters sweep, the seasonal
and historical grids, the wavelet bands) share one fused numpy pass
each (see :func:`repro.detectors.build_family_evaluators`). *Where* the
work runs is delegated to an execution backend (``serial`` / ``thread``
/ ``process``, see :mod:`repro.core.execution`), and already-computed
columns are served from an optional content-addressed
:class:`~repro.core.severity_cache.SeverityCache` — the matrix is
bit-identical whichever combination is active (see
docs/performance.md). For the online loop, :meth:`FeatureExtractor.
extract_point` feeds one point through warm per-family streams instead
of re-running any batch pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..detectors import DetectorConfig, StreamBank, configs_for
from ..obs import get_provider
from ..timeseries import TimeSeries
from .execution import (
    BackendSpec,
    ExecutionBackend,
    build_tasks,
    resolve_backend,
    resolve_workers,
)
from .severity_cache import SeverityCache, column_key, series_digest


@dataclass
class FeatureMatrix:
    """An (n_points, n_configs) severity matrix with column metadata.

    ``values[t, j]`` is configuration ``j``'s severity for point ``t``;
    NaN inside warm-up windows and at missing points.
    """

    values: np.ndarray
    names: List[str]

    def __post_init__(self) -> None:
        if self.values.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got {self.values.shape}")
        if self.values.shape[1] != len(self.names):
            raise ValueError(
                f"{self.values.shape[1]} columns vs {len(self.names)} names"
            )

    @property
    def n_points(self) -> int:
        return self.values.shape[0]

    @property
    def n_features(self) -> int:
        return self.values.shape[1]

    def rows(self, begin: int, end: int) -> np.ndarray:
        """The feature rows for points [begin, end)."""
        if begin < 0 or end > self.n_points or begin > end:
            raise ValueError(
                f"rows [{begin}, {end}) outside matrix of {self.n_points}"
            )
        return self.values[begin:end]

    def column(self, name: str) -> np.ndarray:
        """One configuration's severities by feature name."""
        try:
            index = self.names.index(name)
        except ValueError:
            raise KeyError(f"no feature named {name!r}") from None
        return self.values[:, index]


class FeatureExtractor:
    """Runs a detector bank over series to produce feature matrices.

    Parameters
    ----------
    configs:
        Detector configurations; defaults to the Table 3 bank sized for
        the first series passed to :meth:`extract`.
    workers:
        Parallelism for extraction (§5.8: "all the detectors can run in
        parallel"). ``0`` means one worker per available CPU; ``1``
        (default) runs sequentially; negative counts raise.
    backend:
        Where the work runs: ``"serial"``, ``"thread"``, ``"process"``,
        or an :class:`~repro.core.execution.ExecutionBackend` instance.
        ``None`` keeps the historical mapping — serial for one worker,
        the thread pool for more. The ``process`` backend fans
        configurations out over real cores with the series shared via
        :mod:`multiprocessing.shared_memory`; all backends produce
        bit-identical matrices.
    cache:
        Severity-column cache: a
        :class:`~repro.core.severity_cache.SeverityCache`, ``True``
        (fresh in-memory cache, disk-backed when ``$REPRO_CACHE_DIR``
        is set), ``False`` (caching off even if the environment enables
        it), or ``None`` (default: on only when ``$REPRO_CACHE_DIR`` is
        set).
    """

    def __init__(
        self,
        configs: Optional[Sequence[DetectorConfig]] = None,
        *,
        workers: int = 1,
        backend: BackendSpec = None,
        cache: Union[SeverityCache, bool, None] = None,
    ):
        self.workers = resolve_workers(workers)
        self._configs: Optional[List[DetectorConfig]] = (
            list(configs) if configs is not None else None
        )
        self._stream_bank: Optional[StreamBank] = None
        self.backend: ExecutionBackend = resolve_backend(backend, self.workers)
        if cache is True:
            self.cache: Optional[SeverityCache] = SeverityCache.from_env() or SeverityCache()
        elif cache is False:
            self.cache = None
        elif cache is None:
            self.cache = SeverityCache.from_env()
        else:
            self.cache = cache

    def configs(self, series: Optional[TimeSeries] = None) -> List[DetectorConfig]:
        if self._configs is None:
            if series is None:
                raise ValueError(
                    "no configs set and no series to derive them from"
                )
            self._configs = configs_for(series)
        return self._configs

    @property
    def config_bank(self) -> Optional[Tuple[DetectorConfig, ...]]:
        """The resolved detector bank as an immutable tuple, or ``None``
        if the default bank has not been derived from a series yet. The
        public read-only counterpart of :meth:`configs` for callers that
        must not trigger (or cannot provide a series for) derivation."""
        if self._configs is None:
            return None
        return tuple(self._configs)

    @property
    def names(self) -> List[str]:
        if self._configs is None:
            raise RuntimeError("extractor has no configs yet")
        return [c.name for c in self._configs]

    def extract(self, series: TimeSeries) -> FeatureMatrix:
        """The full severity matrix for ``series``.

        Cached columns are filled first (a column hit costs one dict or
        file lookup, no detector runs); only the *missing* configs are
        compiled into fused family tasks for the execution backend, so
        a partial hit reruns exactly the cold columns. A fully warm
        cache therefore performs zero detector evaluations.
        """
        configs = self.configs(series)
        n = len(series)
        obs = get_provider()
        with obs.span(
            "feature_matrix.extract",
            kpi=series.name or "",
            n_points=n,
            n_configs=len(configs),
            backend=self.backend.name,
        ):
            obs.gauge(
                "repro_extract_workers",
                "Workers used by the active extraction backend",
            ).set(self.backend.workers)
            matrix = np.full((n, len(configs)), np.nan)

            key_for: dict = {}
            if self.cache is not None:
                digest = series_digest(series)
                key_for = {
                    config.index: column_key(config.name, digest)
                    for config in configs
                }
                missing: List[DetectorConfig] = []
                hits = misses = 0
                for config in configs:
                    column = self.cache.get(key_for[config.index])
                    if column is not None:
                        hits += 1
                        matrix[:, config.index] = column
                    else:
                        misses += 1
                        missing.append(config)
                obs.counter(
                    "repro_extract_cache_hits_total",
                    "Severity columns served from the cache",
                ).inc(hits)
                obs.counter(
                    "repro_extract_cache_misses_total",
                    "Severity columns that had to be recomputed",
                ).inc(misses)
            else:
                missing = list(configs)

            if missing:
                tasks = build_tasks(missing)
                for task, columns in self.backend.run_tasks(tasks, series):
                    for j, index in enumerate(task.indices):
                        matrix[:, index] = columns[:, j]
                        if self.cache is not None:
                            self.cache.put(key_for[index], columns[:, j])
        obs.counter(
            "repro_feature_points_total",
            "Points x extraction passes through the detector bank",
        ).inc(n)
        return FeatureMatrix(values=matrix, names=[c.name for c in configs])

    # ------------------------------------------------------------------
    # Incremental path and lifecycle
    # ------------------------------------------------------------------
    def stream_bank(self) -> StreamBank:
        """The extractor's warm per-point bank (built lazily; the
        configs must be resolved first). One fused stream per family —
        see :class:`repro.detectors.StreamBank`."""
        if self._stream_bank is None:
            if self._configs is None:
                raise RuntimeError("extractor has no configs yet")
            self._stream_bank = StreamBank(self._configs)
        return self._stream_bank

    def extract_point(self, value: float) -> np.ndarray:
        """Severity row for one new point via warm family streams.

        This is the §4.3.2 online path: no batch recompute, one fused
        state update per family, microseconds per point. The row is
        bit-identical (or documented-ULP-close, see
        docs/performance.md) to the corresponding row of
        :meth:`extract` over the same prefix.
        """
        return self.stream_bank().extract_point(value)

    def close(self) -> None:
        """Release backend resources (the persistent process pool and
        its shared-memory segment). Safe to call more than once; the
        extractor remains usable and re-acquires resources on demand."""
        self.backend.close()

    def __enter__(self) -> "FeatureExtractor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def extract_features(
    series: TimeSeries,
    configs: Optional[Sequence[DetectorConfig]] = None,
    *,
    workers: int = 1,
    backend: BackendSpec = None,
    cache: Union[SeverityCache, bool, None] = None,
) -> FeatureMatrix:
    """One-shot convenience wrapper around :class:`FeatureExtractor`."""
    return FeatureExtractor(
        configs, workers=workers, backend=backend, cache=cache
    ).extract(series)
