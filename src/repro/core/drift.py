"""Concept-drift monitoring.

§2.1 assumes "operators have no concept drift regarding anomalies",
which held for the months studied — but a deployed system should
*verify* that assumption continuously. This module watches two drift
surfaces:

* **data drift** — the severity feature distributions shift between the
  training window and recent data, measured by the population stability
  index (PSI) per configuration. Large PSI means the detectors are
  seeing a different KPI than the one the forest was trained on.
* **label/performance drift** — the weekly best cThlds (already tracked
  by the EWMA machinery) or weekly accuracy trend away from the
  training regime.

A :class:`DriftReport` names the most-drifted configurations so the
operator knows *what* changed, not just that something did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

#: Conventional PSI interpretation thresholds.
PSI_MODERATE = 0.1
PSI_MAJOR = 0.25


def population_stability_index(
    reference: np.ndarray,
    recent: np.ndarray,
    *,
    n_bins: int = 10,
) -> float:
    """PSI between a reference and a recent sample of one feature.

    Bins are reference deciles; both distributions are smoothed so empty
    bins do not produce infinities. NaN values are excluded (they carry
    the warm-up/missing convention, not distributional information).
    """
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    reference = np.asarray(reference, dtype=np.float64)
    recent = np.asarray(recent, dtype=np.float64)
    reference = reference[np.isfinite(reference)]
    recent = recent[np.isfinite(recent)]
    if len(reference) < n_bins or len(recent) == 0:
        raise ValueError("need enough finite points in both samples")

    quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    edges = np.unique(np.quantile(reference, quantiles))
    ref_counts = np.bincount(
        np.searchsorted(edges, reference, side="left"),
        minlength=len(edges) + 1,
    ).astype(np.float64)
    rec_counts = np.bincount(
        np.searchsorted(edges, recent, side="left"),
        minlength=len(edges) + 1,
    ).astype(np.float64)
    # Laplace smoothing keeps empty bins finite.
    ref_frac = (ref_counts + 0.5) / (ref_counts.sum() + 0.5 * len(ref_counts))
    rec_frac = (rec_counts + 0.5) / (rec_counts.sum() + 0.5 * len(rec_counts))
    return float(np.sum((rec_frac - ref_frac) * np.log(rec_frac / ref_frac)))


@dataclass(frozen=True)
class FeatureDrift:
    """Drift of one detector configuration's severity distribution."""

    name: str
    psi: float

    @property
    def level(self) -> str:
        if self.psi >= PSI_MAJOR:
            return "major"
        if self.psi >= PSI_MODERATE:
            return "moderate"
        return "stable"


@dataclass
class DriftReport:
    """Per-configuration drift between training and recent windows."""

    features: List[FeatureDrift]

    def top(self, k: int = 5) -> List[FeatureDrift]:
        return sorted(self.features, key=lambda f: -f.psi)[:k]

    @property
    def max_psi(self) -> float:
        if not self.features:
            raise ValueError("report has no features")
        return max(f.psi for f in self.features)

    @property
    def drifted_fraction(self) -> float:
        """Fraction of configurations at moderate-or-worse drift."""
        if not self.features:
            raise ValueError("report has no features")
        return float(
            np.mean([f.psi >= PSI_MODERATE for f in self.features])
        )

    def render(self, k: int = 5) -> str:
        lines = [
            f"feature drift: max PSI {self.max_psi:.3f}, "
            f"{self.drifted_fraction:.0%} of configurations >= moderate"
        ]
        for feature in self.top(k):
            lines.append(
                f"  PSI {feature.psi:6.3f} ({feature.level:<8}) {feature.name}"
            )
        return "\n".join(lines)


def feature_drift(
    reference_rows: np.ndarray,
    recent_rows: np.ndarray,
    names: Optional[Sequence[str]] = None,
    *,
    n_bins: int = 10,
) -> DriftReport:
    """PSI of every feature column between two row windows.

    Columns without enough finite data in either window are skipped
    (e.g. a detector whose warm-up covers the whole reference window).
    """
    reference_rows = np.asarray(reference_rows, dtype=np.float64)
    recent_rows = np.asarray(recent_rows, dtype=np.float64)
    if reference_rows.ndim != 2 or recent_rows.ndim != 2:
        raise ValueError("row windows must be 2-D")
    if reference_rows.shape[1] != recent_rows.shape[1]:
        raise ValueError(
            f"column mismatch: {reference_rows.shape[1]} vs "
            f"{recent_rows.shape[1]}"
        )
    n_features = reference_rows.shape[1]
    if names is not None and len(names) != n_features:
        raise ValueError("names length must match the feature count")

    features = []
    for j in range(n_features):
        try:
            psi = population_stability_index(
                reference_rows[:, j], recent_rows[:, j], n_bins=n_bins
            )
        except ValueError:
            continue
        features.append(
            FeatureDrift(
                name=names[j] if names is not None else f"feature {j}",
                psi=psi,
            )
        )
    return DriftReport(features=features)


def cthld_drift(best_cthlds: Sequence[float], *, window: int = 4) -> float:
    """Drift signal over the weekly best-cThld series (Fig 7): the
    absolute difference between the means of the last ``window`` weeks
    and the preceding history. Near 0 = the threshold regime is stable.
    """
    best_cthlds = np.asarray(list(best_cthlds), dtype=np.float64)
    if len(best_cthlds) <= window:
        raise ValueError(
            f"need more than {window} weeks, got {len(best_cthlds)}"
        )
    recent = best_cthlds[-window:]
    history = best_cthlds[:-window]
    return float(abs(recent.mean() - history.mean()))
