"""Explaining detections: which detector configurations fired.

§6 argues detection results "should be reported to operators and let
operators decide how to deal with them". A bare anomaly probability is
hard to act on; an explanation of *which detectors drove it* tells the
operator what kind of anomaly the forest saw (a seasonal violation? a
level shift? jitter?). This module decomposes a forest prediction into
per-configuration contributions via the trees' decision paths and maps
them back to detector names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..ml import RandomForest
from .opprentice import Opprentice


@dataclass(frozen=True)
class FeatureContribution:
    """One detector configuration's share of an anomaly probability."""

    name: str
    contribution: float
    severity: float


@dataclass(frozen=True)
class DetectionExplanation:
    """Decomposition of one point's anomaly probability.

    ``bias + sum(contributions) == probability`` (for the fully grown
    forests Opprentice trains, this is exactly the reported vote
    probability).
    """

    probability: float
    bias: float
    contributions: List[FeatureContribution]

    def top(self, k: int = 5) -> List[FeatureContribution]:
        """The k configurations pushing hardest toward "anomaly"."""
        ranked = sorted(
            self.contributions, key=lambda c: -c.contribution
        )
        return ranked[:k]

    def render(self, k: int = 5) -> str:
        lines = [
            f"anomaly probability {self.probability:.2f} "
            f"(baseline {self.bias:.2f})"
        ]
        for contribution in self.top(k):
            lines.append(
                f"  {contribution.contribution:+.3f}  {contribution.name} "
                f"(severity {contribution.severity:.3g})"
            )
        return "\n".join(lines)


def explain_features(
    opprentice: Opprentice, feature_rows: np.ndarray
) -> List[DetectionExplanation]:
    """Explain predictions for raw (unimputed) feature rows."""
    if opprentice.classifier_ is None or opprentice.imputer_ is None:
        raise ValueError("explain requires a fitted Opprentice")
    classifier = opprentice.classifier_
    if not isinstance(classifier, RandomForest):
        raise TypeError(
            "path-based explanations need a RandomForest classifier, got "
            f"{type(classifier).__name__}"
        )
    feature_rows = np.atleast_2d(np.asarray(feature_rows, dtype=np.float64))
    names = opprentice.extractor.names
    imputed = opprentice.imputer_.transform(feature_rows)
    contributions = classifier.prediction_contributions(imputed)
    probabilities = classifier.predict_proba(imputed)

    explanations = []
    for row in range(feature_rows.shape[0]):
        explanations.append(
            DetectionExplanation(
                probability=float(probabilities[row]),
                bias=float(contributions[row, -1]),
                contributions=[
                    FeatureContribution(
                        name=names[j],
                        contribution=float(contributions[row, j]),
                        severity=float(feature_rows[row, j]),
                    )
                    for j in range(len(names))
                ],
            )
        )
    return explanations


def explain_point(
    opprentice: Opprentice, series, index: int
) -> DetectionExplanation:
    """Explain the detection of one point of a series.

    Extracts features over the whole series (so windowed detectors have
    context) and decomposes the prediction at ``index``.
    """
    matrix = opprentice.extractor.extract(series)
    if not 0 <= index < matrix.n_points:
        raise IndexError(f"index {index} outside series of {matrix.n_points}")
    return explain_features(opprentice, matrix.values[index])[0]
