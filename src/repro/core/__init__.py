"""The Opprentice framework: feature matrix, training strategies, cThld
configuration, online detection, alerting, and cross-KPI transfer."""

from .alerting import Alert, alerts_from_predictions, duration_filter
from .backtest import (
    DEFAULT_PREFERENCE_GRID,
    PreferenceOutcome,
    backtest_preferences,
    render_backtest,
)
from .drift import (
    DriftReport,
    FeatureDrift,
    cthld_drift,
    feature_drift,
    population_stability_index,
)
from .explain import DetectionExplanation, FeatureContribution, explain_features, explain_point
from .execution import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    build_tasks,
    map_ordered,
    resolve_backend,
    resolve_workers,
)
from .feature_matrix import FeatureExtractor, FeatureMatrix, extract_features
from .severity_cache import CACHE_DIR_ENV, SeverityCache, column_key, series_digest
from .opprentice import (
    DetectionResult,
    OnlineRun,
    Opprentice,
    WeeklyOutcome,
    default_classifier_factory,
    run_online,
)
from .persistence import (
    load_checkpoint,
    load_model,
    load_service_checkpoint,
    save_checkpoint,
    save_model,
    save_service_checkpoint,
)
from .prediction import (
    EWMA_CTHLD_ALPHA,
    CrossValidationPredictor,
    CThldPredictor,
    EWMAPredictor,
    best_cthld,
)
from .training import (
    F4,
    FIRST_TEST_WEEK,
    I1,
    I4,
    INITIAL_TRAIN_WEEKS,
    R4,
    STRATEGIES,
    TrainingStrategy,
    TrainTestSplit,
)
from .service import (
    SERVICE_SNAPSHOT_VERSION,
    AlertEvent,
    MonitoringService,
    ServiceStats,
)
from .streaming import (
    STREAM_CHECKPOINT_VERSION,
    StreamDecision,
    StreamingDetector,
)
from .transfer import SeverityNormalizer, TransferDetector

__all__ = [
    "save_model",
    "load_model",
    "save_checkpoint",
    "load_checkpoint",
    "save_service_checkpoint",
    "load_service_checkpoint",
    "FeatureExtractor",
    "FeatureMatrix",
    "extract_features",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "build_tasks",
    "map_ordered",
    "resolve_backend",
    "resolve_workers",
    "SeverityCache",
    "CACHE_DIR_ENV",
    "column_key",
    "series_digest",
    "backtest_preferences",
    "PreferenceOutcome",
    "render_backtest",
    "DEFAULT_PREFERENCE_GRID",
    "DriftReport",
    "FeatureDrift",
    "feature_drift",
    "cthld_drift",
    "population_stability_index",
    "DetectionExplanation",
    "FeatureContribution",
    "explain_features",
    "explain_point",
    "Opprentice",
    "DetectionResult",
    "OnlineRun",
    "WeeklyOutcome",
    "run_online",
    "default_classifier_factory",
    "CThldPredictor",
    "EWMAPredictor",
    "CrossValidationPredictor",
    "best_cthld",
    "EWMA_CTHLD_ALPHA",
    "TrainingStrategy",
    "TrainTestSplit",
    "I1",
    "I4",
    "R4",
    "F4",
    "STRATEGIES",
    "FIRST_TEST_WEEK",
    "INITIAL_TRAIN_WEEKS",
    "Alert",
    "duration_filter",
    "alerts_from_predictions",
    "MonitoringService",
    "AlertEvent",
    "ServiceStats",
    "SERVICE_SNAPSHOT_VERSION",
    "StreamingDetector",
    "StreamDecision",
    "STREAM_CHECKPOINT_VERSION",
    "SeverityNormalizer",
    "TransferDetector",
]
