"""True streaming detection: one point in, one decision out.

§4.3.2 requires that "once a data point arrives, its severity should be
calculated by the detectors without waiting for any subsequent data",
and that per-point processing beats the data interval. The batch
:class:`~repro.core.Opprentice` API scores whole series;
:class:`StreamingDetector` runs the same fitted model point-by-point
using each detector's online stream — the deployment shape of Fig 3(b).

The streams are exact (the test suite asserts stream == batch for every
configuration), so pushing points one at a time produces the same
scores and decisions as batch detection over the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..detectors import StreamBank
from ..obs import get_provider
from ..timeseries import TimeSeries
from .opprentice import Opprentice

#: Version tag of the stream-checkpoint dict layout produced by
#: :meth:`StreamingDetector.snapshot`.
STREAM_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class StreamDecision:
    """The outcome for one pushed data point."""

    index: int
    score: float
    is_anomaly: bool
    severities: np.ndarray

    @property
    def cThld_exceeded(self) -> bool:
        return self.is_anomaly


class StreamingDetector:
    """Point-at-a-time detection with a fitted :class:`Opprentice`.

    Parameters
    ----------
    opprentice:
        A fitted model (classifier, imputer and cThld configured).
    history:
        Optional recent series to replay through the detector streams so
        windowed detectors start warm — typically the training series.
        Replaying the training series makes subsequent decisions equal
        to the batch contextual scores.
    checkpoint:
        Alternative to ``history``: a dict from :meth:`snapshot` of a
        previous StreamingDetector over the same detector bank. The
        fresh streams are restored to the checkpointed state in O(state)
        instead of replaying the whole history — this is what keeps
        :meth:`MonitoringService.retrain` flat in history length.
    """

    def __init__(
        self,
        opprentice: Opprentice,
        history: Optional[TimeSeries] = None,
        checkpoint: Optional[Mapping[str, Any]] = None,
        kpi: Optional[str] = None,
    ):
        if opprentice.classifier_ is None or opprentice.imputer_ is None:
            raise ValueError("StreamingDetector needs a fitted Opprentice")
        if history is not None and checkpoint is not None:
            raise ValueError("pass either history or checkpoint, not both")
        self._opprentice = opprentice
        # Per-KPI latency attribution: the kpi label on the per-point
        # stage timers; falls back to the replayed history's name.
        self.kpi = kpi if kpi is not None else (
            history.name if history is not None else None
        )
        configs = opprentice.extractor.config_bank
        if configs is None:
            raise ValueError(
                "the Opprentice has no detector configs yet; fit it on a "
                "series (or pass configs explicitly) first"
            )
        self._configs = configs
        # One fused stream per detector family (the Holt-Winters sweep
        # is a single vectorised update instead of 64 scalar ones);
        # checkpoints stay per-config — see StreamBank.
        self._bank = StreamBank(configs)
        self._index = -1
        if checkpoint is not None:
            self.restore(checkpoint)
        elif history is not None:
            self.replay(history)

    @property
    def n_configs(self) -> int:
        return len(self._bank)

    @property
    def points_seen(self) -> int:
        return self._index + 1

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The warm state of every detector stream as one
        JSON-serializable checkpoint dict (see
        :func:`repro.core.persistence.save_checkpoint` for the on-disk
        form). Restoring it into a fresh StreamingDetector over the same
        bank reproduces this detector's future decisions exactly."""
        return {
            "format_version": STREAM_CHECKPOINT_VERSION,
            "index": self._index,
            "feature_names": [config.name for config in self._configs],
            "streams": self._bank.snapshots(),
        }

    def restore(self, checkpoint: Mapping[str, Any]) -> "StreamingDetector":
        """Load a :meth:`snapshot` into this detector's fresh streams."""
        version = checkpoint.get("format_version")
        if version != STREAM_CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported stream checkpoint version {version!r} "
                f"(expected {STREAM_CHECKPOINT_VERSION})"
            )
        names = list(checkpoint["feature_names"])
        current = [config.name for config in self._configs]
        if names != current:
            raise ValueError(
                "detector bank mismatch: the checkpoint was taken over a "
                "different feature set"
            )
        with get_provider().span(
            "stream.restore", n_streams=len(self._bank)
        ):
            self._bank.restore(list(checkpoint["streams"]))
        self._index = int(checkpoint["index"])
        return self

    def buffered_points(self) -> int:
        """Total points buffered across all detector streams — the value
        behind the ``repro_stream_buffer_points`` gauge. Flat over time
        for the bounded streams every registered detector uses."""
        return self._bank.buffered_points()

    def replay(self, series: TimeSeries) -> None:
        """Warm the detector streams with historical data (no decisions
        are produced)."""
        with get_provider().span(
            "stream.replay", kpi=series.name or "", n_points=len(series)
        ):
            for value in series.values:
                self._advance(value)

    def _advance(self, value: float) -> np.ndarray:
        self._index += 1
        return self._bank.extract_point(value)

    def push(self, value: float) -> StreamDecision:
        """Consume the next data point and classify it."""
        obs = get_provider()
        with obs.timer(
            "repro_stream_point_seconds",
            "Per-point streaming latency by stage (§4.3.2/§5.8)",
            stage="features",
            kpi=self.kpi or "",
        ):
            severities = self._advance(float(value))
        opprentice = self._opprentice
        with obs.timer(
            "repro_stream_point_seconds",
            "Per-point streaming latency by stage (§4.3.2/§5.8)",
            stage="classify",
            kpi=self.kpi or "",
        ):
            features = opprentice.imputer_.transform(severities[np.newaxis, :])
            score = float(opprentice.classifier_.predict_proba(features)[0])
        obs.counter(
            "repro_stream_points_total", "Points pushed through streams"
        ).inc()
        assert opprentice.cthld_ is not None
        return StreamDecision(
            index=self._index,
            score=score,
            is_anomaly=score >= opprentice.cthld_,
            severities=severities,
        )

    def push_many(self, values) -> List[StreamDecision]:
        """Convenience: push a sequence of points."""
        return [self.push(value) for value in values]
