"""True streaming detection: one point in, one decision out.

§4.3.2 requires that "once a data point arrives, its severity should be
calculated by the detectors without waiting for any subsequent data",
and that per-point processing beats the data interval. The batch
:class:`~repro.core.Opprentice` API scores whole series;
:class:`StreamingDetector` runs the same fitted model point-by-point
using each detector's online stream — the deployment shape of Fig 3(b).

The streams are exact (the test suite asserts stream == batch for every
configuration), so pushing points one at a time produces the same
scores and decisions as batch detection over the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..detectors import SeverityStream
from ..obs import get_provider
from ..timeseries import TimeSeries
from .opprentice import Opprentice


@dataclass(frozen=True)
class StreamDecision:
    """The outcome for one pushed data point."""

    index: int
    score: float
    is_anomaly: bool
    severities: np.ndarray

    @property
    def cThld_exceeded(self) -> bool:
        return self.is_anomaly


class StreamingDetector:
    """Point-at-a-time detection with a fitted :class:`Opprentice`.

    Parameters
    ----------
    opprentice:
        A fitted model (classifier, imputer and cThld configured).
    history:
        Optional recent series to replay through the detector streams so
        windowed detectors start warm — typically the training series.
        Replaying the training series makes subsequent decisions equal
        to the batch contextual scores.
    """

    def __init__(self, opprentice: Opprentice, history: Optional[TimeSeries] = None):
        if opprentice.classifier_ is None or opprentice.imputer_ is None:
            raise ValueError("StreamingDetector needs a fitted Opprentice")
        self._opprentice = opprentice
        configs = opprentice.extractor._configs
        if configs is None:
            raise ValueError(
                "the Opprentice has no detector configs yet; fit it on a "
                "series (or pass configs explicitly) first"
            )
        self._streams: List[SeverityStream] = [
            config.detector.stream() for config in configs
        ]
        self._index = -1
        if history is not None:
            self.replay(history)

    @property
    def n_configs(self) -> int:
        return len(self._streams)

    @property
    def points_seen(self) -> int:
        return self._index + 1

    def replay(self, series: TimeSeries) -> None:
        """Warm the detector streams with historical data (no decisions
        are produced)."""
        with get_provider().span(
            "stream.replay", kpi=series.name or "", n_points=len(series)
        ):
            for value in series.values:
                self._advance(value)

    def _advance(self, value: float) -> np.ndarray:
        self._index += 1
        return np.array(
            [stream.update(value) for stream in self._streams]
        )

    def push(self, value: float) -> StreamDecision:
        """Consume the next data point and classify it."""
        obs = get_provider()
        with obs.timer(
            "repro_stream_point_seconds",
            "Per-point streaming latency by stage (§4.3.2/§5.8)",
            stage="features",
        ):
            severities = self._advance(float(value))
        opprentice = self._opprentice
        with obs.timer(
            "repro_stream_point_seconds",
            "Per-point streaming latency by stage (§4.3.2/§5.8)",
            stage="classify",
        ):
            features = opprentice.imputer_.transform(severities[np.newaxis, :])
            score = float(opprentice.classifier_.predict_proba(features)[0])
        obs.counter(
            "repro_stream_points_total", "Points pushed through streams"
        ).inc()
        assert opprentice.cthld_ is not None
        return StreamDecision(
            index=self._index,
            score=score,
            is_anomaly=score >= opprentice.cthld_,
            severities=severities,
        )

    def push_many(self, values) -> List[StreamDecision]:
        """Convenience: push a sequence of points."""
        return [self.push(value) for value in values]
