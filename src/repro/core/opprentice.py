"""The Opprentice framework (§4, Fig 3).

Training side (Fig 3a): detectors extract severity features from
labelled KPI data; a random forest is (re)trained incrementally on all
historical labelled data; the operators' accuracy preference guides
cThld configuration. Detection side (Fig 3b): the same detectors
extract features of incoming data and the latest classifier thresholds
the anomaly probability at the predicted cThld.

Two entry points:

* :class:`Opprentice` — the simple fit/detect API for one-shot use.
* :func:`run_online` — the weekly incremental-retraining loop used by
  the paper's evaluation (train on all history, predict next week's
  cThld, detect the next week, repeat).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..detectors import DetectorConfig
from ..evaluation import (
    MODERATE_PREFERENCE,
    AccuracyPreference,
    evaluate_threshold,
)
from ..ml import Classifier, Imputer, RandomForest
from ..obs import get_provider
from ..timeseries import TimeSeries
from .feature_matrix import FeatureExtractor, FeatureMatrix
from .prediction import CThldPredictor, EWMAPredictor, best_cthld
from .training import INITIAL_TRAIN_WEEKS, TrainingStrategy, I1


def default_classifier_factory() -> RandomForest:
    """The paper's classifier: a fully grown random forest."""
    return RandomForest(n_estimators=50, max_features="sqrt", seed=0)


def _subsample_training(
    features: np.ndarray,
    labels: np.ndarray,
    max_points: Optional[int],
    seed: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Optionally cap the training-set size, keeping every anomaly.

    Normal points vastly outnumber anomalies (§3.2), so dropping a
    random subset of normals preserves the learning problem while
    bounding retraining cost on long histories.
    """
    if max_points is None or len(labels) <= max_points:
        return features, labels
    rng = np.random.default_rng(seed)
    anomaly_idx = np.flatnonzero(labels == 1)
    normal_idx = np.flatnonzero(labels == 0)
    n_normals = max(max_points - len(anomaly_idx), 1)
    if n_normals < len(normal_idx):
        normal_idx = rng.choice(normal_idx, size=n_normals, replace=False)
    keep = np.sort(np.concatenate([anomaly_idx, normal_idx]))
    return features[keep], labels[keep]


class Opprentice:
    """Simple fit/detect interface over the full pipeline.

    >>> opp = Opprentice()
    >>> opp.fit(labeled_series)        # doctest: +SKIP
    >>> result = opp.detect(new_week)  # doctest: +SKIP

    Parameters
    ----------
    configs:
        Detector configurations (default: the Table 3 bank).
    preference:
        Operators' "recall >= R and precision >= P" target.
    classifier_factory:
        Builds a fresh classifier per (re)training round.
    cthld_predictor:
        Strategy for the online cThld; default EWMA (§4.5.2).
    max_train_points:
        Optional training-set size cap (see evaluation harness docs).
    workers / backend / cache:
        Feature-extraction execution knobs, passed through to
        :class:`FeatureExtractor` (see docs/performance.md): worker
        count (0 = one per CPU), execution backend
        (serial/thread/process) and severity-column cache.
    """

    def __init__(
        self,
        configs: Optional[Sequence[DetectorConfig]] = None,
        preference: AccuracyPreference = MODERATE_PREFERENCE,
        classifier_factory: Callable[[], Classifier] = default_classifier_factory,
        cthld_predictor: Optional[CThldPredictor] = None,
        max_train_points: Optional[int] = None,
        seed: int = 0,
        workers: int = 1,
        backend=None,
        cache=None,
    ):
        self.extractor = FeatureExtractor(
            configs, workers=workers, backend=backend, cache=cache
        )
        self.preference = preference
        self.classifier_factory = classifier_factory
        self.cthld_predictor = cthld_predictor or EWMAPredictor(preference)
        self.max_train_points = max_train_points
        self.seed = seed
        self.classifier_: Optional[Classifier] = None
        self.imputer_: Optional[Imputer] = None
        self.cthld_: Optional[float] = None
        self._train_features: Optional[np.ndarray] = None
        self._train_labels: Optional[np.ndarray] = None
        #: The series fit() saw, kept so that detect() on subsequent
        #: data can extract features *in context*: seasonal detectors
        #: (TSD, historical average...) need past weeks to produce
        #: severities for the first incoming points (Fig 3b applies the
        #: detectors to the stream, not to an isolated window).
        self._history: Optional[TimeSeries] = None
        #: Raw (un-imputed) feature rows of ``_history``, cached so that
        #: fit_incremental() can extend the matrix with just the new
        #: points' severity rows instead of re-extracting everything.
        self._feature_values: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, series: TimeSeries) -> "Opprentice":
        """Train on a labelled series and configure the cThld.

        Feature rows of the whole series form the training set; the
        cThld comes from the configured predictor (EWMA's first
        prediction = 5-fold cross-validation on the training set).
        """
        if not series.is_labeled:
            raise ValueError("fit requires a labelled series (§4.2)")
        with get_provider().span(
            "train.fit", kpi=series.name or "", n_points=len(series)
        ):
            matrix = self.extractor.extract(series)
            self._history = series
            self._feature_values = matrix.values
            return self.fit_features(matrix.values, series.labels)

    def fit_features(
        self, features: np.ndarray, labels: np.ndarray
    ) -> "Opprentice":
        """Train directly on a precomputed feature matrix."""
        labels = np.asarray(labels, dtype=np.int8)
        obs = get_provider()
        with obs.span(
            "train.fit_features", n_points=len(labels)
        ) as span:
            self.imputer_ = Imputer().fit(features)
            imputed = self.imputer_.transform(features)
            train_x, train_y = _subsample_training(
                imputed, labels, self.max_train_points, self.seed
            )
            self._train_features, self._train_labels = train_x, train_y
            self.classifier_ = self.classifier_factory()
            with obs.timer(
                "repro_training_seconds",
                "Wall time per training sub-stage",
                stage="classifier_fit",
            ):
                self.classifier_.fit(train_x, train_y)
            with obs.timer(
                "repro_training_seconds",
                "Wall time per training sub-stage",
                stage="cthld_predict",
            ):
                self.cthld_ = self.cthld_predictor.predict(
                    self.classifier_factory, train_x, train_y
                )
            span.set("cthld", self.cthld_)
        obs.counter(
            "repro_training_rounds_total", "Classifier (re)training rounds"
        ).inc()
        obs.emit(
            "training_round",
            n_points=int(len(train_y)),
            n_anomalies=int(train_y.sum()),
            cthld=self.cthld_,
        )
        return self

    def retrain(self, series: TimeSeries) -> "Opprentice":
        """Incremental retraining (§3.2): refit on a series extended
        with newly labelled data. Semantically identical to fit(); the
        separate name documents the weekly retraining call site."""
        return self.fit(series)

    def fit_incremental(
        self, series: TimeSeries, new_rows: np.ndarray
    ) -> "Opprentice":
        """Retrain on ``series`` — the fitted history extended by new
        points — reusing the cached feature matrix.

        ``new_rows`` are the severity rows of exactly the points that
        extend the history, in order. The stream == batch invariant
        makes the severities collected during streaming detection (each
        :class:`~repro.core.StreamDecision`'s ``severities``) identical
        to what a fresh batch extraction over the combined series would
        produce for those points, so feature cost per retraining round
        is O(new points) instead of O(all history). Classifier and cThld
        fitting are unchanged — the result equals ``fit(series)``.
        """
        if not series.is_labeled:
            raise ValueError("fit requires a labelled series (§4.2)")
        cached = self._feature_values
        if cached is None:
            raise RuntimeError("fit() must run before fit_incremental()")
        new_rows = np.asarray(new_rows, dtype=np.float64)
        if new_rows.size == 0:
            new_rows = new_rows.reshape(0, cached.shape[1])
        if new_rows.ndim != 2 or new_rows.shape[1] != cached.shape[1]:
            raise ValueError(
                f"new rows of shape {new_rows.shape} do not match the "
                f"cached {cached.shape[1]}-feature matrix"
            )
        if len(cached) + len(new_rows) != len(series):
            raise ValueError(
                f"{len(new_rows)} new rows do not extend the cached "
                f"{len(cached)}-row matrix to {len(series)} points"
            )
        with get_provider().span(
            "train.fit_incremental",
            kpi=series.name or "",
            n_points=len(series),
            n_new_points=len(new_rows),
        ):
            features = (
                np.vstack([cached, new_rows]) if len(new_rows) else cached
            )
            self._history = series
            self._feature_values = features
            return self.fit_features(features, series.labels)

    # ------------------------------------------------------------------
    def anomaly_scores(self, series: TimeSeries) -> np.ndarray:
        """Anomaly probability per point of ``series``.

        If ``series`` continues the grid of the series fit() was given,
        features are extracted over history + new data so windowed
        detectors keep their context (and their causality guarantees
        make the result identical to a true streaming run).
        """
        if self.classifier_ is None or self.imputer_ is None:
            raise RuntimeError("Opprentice is not fitted")
        history = self._history
        if history is not None and self._continues_history(series):
            combined = TimeSeries(
                values=np.concatenate([history.values, series.values]),
                interval=history.interval,
                start=history.start,
                name=series.name or history.name,
            )
            matrix = self.extractor.extract(combined)
            return self.score_features(matrix.values[len(history):])
        matrix = self.extractor.extract(series)
        return self.score_features(matrix.values)

    def _continues_history(self, series: TimeSeries) -> bool:
        history = self._history
        return (
            history is not None
            and series.interval == history.interval
            and series.start == history.start + len(history) * history.interval
        )

    def score_features(self, features: np.ndarray) -> np.ndarray:
        if self.classifier_ is None or self.imputer_ is None:
            raise RuntimeError("Opprentice is not fitted")
        obs = get_provider()
        with obs.span("classify.score_features", n_points=len(features)):
            scores = self.classifier_.predict_proba(
                self.imputer_.transform(features)
            )
        obs.counter(
            "repro_points_classified_total",
            "Points scored by the classifier",
        ).inc(len(features))
        return scores

    def detect(self, series: TimeSeries) -> "DetectionResult":
        """Classify every point of ``series`` at the configured cThld."""
        scores = self.anomaly_scores(series)
        assert self.cthld_ is not None
        return DetectionResult(
            series=series,
            scores=scores,
            cthld=self.cthld_,
            predictions=(scores >= self.cthld_).astype(np.int8),
        )

    def observe_best_cthld(self, scores: np.ndarray, labels: np.ndarray) -> float:
        """After a window's ground truth arrives, compute its best cThld
        and update the predictor (the EWMA feedback loop)."""
        best = best_cthld(scores, labels, self.preference)
        self.cthld_predictor.observe_best(best)
        return best

    def training_health(self) -> dict:
        """Self-diagnostics from the training round, without any
        held-out data: the forest's out-of-bag accuracy and OOB AUCPR,
        the Brier score of the OOB probabilities, and whether the OOB
        operating point at the configured cThld satisfies the
        preference. Useful right after the initial fit, before the
        first labelled test week exists (§4.1's bootstrap moment)."""
        from ..evaluation import aucpr, brier_score
        from ..evaluation.metrics import evaluate_threshold
        from ..ml import RandomForest

        if self.classifier_ is None or self._train_labels is None:
            raise RuntimeError("Opprentice is not fitted")
        if not isinstance(self.classifier_, RandomForest):
            raise TypeError("training_health needs a RandomForest classifier")
        scores = self.classifier_.oob_scores()
        labels = self._train_labels
        recall, precision = evaluate_threshold(scores, labels, self.cthld_)
        return {
            "oob_accuracy": self.classifier_.oob_accuracy(),
            "oob_aucpr": aucpr(scores, labels),
            "oob_brier": brier_score(scores, labels),
            "oob_recall_at_cthld": recall,
            "oob_precision_at_cthld": precision,
            "preference_satisfied": self.preference.satisfied_by(
                recall, precision
            ),
        }


@dataclass
class DetectionResult:
    """Point-level detections of one series."""

    series: TimeSeries
    scores: np.ndarray
    cthld: float
    predictions: np.ndarray

    def anomalous_indices(self) -> np.ndarray:
        return np.flatnonzero(self.predictions == 1)

    def accuracy(self) -> tuple[float, float]:
        """(recall, precision) against the series' labels."""
        if not self.series.is_labeled:
            raise ValueError("series has no ground-truth labels")
        return evaluate_threshold(self.scores, self.series.labels, self.cthld)


# ----------------------------------------------------------------------
# The weekly online loop (§5.6 / Fig 13)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WeeklyOutcome:
    """One test week of the online loop."""

    week: int
    test_begin: int
    test_end: int
    cthld_used: float
    cthld_best: float
    recall: float
    precision: float
    best_recall: float
    best_precision: float


@dataclass
class OnlineRun:
    """Everything the online loop produced over the test region."""

    series: TimeSeries
    preference: AccuracyPreference
    outcomes: List[WeeklyOutcome]
    #: Full-length arrays (NaN / -1 outside the test region).
    scores: np.ndarray
    predictions: np.ndarray
    predictions_best: np.ndarray

    @property
    def test_begin(self) -> int:
        return self.outcomes[0].test_begin

    @property
    def test_end(self) -> int:
        return self.outcomes[-1].test_end

    def n_detected(self) -> int:
        """Total points identified as anomalies in the test region."""
        return int(np.sum(self.predictions == 1))

    def moving_window_accuracy(
        self,
        window_weeks: int = 4,
        step_days: int = 1,
        use_best: bool = False,
    ) -> List[tuple[float, float]]:
        """(recall, precision) of a moving window over the test region.

        Fig 13: "we calculate the average recall and precision of a
        4-week moving window. The window moves one day for each step."
        Accuracy is computed over the window's pooled points.
        """
        predictions = self.predictions_best if use_best else self.predictions
        labels = self.series.labels
        if labels is None:
            raise ValueError("series has no labels")
        ppd = self.series.points_per_day
        ppw = self.series.points_per_week
        window = window_weeks * ppw
        step = step_days * ppd
        points = []
        begin = self.test_begin
        while begin + window <= self.test_end:
            window_preds = predictions[begin: begin + window].astype(np.float64)
            window_preds[window_preds < 0] = np.nan
            recall, precision = _recall_precision(
                window_preds, labels[begin: begin + window]
            )
            points.append((recall, precision))
            begin += step
        return points

    def satisfaction_rate(
        self, window_weeks: int = 4, step_days: int = 1, use_best: bool = False
    ) -> float:
        """Fraction of moving windows meeting the preference (the
        "points inside the shaded region" statistic of Fig 13)."""
        points = self.moving_window_accuracy(window_weeks, step_days, use_best)
        if not points:
            raise ValueError("test region shorter than one window")
        satisfied = sum(
            self.preference.satisfied_by(r, p) for r, p in points
        )
        return satisfied / len(points)


def _recall_precision(predictions, labels) -> tuple[float, float]:
    from ..evaluation.confusion import precision_recall

    return precision_recall(predictions, labels)


def run_online(
    series: TimeSeries,
    *,
    configs: Optional[Sequence[DetectorConfig]] = None,
    preference: AccuracyPreference = MODERATE_PREFERENCE,
    classifier_factory: Callable[[], Classifier] = default_classifier_factory,
    predictor: Optional[CThldPredictor] = None,
    strategy: TrainingStrategy = I1,
    features: Optional[FeatureMatrix] = None,
    max_train_points: Optional[int] = None,
    seed: int = 0,
    workers: int = 1,
    backend=None,
    cache=None,
) -> OnlineRun:
    """The paper's online evaluation loop (§5.6).

    For every test window of ``strategy`` (default I1: 1-week windows
    from week 9, incremental retraining on all history):

    1. retrain the classifier on the training range's labelled points;
    2. predict the cThld with ``predictor`` (default EWMA);
    3. detect the test window at the predicted cThld;
    4. compute the window's offline best cThld and feed it back.

    Pass a precomputed ``features`` matrix to amortise extraction across
    the EWMA / 5-fold / best-case comparison runs.
    """
    if not series.is_labeled:
        raise ValueError("online evaluation needs a labelled series")
    predictor = predictor or EWMAPredictor(preference)
    extractor = FeatureExtractor(
        configs, workers=workers, backend=backend, cache=cache
    )
    matrix = features if features is not None else extractor.extract(series)
    if matrix.n_points != len(series):
        raise ValueError(
            f"feature matrix has {matrix.n_points} rows for a series of "
            f"{len(series)} points"
        )
    labels = series.labels
    assert labels is not None

    n = len(series)
    scores_full = np.full(n, np.nan)
    predictions = np.full(n, -1, dtype=np.int8)
    predictions_best = np.full(n, -1, dtype=np.int8)
    outcomes: List[WeeklyOutcome] = []

    obs = get_provider()
    for split in strategy.splits(series):
        weekly_span = obs.span(
            "train.weekly_round",
            kpi=series.name or "",
            week=split.test_week,
            strategy=strategy.id,
        )
        with weekly_span:
            train_rows = matrix.rows(split.train_begin, split.train_end)
            train_labels = labels[split.train_begin: split.train_end]
            imputer = Imputer().fit(train_rows)
            train_x, train_y = _subsample_training(
                imputer.transform(train_rows),
                train_labels,
                max_train_points,
                seed + split.test_week,
            )
            if train_y.sum() == 0 or train_y.sum() == len(train_y):
                # Degenerate training window (no anomalies labelled yet):
                # nothing to learn from; skip this step.
                weekly_span.set("skipped", True)
                continue
            with obs.timer(
                "repro_training_seconds",
                "Wall time per training sub-stage",
                stage="classifier_fit",
            ):
                classifier = classifier_factory()
                classifier.fit(train_x, train_y)
            with obs.timer(
                "repro_training_seconds",
                "Wall time per training sub-stage",
                stage="cthld_predict",
            ):
                cthld = predictor.predict(classifier_factory, train_x, train_y)

            test_rows = imputer.transform(
                matrix.rows(split.test_begin, split.test_end)
            )
            with obs.timer(
                "repro_classification_seconds",
                "Wall time per classification batch",
            ):
                test_scores = classifier.predict_proba(test_rows)
            test_labels = labels[split.test_begin: split.test_end]

        best = best_cthld(test_scores, test_labels, preference)
        predictor.observe_best(best)

        recall, precision = evaluate_threshold(test_scores, test_labels, cthld)
        best_recall, best_precision = evaluate_threshold(
            test_scores, test_labels, best
        )
        scores_full[split.test_begin: split.test_end] = test_scores
        predictions[split.test_begin: split.test_end] = (
            test_scores >= cthld
        ).astype(np.int8)
        predictions_best[split.test_begin: split.test_end] = (
            test_scores >= best
        ).astype(np.int8)
        outcomes.append(
            WeeklyOutcome(
                week=split.test_week,
                test_begin=split.test_begin,
                test_end=split.test_end,
                cthld_used=cthld,
                cthld_best=best,
                recall=recall,
                precision=precision,
                best_recall=best_recall,
                best_precision=best_precision,
            )
        )
    if not outcomes:
        raise ValueError(
            "series too short for the training strategy "
            f"(needs > {INITIAL_TRAIN_WEEKS + strategy.test_weeks} weeks)"
        )
    return OnlineRun(
        series=series,
        preference=preference,
        outcomes=outcomes,
        scores=scores_full,
        predictions=predictions,
        predictions_best=predictions_best,
    )
