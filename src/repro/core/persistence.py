"""Saving and loading trained Opprentice models.

Weekly incremental retraining (§4.1) happens on a schedule; between
rounds the deployed detector process needs the *latest anomaly
classifier* on disk. This module persists a fitted :class:`Opprentice`
— the forest, the imputer statistics, the selected cThld, the accuracy
preference and the feature-column names — as a single JSON document.
JSON (not pickle) keeps the artifact portable and safe to load.

Only random-forest classifiers are supported for persistence, which is
what Opprentice deploys; the comparison learners of Fig 10 exist for
evaluation only.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..evaluation import AccuracyPreference
from ..ml import Imputer, RandomForest
from .opprentice import Opprentice
from .service import MonitoringService
from .streaming import StreamingDetector

FORMAT_VERSION = 1

#: On-disk envelope version for stream checkpoints (the inner layout is
#: versioned separately by StreamingDetector.snapshot()).
CHECKPOINT_FORMAT_VERSION = 1

#: On-disk envelope version for full service checkpoints (the inner
#: layout is versioned separately by MonitoringService.snapshot()).
SERVICE_CHECKPOINT_FORMAT_VERSION = 1


def save_model(opprentice: Opprentice, path: Union[str, Path]) -> None:
    """Persist a fitted Opprentice to ``path`` (JSON)."""
    if opprentice.classifier_ is None or opprentice.imputer_ is None:
        raise ValueError("cannot save an unfitted Opprentice")
    if not isinstance(opprentice.classifier_, RandomForest):
        raise TypeError(
            "only RandomForest classifiers are persisted; got "
            f"{type(opprentice.classifier_).__name__}"
        )
    payload = {
        "format_version": FORMAT_VERSION,
        "preference": {
            "recall": opprentice.preference.recall,
            "precision": opprentice.preference.precision,
        },
        "cthld": opprentice.cthld_,
        "feature_names": opprentice.extractor.names,
        "imputer_fill_values": opprentice.imputer_.fill_values_.tolist(),
        "forest": opprentice.classifier_.to_dict(),
    }
    Path(path).write_text(json.dumps(payload))


def load_model(
    path: Union[str, Path], *, opprentice: Opprentice | None = None
) -> Opprentice:
    """Load a model saved by :func:`save_model`.

    Pass an ``opprentice`` (with its detector configs) to load into; a
    default-bank instance is built otherwise. The stored feature names
    must match the instance's configs — a mismatched bank would feed
    features to the wrong forest columns.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format {version!r} (expected {FORMAT_VERSION})"
        )
    preference = AccuracyPreference(
        recall=payload["preference"]["recall"],
        precision=payload["preference"]["precision"],
    )
    if opprentice is None:
        opprentice = Opprentice(preference=preference)
    else:
        opprentice.preference = preference

    stored_names = payload["feature_names"]
    configs = opprentice.extractor.config_bank
    if configs is not None:
        current = [c.name for c in configs]
        if current != stored_names:
            raise ValueError(
                "detector bank mismatch: the model was trained with a "
                "different feature set"
            )
    else:
        # Default bank: defer validation until the first extraction by
        # storing the expected names for the error message below.
        pass

    imputer = Imputer()
    imputer.fill_values_ = np.asarray(
        payload["imputer_fill_values"], dtype=np.float64
    )
    forest = RandomForest.from_dict(payload["forest"])
    if forest.n_features_ != len(stored_names):
        raise ValueError("forest feature count does not match feature names")

    opprentice.classifier_ = forest
    opprentice.imputer_ = imputer
    opprentice.cthld_ = float(payload["cthld"])
    return opprentice


def save_checkpoint(
    streaming: StreamingDetector, path: Union[str, Path]
) -> None:
    """Persist a :class:`StreamingDetector`'s warm stream state (JSON).

    Together with :func:`save_model` this makes a deployed detector
    process fully restartable: load the model, load the checkpoint, and
    the next decision equals what the uninterrupted process would have
    produced — no history replay. Severity buffers legitimately contain
    NaN, so the document uses JSON's (widely supported, non-strict)
    ``NaN`` token.
    """
    payload = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "checkpoint": streaming.snapshot(),
    }
    Path(path).write_text(json.dumps(payload))


def load_checkpoint(
    path: Union[str, Path], opprentice: Opprentice
) -> StreamingDetector:
    """Rebuild a warm :class:`StreamingDetector` from a checkpoint saved
    by :func:`save_checkpoint`. ``opprentice`` must be fitted and carry
    the same detector bank the checkpoint was taken over (enforced via
    feature names)."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format {version!r} "
            f"(expected {CHECKPOINT_FORMAT_VERSION})"
        )
    return StreamingDetector(opprentice, checkpoint=payload["checkpoint"])


def save_service_checkpoint(
    service: MonitoringService,
    path: Union[str, Path],
    *,
    include_features: bool = True,
) -> None:
    """Persist a bootstrapped :class:`MonitoringService`'s full mutable
    state (JSON): warm streams, the open alert run, pending buffers,
    label windows, the labelled history and counters.

    The model itself is saved separately with :func:`save_model`; a
    ``(model.json, service.json)`` pair makes the service restartable
    with a future alert stream identical to the uninterrupted one. Set
    ``include_features=False`` to drop the cached training matrix (the
    O(history × configs) bulk) at the cost of one full refit on the
    first post-restore retraining round.
    """
    payload = {
        "format_version": SERVICE_CHECKPOINT_FORMAT_VERSION,
        "snapshot": service.snapshot(include_features=include_features),
    }
    Path(path).write_text(json.dumps(payload))


def load_service_checkpoint(
    path: Union[str, Path], service: MonitoringService
) -> MonitoringService:
    """Restore a checkpoint saved by :func:`save_service_checkpoint`
    into ``service``, whose Opprentice must already be fitted (via
    :func:`load_model`) over the same detector bank."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != SERVICE_CHECKPOINT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported service checkpoint format {version!r} "
            f"(expected {SERVICE_CHECKPOINT_FORMAT_VERSION})"
        )
    return service.restore_snapshot(payload["snapshot"])
