"""Training-set strategies of Table 2.

All test sets start from the 9th week and move one week per step; the
strategies differ in what earlier data they train on:

====  ====================  =====================
ID    Training set          Test set
====  ====================  =====================
I1    all historical data   1-week moving window
I4    all historical data   4-week moving window
R4    recent 8-week data    4-week moving window
F4    first 8-week data     4-week moving window
====  ====================  =====================

I1 is Opprentice's own *incremental retraining* fashion; I4/R4/F4 feed
the Fig 11 comparison. Splits are expressed as point-index ranges into
a series/feature matrix, so one feature extraction serves every split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..obs import get_provider
from ..timeseries import TimeSeries

#: Week (1-based, paper counting) where testing starts: "The test sets
#: all start from the 9th week".
FIRST_TEST_WEEK = 9
#: Weeks of initial training data before the first test week.
INITIAL_TRAIN_WEEKS = 8


@dataclass(frozen=True)
class TrainTestSplit:
    """Point-index ranges of one moving-window step.

    ``test_week`` is the 1-based paper-style index of the first test
    week in this step (9, 10, ...).
    """

    train_begin: int
    train_end: int
    test_begin: int
    test_end: int
    test_week: int

    def __post_init__(self) -> None:
        if not (
            0 <= self.train_begin <= self.train_end <= self.test_end
            and self.train_end <= self.test_begin < self.test_end
        ):
            raise ValueError(f"inconsistent split {self}")


@dataclass(frozen=True)
class TrainingStrategy:
    """One Table 2 row.

    ``history`` controls the training window: ``"all"`` (incremental
    retraining), ``"recent"`` (trailing ``history_weeks``), or
    ``"first"`` (the fixed initial ``history_weeks``).
    """

    id: str
    history: str
    test_weeks: int
    history_weeks: int = INITIAL_TRAIN_WEEKS

    def __post_init__(self) -> None:
        if self.history not in ("all", "recent", "first"):
            raise ValueError(f"unknown history mode {self.history!r}")
        if self.test_weeks < 1 or self.history_weeks < 1:
            raise ValueError("window sizes must be >= 1 week")

    def splits(self, series: TimeSeries) -> Iterator[TrainTestSplit]:
        """All moving-window splits that fit in ``series``."""
        ppw = series.points_per_week
        n = len(series)
        first_test_begin = (FIRST_TEST_WEEK - 1) * ppw
        splits_counter = get_provider().counter(
            "repro_training_splits_total",
            "Moving-window splits generated per strategy",
            strategy=self.id,
        )
        step = 0
        while True:
            test_begin = first_test_begin + step * ppw
            test_end = test_begin + self.test_weeks * ppw
            if test_end > n:
                return
            if self.history == "all":
                train_begin = 0
            elif self.history == "recent":
                train_begin = max(0, test_begin - self.history_weeks * ppw)
            else:  # "first"
                train_begin = 0
            if self.history == "first":
                train_end = min(self.history_weeks * ppw, test_begin)
            else:
                train_end = test_begin
            splits_counter.inc()
            yield TrainTestSplit(
                train_begin=train_begin,
                train_end=train_end,
                test_begin=test_begin,
                test_end=test_end,
                test_week=FIRST_TEST_WEEK + step,
            )
            step += 1

    def n_splits(self, series: TimeSeries) -> int:
        return sum(1 for _ in self.splits(series))


#: The four Table 2 strategies.
I1 = TrainingStrategy(id="I1", history="all", test_weeks=1)
I4 = TrainingStrategy(id="I4", history="all", test_weeks=4)
R4 = TrainingStrategy(id="R4", history="recent", test_weeks=4)
F4 = TrainingStrategy(id="F4", history="first", test_weeks=4)

STRATEGIES: List[TrainingStrategy] = [I1, I4, R4, F4]
