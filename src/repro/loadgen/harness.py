"""The soak harness: simulated weeks of multi-KPI load on one fleet.

The harness replays Table 1 synthetic profiles (PV, #SR, SRT — cycled
when more KPIs are requested than profiles exist) into a
:class:`~repro.fleet.FleetManager` on a *simulated* clock: one tick per
greatest-common-divisor of the KPI sampling intervals, each KPI
offering a point whenever its interval comes due, one fleet pump per
tick. On top of the steady stream it drives the two operational
stressors the SLO gate cares about:

* **retraining waves** — every ``retrain_every`` simulated seconds the
  ground-truth anomaly windows accumulated so far are submitted as
  operator labels and a staggered :meth:`FleetManager.retrain` wave
  runs;
* **quarantine churn** — the first ``fault_kpis`` KPIs are built on a
  :class:`FaultInjectingService` that raises on every Nth ingest, so
  the fleet's quarantine → backoff → recovery lifecycle keeps cycling
  under load (failures are never consecutive, so no KPI degrades).

At every ``checkpoint_every`` simulated seconds the harness records a
combined metrics snapshot (the global provider plus the per-KPI
registry rollup) tagged with the simulated timestamp. The resulting
soak document is exactly what ``repro-obs slo`` consumes for
multi-window burn-rate evaluation (see :mod:`repro.obs.slo`).

Two metrics exist only here:

* ``repro_loadgen_points_offered_total{kpi}`` — the denominator for
  drop-ratio SLOs (``repro_fleet_dropped_points_total`` is the
  numerator);
* ``repro_alert_delay_points{kpi}`` — detection delay of each opened
  alert in *points* past the ground-truth window begin (the paper's
  Fig. 12 delay axis), a point-valued histogram the alert-delay SLO
  consumes.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.service import AlertEvent, MonitoringService
from ..fleet.banks import small_bank
from ..fleet.manager import FleetManager
from ..ml import RandomForest
from ..obs import combine_snapshots, get_provider
from ..timeseries.windows import AnomalyWindow
from .scenario import ScenarioSpec, build_scenario, kpi_identifier

#: Point-valued buckets for ``repro_alert_delay_points`` — spanning the
#: duration filter's floor (alerts open after ``min_duration_points``)
#: up to a whole missed window.
DEFAULT_ALERT_DELAY_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0,
    64.0,
)

SECONDS_PER_WEEK = 7 * 24 * 3600


class InjectedFault(RuntimeError):
    """The deliberate failure a :class:`FaultInjectingService` raises."""


class FaultInjectingService(MonitoringService):
    """A monitoring service that fails every Nth ingest.

    The failures are periodic, never consecutive, so the owning fleet
    quarantines and recovers the KPI over and over without ever
    degrading it — sustained lifecycle churn, which is exactly what the
    soak wants on a few KPIs.
    """

    def __init__(self, *args, fault_every: int = 100, **kwargs):
        if fault_every < 2:
            raise ValueError("fault_every must be >= 2 (never consecutive)")
        super().__init__(*args, **kwargs)
        self.fault_every = fault_every
        self._ingest_calls = 0

    def ingest(self, value: float) -> List[AlertEvent]:
        self._ingest_calls += 1
        if self._ingest_calls % self.fault_every == 0:
            raise InjectedFault(
                f"injected fault on ingest #{self._ingest_calls}"
            )
        return super().ingest(value)


@dataclass(frozen=True)
class SoakConfig:
    """Everything one soak run needs, all in simulated seconds."""

    n_kpis: int = 8
    #: Simulated stream length after bootstrap, in weeks.
    weeks: float = 0.25
    #: Labelled history each KPI bootstraps on, in weeks.
    bootstrap_weeks: float = 1.0
    #: Profiles cycled across KPIs (Table 1 names). Ignored when
    #: ``dataset`` names a ``repro.corpus`` dataset instead.
    profiles: Tuple[str, ...] = ("PV", "#SR", "SRT")
    #: Draw KPIs from this registered corpus dataset (None: profiles).
    dataset: Optional[str] = None
    #: Simulated seconds between metrics checkpoints.
    checkpoint_every: float = 3600.0
    #: Simulated seconds between label-submission + retrain waves
    #: (0 disables retraining).
    retrain_every: float = 6.0 * 3600.0
    #: How many leading KPIs run on a :class:`FaultInjectingService`.
    fault_kpis: int = 2
    #: Those KPIs fail every Nth ingest.
    fault_every: int = 40
    #: Real points/second pacing; 0 streams as fast as possible.
    points_per_second: float = 0.0
    #: Wall-clock budget in real seconds; 0 is unbounded. On expiry the
    #: stream stops early (a final checkpoint is still recorded).
    max_wall_seconds: float = 0.0
    #: Forest size for the per-KPI classifiers (small: soak, not F1).
    trees: int = 10
    #: Attach the default anomaly-kind diagnoser to every service, so
    #: closed alerts carry a diagnosis (one-time seeded fitting cost).
    diagnose: bool = False
    min_duration_points: int = 2
    n_shards: int = 4
    queue_depth: int = 256
    batch_points: int = 64
    max_concurrent_retrains: int = 2
    seed_offset: int = 0

    def validate(self) -> None:
        if self.n_kpis < 1:
            raise ValueError("n_kpis must be >= 1")
        if self.weeks <= 0 or self.bootstrap_weeks <= 0:
            raise ValueError("weeks and bootstrap_weeks must be > 0")
        self.scenario_spec().validate()
        if self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be > 0")
        if self.fault_kpis < 0 or self.fault_kpis > self.n_kpis:
            raise ValueError("fault_kpis must be in [0, n_kpis]")

    def scenario_spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            n_kpis=self.n_kpis,
            weeks=self.weeks,
            bootstrap_weeks=self.bootstrap_weeks,
            profiles=self.profiles,
            seed_offset=self.seed_offset,
            dataset=self.dataset,
        )


@dataclass
class SoakResult:
    """What a soak run produced (``document`` is the on-disk form)."""

    points_offered: int
    alerts_opened: int
    quarantines: int
    sim_seconds: float
    wall_seconds: float
    completed: bool  # False when the wall budget expired early
    document: dict = field(repr=False, default_factory=dict)


#: Kept as the historical import site; the implementation moved to
#: :func:`repro.loadgen.scenario.kpi_identifier` when the serve plane
#: started sharing scenarios with the harness.
_kpi_identifier = kpi_identifier


class SoakHarness:
    """Build the fleet, stream the load, record the checkpoints.

    The harness records into whatever observability provider is active;
    enable one first (the CLI does) or every checkpoint snapshot — and
    therefore every SLO — will be empty.
    """

    def __init__(self, config: SoakConfig):
        config.validate()
        self.config = config
        self._windows: Dict[str, List[AnomalyWindow]] = {}
        self._window_begins: Dict[str, List[int]] = {}
        self._live: Dict[str, Sequence[float]] = {}
        self._intervals: Dict[str, int] = {}
        self._bootstrap_points: Dict[str, int] = {}
        self._fault_ids: List[str] = []
        self.fleet = self._build_fleet()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _service_for(self, kpi_id: str) -> MonitoringService:
        points_per_week = SECONDS_PER_WEEK // self._intervals[kpi_id]
        config = self.config
        diagnoser = None
        if config.diagnose:
            from ..diagnosis import default_diagnoser

            diagnoser = default_diagnoser()
        kwargs = dict(
            configs=small_bank(points_per_week),
            classifier_factory=lambda: RandomForest(
                n_estimators=config.trees, seed=0
            ),
            min_duration_points=config.min_duration_points,
            diagnoser=diagnoser,
        )
        if kpi_id in self._fault_ids:
            return FaultInjectingService(
                fault_every=config.fault_every, **kwargs
            )
        return MonitoringService(**kwargs)

    def _build_fleet(self) -> FleetManager:
        config = self.config
        fleet = FleetManager(
            n_shards=config.n_shards,
            queue_depth=config.queue_depth,
            batch_points=config.batch_points,
            max_concurrent_retrains=config.max_concurrent_retrains,
            service_factory=self._service_for,
        )
        for kpi in build_scenario(config.scenario_spec()):
            self._intervals[kpi.kpi_id] = kpi.interval
            self._bootstrap_points[kpi.kpi_id] = kpi.bootstrap_points
            if kpi.index < config.fault_kpis:
                self._fault_ids.append(kpi.kpi_id)
            windows = list(kpi.windows)
            self._windows[kpi.kpi_id] = windows
            self._window_begins[kpi.kpi_id] = [w.begin for w in windows]
            self._live[kpi.kpi_id] = kpi.live_values
            fleet.add_kpi(kpi.kpi_id, bootstrap=kpi.bootstrap)
        return fleet

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def _record_alert_delays(self, events: Sequence[AlertEvent]) -> int:
        """Observe per-KPI detection delay (in points) for every opened
        alert that falls inside a ground-truth anomaly window."""
        obs = get_provider()
        opened = 0
        for event in events:
            if event.kind != "opened" or event.kpi is None:
                continue
            opened += 1
            begins = self._window_begins.get(event.kpi)
            if not begins:
                continue
            slot = bisect_right(begins, event.begin_index) - 1
            if slot < 0:
                continue
            window = self._windows[event.kpi][slot]
            if event.begin_index >= window.end:
                continue  # false alarm between windows; no delay sample
            obs.histogram(
                "repro_alert_delay_points",
                "Detection delay of opened alerts, in points past the "
                "ground-truth window begin (Fig. 12 delay axis)",
                buckets=DEFAULT_ALERT_DELAY_BUCKETS,
                kpi=event.kpi,
            ).observe(float(event.begin_index - window.begin))
        return opened

    def _submit_ground_truth(self) -> None:
        """Feed each KPI the ground-truth windows its service has fully
        ingested — the operator labelling step before a retrain wave."""
        for kpi_id, windows in self._windows.items():
            horizon = self.fleet.service(kpi_id).history_length
            visible = [w for w in windows if w.end <= horizon]
            if visible:
                self.fleet.submit_labels(kpi_id, visible)

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(self) -> SoakResult:
        config = self.config
        obs = get_provider()
        sim_end = config.weeks * SECONDS_PER_WEEK
        tick = float(math.gcd(*self._intervals.values()))
        offered_counters = {
            kpi_id: obs.counter(
                "repro_loadgen_points_offered_total",
                "Points the load generator offered to the fleet",
                kpi=kpi_id,
            )
            for kpi_id in self.fleet.kpi_ids
        }
        cursors = {kpi_id: 0 for kpi_id in self.fleet.kpi_ids}
        checkpoints: List[dict] = []
        points_offered = 0
        alerts_opened = 0
        completed = True
        began = time.monotonic()
        next_checkpoint = config.checkpoint_every
        next_retrain = config.retrain_every or float("inf")

        def record_checkpoint(sim_now: float) -> None:
            checkpoints.append(
                {
                    "sim_seconds": sim_now,
                    "points_offered": points_offered,
                    "snapshot": combine_snapshots(
                        [obs.snapshot(), self.fleet.metrics_snapshot()]
                    ),
                }
            )

        with obs.span(
            "loadgen.soak", n_kpis=config.n_kpis, weeks=config.weeks
        ) as span:
            sim_now = 0.0
            while sim_now < sim_end:
                sim_now += tick
                for kpi_id, interval in self._intervals.items():
                    if sim_now % interval:
                        continue
                    cursor = cursors[kpi_id]
                    live = self._live[kpi_id]
                    if cursor >= len(live):
                        continue
                    self.fleet.offer(kpi_id, live[cursor])
                    offered_counters[kpi_id].inc()
                    cursors[kpi_id] = cursor + 1
                    points_offered += 1
                alerts_opened += self._record_alert_delays(
                    self.fleet.pump()
                )
                if config.retrain_every and sim_now >= next_retrain:
                    next_retrain += config.retrain_every
                    self._submit_ground_truth()
                    self.fleet.retrain()
                if sim_now >= next_checkpoint:
                    next_checkpoint += config.checkpoint_every
                    record_checkpoint(sim_now)
                if config.points_per_second > 0:
                    ahead = (
                        points_offered / config.points_per_second
                        - (time.monotonic() - began)
                    )
                    if ahead > 0:
                        time.sleep(ahead)
                if (
                    config.max_wall_seconds
                    and time.monotonic() - began > config.max_wall_seconds
                ):
                    completed = False
                    break
            # Flush whatever the queues still hold (quarantine backoff
            # may have starved some KPIs) and close with a checkpoint.
            alerts_opened += self._record_alert_delays(
                self.fleet.drain_all()
            )
            if not checkpoints or checkpoints[-1]["sim_seconds"] < sim_now:
                record_checkpoint(sim_now)
            span.set("points_offered", points_offered)
            span.set("completed", completed)

        wall = time.monotonic() - began
        status = self.fleet.status()
        document = {
            "version": 1,
            "config": {
                "n_kpis": config.n_kpis,
                "weeks": config.weeks,
                "bootstrap_weeks": config.bootstrap_weeks,
                "profiles": list(config.profiles),
                "dataset": config.dataset,
                "checkpoint_every": config.checkpoint_every,
                "retrain_every": config.retrain_every,
                "fault_kpis": config.fault_kpis,
                "fault_every": config.fault_every,
                "seed_offset": config.seed_offset,
            },
            "completed": completed,
            "wall_seconds": wall,
            "points_offered": points_offered,
            "alerts_opened": alerts_opened,
            "fleet": status.as_dict(),
            "checkpoints": checkpoints,
        }
        return SoakResult(
            points_offered=points_offered,
            alerts_opened=alerts_opened,
            quarantines=status.total_quarantines,
            sim_seconds=checkpoints[-1]["sim_seconds"],
            wall_seconds=wall,
            completed=completed,
            document=document,
        )


__all__ = [
    "DEFAULT_ALERT_DELAY_BUCKETS",
    "SECONDS_PER_WEEK",
    "InjectedFault",
    "FaultInjectingService",
    "SoakConfig",
    "SoakResult",
    "SoakHarness",
]
