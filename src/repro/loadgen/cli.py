"""``repro-loadgen`` — soak the fleet and write an SLO-ready document.

Usage::

    repro-loadgen --kpis 8 --weeks 0.25 --out soak.json
    repro-loadgen --target http://127.0.0.1:8123 --kpis 8 --out replay.json
    repro-obs slo --targets slo/targets.toml --snapshot soak.json

Without ``--target`` the CLI streams the configured simulated span
through an in-process :class:`~repro.loadgen.SoakHarness`. With
``--target`` it becomes the networked replay client: the *same*
deterministic scenario is regenerated locally and streamed at a
running ``repro-serve`` plane over HTTP (one NDJSON batch per
simulated tick), with optional mid-stream fault drills
(``--kill-shard`` SIGKILLs a shard process and asserts the supervisor
recovered it; ``--restart-shard`` exercises the graceful path).

Either way the CLI enables observability unconditionally (a soak
without metrics would gate on nothing), prints a one-line summary, and
writes a checkpointed document ``repro-obs slo`` evaluates — the same
``slo/targets.toml`` gate judges both flavours. Exit codes: 0 on a
full clean run, 3 when the wall-clock budget cut it short
(``--max-wall-seconds``), 4 when a fault drill did not recover, 2 on
bad arguments or an unreachable/mismatched target.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..obs import enable
from .client import ReplayClient, ReplayConfig, TargetError
from .harness import SoakConfig, SoakHarness
from .scenario import ScenarioSpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description=(
            "Replay Table 1 synthetic profiles into a fleet over "
            "simulated weeks, with retraining waves and quarantine "
            "churn, and write kpi-tagged metrics checkpoints."
        ),
    )
    parser.add_argument(
        "--kpis", type=int, default=8, help="KPIs to manage (default 8)"
    )
    parser.add_argument(
        "--weeks", type=float, default=0.25,
        help="simulated stream length after bootstrap (default 0.25)",
    )
    parser.add_argument(
        "--bootstrap-weeks", type=float, default=1.0,
        help="labelled bootstrap history per KPI (default 1.0)",
    )
    parser.add_argument(
        "--profiles", nargs="+", default=["PV", "#SR", "SRT"],
        help="Table 1 profiles to cycle across KPIs",
    )
    parser.add_argument(
        "--dataset", default=None,
        help="draw KPIs from this repro-corpus dataset instead of "
             "the Table 1 profiles (see `repro-corpus list`)",
    )
    parser.add_argument(
        "--checkpoint-every", type=float, default=3600.0,
        help="simulated seconds between metrics checkpoints",
    )
    parser.add_argument(
        "--retrain-every", type=float, default=6 * 3600.0,
        help="simulated seconds between retrain waves (0 disables)",
    )
    parser.add_argument(
        "--fault-kpis", type=int, default=2,
        help="leading KPIs that fail every Nth ingest (default 2)",
    )
    parser.add_argument(
        "--fault-every", type=int, default=40,
        help="inject a fault every Nth ingest on fault KPIs",
    )
    parser.add_argument(
        "--points-per-second", type=float, default=0.0,
        help="real-time pacing; 0 streams as fast as possible",
    )
    parser.add_argument(
        "--max-wall-seconds", type=float, default=0.0,
        help="wall-clock budget; 0 is unbounded",
    )
    parser.add_argument(
        "--trees", type=int, default=10,
        help="random-forest size per KPI (default 10)",
    )
    parser.add_argument(
        "--diagnose", action="store_true",
        help="in-process soak: attach the anomaly-kind diagnoser so "
             "closed alerts carry a diagnosis",
    )
    parser.add_argument(
        "--seed-offset", type=int, default=0,
        help="shift every KPI's generation seed (replica soaks)",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the checkpointed soak document (JSON) here",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the run summary as JSON instead of text",
    )
    replay = parser.add_argument_group(
        "networked replay (repro-serve target)"
    )
    replay.add_argument(
        "--target", default=None,
        help="replay the scenario at this repro-serve base URL "
             "(e.g. http://127.0.0.1:8123) instead of in-process",
    )
    replay.add_argument(
        "--kill-shard", type=int, default=-1,
        help="replay: SIGKILL this shard process mid-stream and "
             "assert the supervisor recovers it",
    )
    replay.add_argument(
        "--kill-after-batches", type=int, default=0,
        help="replay: inject the kill after this many batch posts",
    )
    replay.add_argument(
        "--restart-shard", type=int, default=-1,
        help="replay: gracefully restart this shard mid-stream "
             "(POST /shards/<i>/restart) instead of killing it",
    )
    replay.add_argument(
        "--restart-after-batches", type=int, default=0,
        help="replay: inject the graceful restart after this many "
             "batch posts",
    )
    return parser


def _main_replay(args) -> int:
    try:
        config = ReplayConfig(
            target=args.target,
            scenario=ScenarioSpec(
                n_kpis=args.kpis,
                weeks=args.weeks,
                bootstrap_weeks=args.bootstrap_weeks,
                profiles=tuple(args.profiles),
                seed_offset=args.seed_offset,
                dataset=args.dataset,
            ),
            checkpoint_every=args.checkpoint_every,
            retrain_every=args.retrain_every,
            points_per_second=args.points_per_second,
            max_wall_seconds=args.max_wall_seconds,
            kill_shard=args.kill_shard,
            kill_after_batches=args.kill_after_batches,
            restart_shard=args.restart_shard,
            restart_after_batches=args.restart_after_batches,
        )
        enable()
        result = ReplayClient(config).run()
    except (ValueError, TargetError) as error:
        print(f"repro-loadgen: {error}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result.document, handle, indent=None, sort_keys=True)
            handle.write("\n")
    if args.json:
        summary = dict(result.document)
        for bulky in ("checkpoints", "alerts", "fleet"):
            del summary[bulky]
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        drill = ""
        if result.recovered is not None:
            drill = (
                f", fault drill {'recovered' if result.recovered else 'NOT RECOVERED'}"
            )
        print(
            f"replay: {result.points_offered} points "
            f"({result.accepted} accepted, {result.rejected} rejected) "
            f"over {result.sim_seconds / 3600.0:.1f} simulated hours in "
            f"{result.wall_seconds:.1f}s wall "
            f"({len(result.document['checkpoints'])} checkpoints, "
            f"{result.alerts_opened} alerts{drill})"
        )
        if args.out:
            print(f"replay document written to {args.out}")
    if result.recovered is False:
        print(
            "repro-loadgen: fault drill did not recover the shard",
            file=sys.stderr,
        )
        return 4
    if not result.completed:
        print(
            "repro-loadgen: wall budget expired before the simulated "
            "span finished",
            file=sys.stderr,
        )
        return 3
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.target:
        return _main_replay(args)
    try:
        config = SoakConfig(
            n_kpis=args.kpis,
            weeks=args.weeks,
            bootstrap_weeks=args.bootstrap_weeks,
            profiles=tuple(args.profiles),
            dataset=args.dataset,
            checkpoint_every=args.checkpoint_every,
            retrain_every=args.retrain_every,
            fault_kpis=args.fault_kpis,
            fault_every=args.fault_every,
            points_per_second=args.points_per_second,
            max_wall_seconds=args.max_wall_seconds,
            trees=args.trees,
            diagnose=args.diagnose,
            seed_offset=args.seed_offset,
        )
        enable()
        harness = SoakHarness(config)
        result = harness.run()
    except ValueError as error:
        print(f"repro-loadgen: {error}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result.document, handle, indent=None, sort_keys=True)
            handle.write("\n")
    if args.json:
        summary = dict(result.document)
        del summary["checkpoints"]  # the bulky part lives in --out
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(harness.fleet.status().render())
        print(
            f"soak: {result.points_offered} points over "
            f"{result.sim_seconds / 3600.0:.1f} simulated hours in "
            f"{result.wall_seconds:.1f}s wall "
            f"({len(result.document['checkpoints'])} checkpoints, "
            f"{result.alerts_opened} alerts, "
            f"{result.quarantines} quarantines)"
        )
        if args.out:
            print(f"soak document written to {args.out}")
    if not result.completed:
        print(
            "repro-loadgen: wall budget expired before the simulated "
            "span finished",
            file=sys.stderr,
        )
        return 3
    return 0


__all__ = ["build_parser", "main"]
