"""``repro-loadgen`` — soak the fleet and write an SLO-ready document.

Usage::

    repro-loadgen --kpis 8 --weeks 0.25 --out soak.json
    repro-obs slo --targets slo/targets.toml --snapshot soak.json

The CLI enables observability unconditionally (a soak without metrics
would gate on nothing), streams the configured simulated span through a
:class:`~repro.loadgen.SoakHarness`, prints the fleet status table and
a one-line summary, and writes the checkpointed soak document that
``repro-obs slo`` evaluates. Exit code 0 when the soak streamed the
whole simulated span, 3 when the wall-clock budget cut it short
(``--max-wall-seconds``), 2 on bad arguments.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..obs import enable
from .harness import SoakConfig, SoakHarness


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description=(
            "Replay Table 1 synthetic profiles into a fleet over "
            "simulated weeks, with retraining waves and quarantine "
            "churn, and write kpi-tagged metrics checkpoints."
        ),
    )
    parser.add_argument(
        "--kpis", type=int, default=8, help="KPIs to manage (default 8)"
    )
    parser.add_argument(
        "--weeks", type=float, default=0.25,
        help="simulated stream length after bootstrap (default 0.25)",
    )
    parser.add_argument(
        "--bootstrap-weeks", type=float, default=1.0,
        help="labelled bootstrap history per KPI (default 1.0)",
    )
    parser.add_argument(
        "--profiles", nargs="+", default=["PV", "#SR", "SRT"],
        help="Table 1 profiles to cycle across KPIs",
    )
    parser.add_argument(
        "--checkpoint-every", type=float, default=3600.0,
        help="simulated seconds between metrics checkpoints",
    )
    parser.add_argument(
        "--retrain-every", type=float, default=6 * 3600.0,
        help="simulated seconds between retrain waves (0 disables)",
    )
    parser.add_argument(
        "--fault-kpis", type=int, default=2,
        help="leading KPIs that fail every Nth ingest (default 2)",
    )
    parser.add_argument(
        "--fault-every", type=int, default=40,
        help="inject a fault every Nth ingest on fault KPIs",
    )
    parser.add_argument(
        "--points-per-second", type=float, default=0.0,
        help="real-time pacing; 0 streams as fast as possible",
    )
    parser.add_argument(
        "--max-wall-seconds", type=float, default=0.0,
        help="wall-clock budget; 0 is unbounded",
    )
    parser.add_argument(
        "--trees", type=int, default=10,
        help="random-forest size per KPI (default 10)",
    )
    parser.add_argument(
        "--seed-offset", type=int, default=0,
        help="shift every KPI's generation seed (replica soaks)",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the checkpointed soak document (JSON) here",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the run summary as JSON instead of text",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = SoakConfig(
            n_kpis=args.kpis,
            weeks=args.weeks,
            bootstrap_weeks=args.bootstrap_weeks,
            profiles=tuple(args.profiles),
            checkpoint_every=args.checkpoint_every,
            retrain_every=args.retrain_every,
            fault_kpis=args.fault_kpis,
            fault_every=args.fault_every,
            points_per_second=args.points_per_second,
            max_wall_seconds=args.max_wall_seconds,
            trees=args.trees,
            seed_offset=args.seed_offset,
        )
        enable()
        harness = SoakHarness(config)
        result = harness.run()
    except ValueError as error:
        print(f"repro-loadgen: {error}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result.document, handle, indent=None, sort_keys=True)
            handle.write("\n")
    if args.json:
        summary = dict(result.document)
        del summary["checkpoints"]  # the bulky part lives in --out
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(harness.fleet.status().render())
        print(
            f"soak: {result.points_offered} points over "
            f"{result.sim_seconds / 3600.0:.1f} simulated hours in "
            f"{result.wall_seconds:.1f}s wall "
            f"({len(result.document['checkpoints'])} checkpoints, "
            f"{result.alerts_opened} alerts, "
            f"{result.quarantines} quarantines)"
        )
        if args.out:
            print(f"soak document written to {args.out}")
    if not result.completed:
        print(
            "repro-loadgen: wall budget expired before the simulated "
            "span finished",
            file=sys.stderr,
        )
        return 3
    return 0


__all__ = ["build_parser", "main"]
