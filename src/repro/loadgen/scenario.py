"""Deterministic multi-KPI scenarios shared across load surfaces.

One scenario description, three consumers:

* the in-process :class:`~repro.loadgen.harness.SoakHarness`;
* the ``repro-serve`` scenario mode, where each forked shard process
  builds only its consistent-hash slice of the same scenario;
* the ``repro-loadgen --target`` replay client, which regenerates the
  *same* series client-side and streams the live tail over HTTP.

Everything is a pure function of the spec: ``make_kpi`` seeds from
``seed_offset + index``, so a server and a client (or two servers in a
kill-recovery A/B run) that share a spec generate bit-identical series,
ground-truth windows and KPI ids without exchanging any data. That
equality is what the networked SLO gate's alert-divergence checks
stand on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..data.datasets import PROFILES, make_kpi
from ..timeseries import TimeSeries
from ..timeseries.windows import AnomalyWindow

SECONDS_PER_WEEK = 7 * 24 * 3600


def kpi_identifier(profile_name: str, index: int) -> str:
    """A fleet-legal KPI id (``#SR`` itself is not: ids must start
    alphanumeric), keeping the profile recognisable: ``SR-003``."""
    clean = "".join(
        ch for ch in profile_name if ch.isalnum() or ch in "._-"
    ) or "KPI"
    return f"{clean}-{index:03d}"


@dataclass(frozen=True)
class ScenarioSpec:
    """The full identity of a synthetic multi-KPI scenario.

    KPIs come from one of two sources: the Table 1 ``profiles`` tuple
    (the default), or — when ``dataset`` names a registered
    ``repro.corpus`` dataset — that dataset's KPIs, cycled the same
    way. Either source is a pure function of the spec, so the
    bit-identity guarantee carries over unchanged.
    """

    n_kpis: int = 8
    #: Simulated stream length after bootstrap, in weeks.
    weeks: float = 0.25
    #: Labelled history each KPI bootstraps on, in weeks.
    bootstrap_weeks: float = 1.0
    #: Profiles cycled across KPIs (Table 1 names). Ignored when
    #: ``dataset`` is set.
    profiles: Tuple[str, ...] = ("PV", "#SR", "SRT")
    seed_offset: int = 0
    #: A ``repro.corpus`` dataset name to draw KPIs from instead of
    #: the Table 1 profiles.
    dataset: Optional[str] = None

    def _corpus(self):
        from ..corpus import get_dataset

        return get_dataset(self.dataset)

    def validate(self) -> None:
        if self.n_kpis < 1:
            raise ValueError("n_kpis must be >= 1")
        if self.weeks <= 0 or self.bootstrap_weeks <= 0:
            raise ValueError("weeks and bootstrap_weeks must be > 0")
        if self.dataset is not None:
            self._corpus()  # CorpusError (a ValueError) on unknown
            return
        if not self.profiles:
            raise ValueError("profiles must not be empty")
        unknown = [p for p in self.profiles if p not in PROFILES]
        if unknown:
            raise ValueError(
                f"unknown profile(s) {unknown}; Table 1 has "
                f"{sorted(PROFILES)}"
            )

    def source_name(self, index: int) -> str:
        """The profile or dataset-KPI name behind scenario slot
        ``index`` (cycled when ``n_kpis`` exceeds the source count)."""
        if self.dataset is not None:
            names = self._corpus().kpi_names()
            return names[index % len(names)]
        return self.profiles[index % len(self.profiles)]

    def profile_of(self, index: int):
        if self.dataset is not None:
            raise ValueError(
                f"scenario draws from dataset {self.dataset!r}, "
                "not Table 1 profiles"
            )
        return PROFILES[self.profiles[index % len(self.profiles)]]

    def kpi_ids(self) -> List[str]:
        """Every KPI id, *without* generating any series — cheap enough
        for routing tables over 10k-KPI scenarios."""
        return [
            kpi_identifier(self.source_name(index), index)
            for index in range(self.n_kpis)
        ]

    def intervals(self) -> dict:
        """``{kpi_id: sampling interval seconds}`` without generating
        any series (profiles and datasets declare their intervals)."""
        if self.dataset is not None:
            corpus = self._corpus()
            return {
                kpi_identifier(self.source_name(index), index):
                    corpus.kpi_interval(self.source_name(index))
                for index in range(self.n_kpis)
            }
        return {
            kpi_identifier(self.profile_of(index).name, index):
                self.profile_of(index).interval
            for index in range(self.n_kpis)
        }

    def as_dict(self) -> dict:
        return {
            "n_kpis": self.n_kpis,
            "weeks": self.weeks,
            "bootstrap_weeks": self.bootstrap_weeks,
            "profiles": list(self.profiles),
            "seed_offset": self.seed_offset,
            "dataset": self.dataset,
        }


@dataclass(frozen=True)
class ScenarioKpi:
    """One generated KPI: labelled series plus the bootstrap split."""

    kpi_id: str
    profile: str
    index: int
    interval: int
    bootstrap_points: int
    series: TimeSeries
    windows: Tuple[AnomalyWindow, ...]

    @property
    def bootstrap(self) -> TimeSeries:
        return self.series.slice(0, self.bootstrap_points)

    @property
    def live_values(self) -> List[float]:
        return [
            float(value)
            for value in self.series.slice(
                self.bootstrap_points, len(self.series)
            ).values
        ]


def build_scenario_kpi(spec: ScenarioSpec, index: int) -> ScenarioKpi:
    """Generate KPI ``index`` of the scenario (deterministic)."""
    source = spec.source_name(index)
    kpi_id = kpi_identifier(source, index)
    if spec.dataset is not None:
        generated = spec._corpus().load(
            source,
            weeks=spec.bootstrap_weeks + spec.weeks,
            seed_offset=spec.seed_offset + index,
        )
    else:
        generated = make_kpi(
            spec.profile_of(index),
            seed_offset=spec.seed_offset + index,
            weeks=spec.bootstrap_weeks + spec.weeks,
        )
    series = generated.series
    points_per_week = SECONDS_PER_WEEK // series.interval
    bootstrap_points = int(spec.bootstrap_weeks * points_per_week)
    if len(series) <= bootstrap_points:
        raise ValueError(
            f"{kpi_id}: {len(series)} points cannot cover the "
            f"{bootstrap_points}-point bootstrap"
        )
    return ScenarioKpi(
        kpi_id=kpi_id,
        profile=source,
        index=index,
        interval=series.interval,
        bootstrap_points=bootstrap_points,
        series=series,
        windows=tuple(sorted(generated.windows)),
    )


def build_scenario(
    spec: ScenarioSpec, kpi_ids: Optional[Sequence[str]] = None
) -> List[ScenarioKpi]:
    """Generate the scenario — or only the named subset of it.

    The subset path is what shard processes use: every shard knows the
    full id list (cheap) but generates and bootstraps only its own
    slice, so an N-shard startup parallelizes the expensive part.
    """
    spec.validate()
    if kpi_ids is None:
        return [
            build_scenario_kpi(spec, index) for index in range(spec.n_kpis)
        ]
    by_id = {
        kpi_identifier(spec.source_name(index), index): index
        for index in range(spec.n_kpis)
    }
    missing = sorted(set(kpi_ids) - set(by_id))
    if missing:
        raise ValueError(f"not in this scenario: {missing}")
    return [build_scenario_kpi(spec, by_id[kpi_id]) for kpi_id in kpi_ids]


__all__ = [
    "SECONDS_PER_WEEK",
    "ScenarioKpi",
    "ScenarioSpec",
    "build_scenario",
    "build_scenario_kpi",
    "kpi_identifier",
]
