"""Sustained-load generation for the Opprentice fleet.

§5.8's runtime numbers are one-shot measurements; the ROADMAP's
north-star asks whether they *hold* under sustained multi-KPI load —
retraining waves, quarantine churn, backpressure drops — over simulated
weeks. This package is the harness that finds out:

* :class:`SoakHarness` — replays Table 1 synthetic profiles into a
  :class:`~repro.fleet.FleetManager` on a simulated clock, drives
  staggered retraining waves and (optionally) injected faults, and
  records kpi-tagged metrics snapshots at simulated-time checkpoints;
* :class:`FaultInjectingService` — a :class:`~repro.core.
  MonitoringService` that fails every Nth ingest, exercising the
  fleet's quarantine/recovery lifecycle under load;
* :class:`ScenarioSpec` / :func:`build_scenario` — the deterministic
  scenario description the harness, the ``repro-serve`` shards and the
  networked replay all regenerate bit-identically from seeds;
* :class:`ReplayClient` — the networked twin: streams the same
  scenario at a ``repro-serve`` plane over HTTP (``repro-loadgen
  --target``), records the same SLO inputs client-side, and can drill
  shard kills / graceful restarts mid-stream;
* the ``repro-loadgen`` CLI (``python -m repro.loadgen``) — the
  entry point the CI ``slo-gate`` and ``networked-slo-gate`` jobs run;
  both document flavours feed ``repro-obs slo`` (see
  :mod:`repro.obs.slo`).
"""

from .client import (
    HttpTarget,
    ReplayClient,
    ReplayConfig,
    ReplayResult,
    TargetError,
)
from .harness import (
    DEFAULT_ALERT_DELAY_BUCKETS,
    FaultInjectingService,
    InjectedFault,
    SoakConfig,
    SoakHarness,
    SoakResult,
)
from .scenario import (
    ScenarioKpi,
    ScenarioSpec,
    build_scenario,
    build_scenario_kpi,
    kpi_identifier,
)

__all__ = [
    "DEFAULT_ALERT_DELAY_BUCKETS",
    "FaultInjectingService",
    "InjectedFault",
    "SoakConfig",
    "SoakHarness",
    "SoakResult",
    "ScenarioKpi",
    "ScenarioSpec",
    "build_scenario",
    "build_scenario_kpi",
    "kpi_identifier",
    "HttpTarget",
    "ReplayClient",
    "ReplayConfig",
    "ReplayResult",
    "TargetError",
]
