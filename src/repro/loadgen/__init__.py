"""Sustained-load generation for the Opprentice fleet.

§5.8's runtime numbers are one-shot measurements; the ROADMAP's
north-star asks whether they *hold* under sustained multi-KPI load —
retraining waves, quarantine churn, backpressure drops — over simulated
weeks. This package is the harness that finds out:

* :class:`SoakHarness` — replays Table 1 synthetic profiles into a
  :class:`~repro.fleet.FleetManager` on a simulated clock, drives
  staggered retraining waves and (optionally) injected faults, and
  records kpi-tagged metrics snapshots at simulated-time checkpoints;
* :class:`FaultInjectingService` — a :class:`~repro.core.
  MonitoringService` that fails every Nth ingest, exercising the
  fleet's quarantine/recovery lifecycle under load;
* the ``repro-loadgen`` CLI (``python -m repro.loadgen``) — the
  entry point the CI ``slo-gate`` job runs; its soak document feeds
  ``repro-obs slo`` (see :mod:`repro.obs.slo`).
"""

from .harness import (
    DEFAULT_ALERT_DELAY_BUCKETS,
    FaultInjectingService,
    InjectedFault,
    SoakConfig,
    SoakHarness,
    SoakResult,
)

__all__ = [
    "DEFAULT_ALERT_DELAY_BUCKETS",
    "FaultInjectingService",
    "InjectedFault",
    "SoakConfig",
    "SoakHarness",
    "SoakResult",
]
