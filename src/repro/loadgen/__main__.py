"""``python -m repro.loadgen`` — the :mod:`repro.loadgen.cli` entry."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
