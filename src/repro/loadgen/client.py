"""``repro-loadgen --target``: replay a scenario over HTTP.

The networked twin of :class:`~repro.loadgen.harness.SoakHarness`: the
same deterministic scenario (see :mod:`repro.loadgen.scenario`) is
regenerated *client-side* and its live tail streamed to a running
``repro-serve`` plane — one newline-delimited ``POST /ingest/batch``
per simulated tick (the gcd of the KPI intervals), so the byte stream
a given server sees is a pure function of the scenario spec. Two
replays of the same spec against two fresh servers send identical
request sequences; that is what makes kill-recovery A/B comparisons
(``tools/soak_alerts_diff.py``) meaningful.

Client-side the replay records the same SLO inputs the in-process soak
does — ``repro_loadgen_points_offered_total{kpi}`` and
``repro_alert_delay_points{kpi}`` (delays attributed from the alert
events each batch response carries, against the client's own
ground-truth windows) — and at every checkpoint merges its snapshot
with the server's ``GET /metrics`` rollup (fleet + serve metrics, all
shards). The resulting document is checkpoint-compatible with the soak
document, so the *same* ``slo/targets.toml`` burn-rate gate judges a
real networked run.

Fault drills: ``kill_shard``/``kill_after_batches`` SIGKILLs a shard
process mid-stream (pid discovered via ``GET /status``) and the replay
then asserts the supervisor re-forked it;
``restart_shard``/``restart_after_batches`` exercises the graceful
``POST /shards/<i>/restart`` path instead. Outcomes land in the
document (``fault``, ``recovered``) for the CI gate.
"""

from __future__ import annotations

import http.client
import json
import math
import os
import signal
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from ..obs import combine_snapshots, get_provider
from .harness import DEFAULT_ALERT_DELAY_BUCKETS
from .scenario import ScenarioSpec, build_scenario

SECONDS_PER_WEEK = 7 * 24 * 3600


class TargetError(RuntimeError):
    """The serve plane answered something the replay cannot proceed on."""


class HttpTarget:
    """A keep-alive JSON client for one ``repro-serve`` base URL."""

    def __init__(self, target: str, timeout: float = 120.0):
        parsed = urlsplit(target)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(
                f"--target must look like http://host:port, got {target!r}"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, dict]:
        """One request; reconnects and retries once on a dropped
        keep-alive connection (the server stays up across shard kills,
        but the idle socket may still have died)."""
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body)
                response = conn.getresponse()
                payload = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        try:
            parsed = json.loads(payload.decode("utf-8")) if payload else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {}
        return response.status, parsed


@dataclass(frozen=True)
class ReplayConfig:
    """A networked replay run: scenario + cadences + fault drill."""

    target: str
    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    #: Simulated seconds between metrics checkpoints.
    checkpoint_every: float = 3600.0
    #: Simulated seconds between label-submission + retrain waves
    #: (0 disables retraining).
    retrain_every: float = 6.0 * 3600.0
    #: Real points/second pacing; 0 streams as fast as possible.
    points_per_second: float = 0.0
    #: Wall-clock budget in real seconds; 0 is unbounded.
    max_wall_seconds: float = 0.0
    #: SIGKILL this shard process after ``kill_after_batches`` batch
    #: posts (-1 disables).
    kill_shard: int = -1
    kill_after_batches: int = 0
    #: Gracefully restart this shard instead (-1 disables).
    restart_shard: int = -1
    restart_after_batches: int = 0

    def validate(self) -> None:
        self.scenario.validate()
        if self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be > 0")
        if self.kill_shard >= 0 and self.kill_after_batches < 1:
            raise ValueError("kill_after_batches must be >= 1")
        if self.restart_shard >= 0 and self.restart_after_batches < 1:
            raise ValueError("restart_after_batches must be >= 1")


@dataclass
class ReplayResult:
    """What a replay produced (``document`` is the on-disk form)."""

    points_offered: int
    accepted: int
    rejected: int
    alerts_opened: int
    sim_seconds: float
    wall_seconds: float
    completed: bool
    #: None when no fault drill ran; else whether the shard came back.
    recovered: Optional[bool]
    document: dict = field(repr=False, default_factory=dict)


class ReplayClient:
    """Stream one scenario at a serve plane and record the document."""

    def __init__(self, config: ReplayConfig):
        config.validate()
        self.config = config
        self.target = HttpTarget(config.target)
        kpis = build_scenario(config.scenario)
        self._intervals = {kpi.kpi_id: kpi.interval for kpi in kpis}
        self._live = {kpi.kpi_id: kpi.live_values for kpi in kpis}
        self._windows = {kpi.kpi_id: list(kpi.windows) for kpi in kpis}
        self._window_begins = {
            kpi.kpi_id: [w.begin for w in kpi.windows] for kpi in kpis
        }
        self._alerts: Dict[str, List[dict]] = {
            kpi.kpi_id: [] for kpi in kpis
        }

    # ------------------------------------------------------------------
    # Server conversations
    # ------------------------------------------------------------------
    def _preflight(self) -> dict:
        """The server must be alive and serving exactly our scenario's
        KPIs — a spec mismatch would stream points into the void."""
        status, _ = self.target.request("GET", "/healthz")
        if status != 200:
            raise TargetError(
                f"{self.config.target}/healthz answered {status}"
            )
        status, document = self.target.request("GET", "/status")
        if status != 200:
            raise TargetError(
                f"{self.config.target}/status answered {status}"
            )
        served = {
            kpi["kpi_id"] for kpi in document.get("fleet", {}).get("kpis", [])
        }
        wanted = set(self._intervals)
        missing = sorted(wanted - served)
        if missing:
            raise TargetError(
                f"server is not serving {len(missing)} scenario KPIs "
                f"(e.g. {missing[:3]}); was it started with the same "
                f"--kpis/--profiles/--seed-offset?"
            )
        return document

    def _post_batch(self, points: List[Tuple[str, float]]) -> dict:
        body = "\n".join(
            json.dumps({"kpi": kpi_id, "value": value},
                       separators=(",", ":"))
            for kpi_id, value in points
        ).encode("utf-8")
        status, reply = self.target.request("POST", "/ingest/batch", body)
        if status not in (200, 429):
            raise TargetError(
                f"/ingest/batch answered {status}: "
                f"{reply.get('error', reply)}"
            )
        return reply

    def _retrain_wave(self) -> None:
        """Mirror the soak's operator loop: submit every ground-truth
        window (the server clips to what each service has ingested),
        then run a staggered retrain wave across all shards."""
        for kpi_id, windows in self._windows.items():
            if not windows:
                continue
            body = json.dumps(
                {
                    "kpi": kpi_id,
                    "windows": [[w.begin, w.end] for w in windows],
                }
            ).encode("utf-8")
            status, reply = self.target.request("POST", "/labels", body)
            if status != 200:
                raise TargetError(
                    f"/labels({kpi_id}) answered {status}: "
                    f"{reply.get('error', reply)}"
                )
        status, reply = self.target.request("POST", "/retrain", b"{}")
        if status != 200:
            raise TargetError(
                f"/retrain answered {status}: {reply.get('error', reply)}"
            )

    def _server_snapshot(self) -> dict:
        status, snapshot = self.target.request("GET", "/metrics")
        if status != 200:
            raise TargetError(f"/metrics answered {status}")
        return snapshot

    def _shard_pid(self, index: int) -> int:
        status, document = self.target.request("GET", "/status")
        if status != 200:
            raise TargetError(f"/status answered {status}")
        for shard in document.get("shards", []):
            if shard.get("shard") == index:
                return int(shard["pid"])
        raise TargetError(f"no shard {index} in /status")

    def _inject_fault(self) -> dict:
        config = self.config
        if config.kill_shard >= 0:
            pid = self._shard_pid(config.kill_shard)
            os.kill(pid, signal.SIGKILL)
            return {
                "type": "kill", "shard": config.kill_shard, "pid": pid,
                "after_batches": config.kill_after_batches,
            }
        status, reply = self.target.request(
            "POST", f"/shards/{config.restart_shard}/restart", b""
        )
        if status != 200:
            raise TargetError(
                f"/shards/{config.restart_shard}/restart answered "
                f"{status}: {reply.get('error', reply)}"
            )
        return {
            "type": "graceful", "shard": config.restart_shard,
            "pid": reply.get("pid"),
            "after_batches": config.restart_after_batches,
        }

    def _check_recovery(self, fault: dict) -> bool:
        """The drilled shard must be alive again, re-forked (crash) or
        replaced (graceful), and the plane still serving its KPIs."""
        status, document = self.target.request("GET", "/status")
        if status != 200:
            return False
        for shard in document.get("shards", []):
            if shard.get("shard") == fault["shard"]:
                restarted = (
                    shard.get("restarts", 0) >= 1
                    if fault["type"] == "kill"
                    else shard.get("pid") != fault.get("pid")
                )
                return bool(shard.get("alive")) and restarted
        return False

    # ------------------------------------------------------------------
    # Attribution (dict-event twin of SoakHarness._record_alert_delays)
    # ------------------------------------------------------------------
    def _record_alert_delays(self, events: List[dict]) -> int:
        obs = get_provider()
        opened = 0
        for event in events:
            kpi_id = event.get("kpi")
            if event.get("kind") != "opened" or kpi_id is None:
                continue
            opened += 1
            self._alerts.setdefault(kpi_id, []).append(event)
            begins = self._window_begins.get(kpi_id)
            if not begins:
                continue
            begin_index = int(event["begin_index"])
            slot = bisect_right(begins, begin_index) - 1
            if slot < 0:
                continue
            window = self._windows[kpi_id][slot]
            if begin_index >= window.end:
                continue  # false alarm between windows; no delay sample
            obs.histogram(
                "repro_alert_delay_points",
                "Detection delay of opened alerts, in points past the "
                "ground-truth window begin (Fig. 12 delay axis)",
                buckets=DEFAULT_ALERT_DELAY_BUCKETS,
                kpi=kpi_id,
            ).observe(float(begin_index - window.begin))
        return opened

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(self) -> ReplayResult:
        config = self.config
        obs = get_provider()
        self._preflight()
        sim_end = config.scenario.weeks * SECONDS_PER_WEEK
        tick = float(math.gcd(*self._intervals.values()))
        offered_counters = {
            kpi_id: obs.counter(
                "repro_loadgen_points_offered_total",
                "Points the load generator offered to the fleet",
                kpi=kpi_id,
            )
            for kpi_id in self._intervals
        }
        cursors = {kpi_id: 0 for kpi_id in self._intervals}
        checkpoints: List[dict] = []
        points_offered = accepted = rejected = alerts_opened = 0
        batches = 0
        fault: Optional[dict] = None
        fault_due = (
            config.kill_after_batches
            if config.kill_shard >= 0
            else config.restart_after_batches
            if config.restart_shard >= 0
            else 0
        )
        completed = True
        began = time.monotonic()
        next_checkpoint = config.checkpoint_every
        next_retrain = config.retrain_every or float("inf")

        def record_checkpoint(sim_now: float) -> None:
            checkpoints.append(
                {
                    "sim_seconds": sim_now,
                    "points_offered": points_offered,
                    "snapshot": combine_snapshots(
                        [obs.snapshot(), self._server_snapshot()]
                    ),
                }
            )

        with obs.span(
            "loadgen.replay",
            n_kpis=config.scenario.n_kpis,
            weeks=config.scenario.weeks,
        ) as span:
            sim_now = 0.0
            while sim_now < sim_end:
                sim_now += tick
                batch: List[Tuple[str, float]] = []
                for kpi_id, interval in self._intervals.items():
                    if sim_now % interval:
                        continue
                    cursor = cursors[kpi_id]
                    live = self._live[kpi_id]
                    if cursor >= len(live):
                        continue
                    batch.append((kpi_id, live[cursor]))
                    offered_counters[kpi_id].inc()
                    cursors[kpi_id] = cursor + 1
                if batch:
                    points_offered += len(batch)
                    reply = self._post_batch(batch)
                    accepted += reply.get("accepted", 0)
                    rejected += reply.get("rejected", 0)
                    alerts_opened += self._record_alert_delays(
                        reply.get("events", [])
                    )
                    batches += 1
                    if fault is None and fault_due and batches >= fault_due:
                        fault = self._inject_fault()
                if config.retrain_every and sim_now >= next_retrain:
                    next_retrain += config.retrain_every
                    self._retrain_wave()
                if sim_now >= next_checkpoint:
                    next_checkpoint += config.checkpoint_every
                    record_checkpoint(sim_now)
                if config.points_per_second > 0:
                    ahead = (
                        points_offered / config.points_per_second
                        - (time.monotonic() - began)
                    )
                    if ahead > 0:
                        time.sleep(ahead)
                if (
                    config.max_wall_seconds
                    and time.monotonic() - began > config.max_wall_seconds
                ):
                    completed = False
                    break
            if not checkpoints or checkpoints[-1]["sim_seconds"] < sim_now:
                record_checkpoint(sim_now)
            span.set("points_offered", points_offered)
            span.set("completed", completed)

        recovered = self._check_recovery(fault) if fault else None
        status, final_status = self.target.request("GET", "/status")
        if status != 200:
            raise TargetError(f"final /status answered {status}")
        self.target.close()
        wall = time.monotonic() - began
        document = {
            "version": 1,
            "mode": "replay",
            "target": config.target,
            "config": {
                **config.scenario.as_dict(),
                "checkpoint_every": config.checkpoint_every,
                "retrain_every": config.retrain_every,
            },
            "completed": completed,
            "wall_seconds": wall,
            "points_offered": points_offered,
            "accepted": accepted,
            "rejected": rejected,
            "alerts_opened": alerts_opened,
            "fault": fault,
            "recovered": recovered,
            "fleet": final_status.get("fleet", {}),
            "shards": final_status.get("shards", []),
            "alerts": self._alerts,
            "checkpoints": checkpoints,
        }
        return ReplayResult(
            points_offered=points_offered,
            accepted=accepted,
            rejected=rejected,
            alerts_opened=alerts_opened,
            sim_seconds=checkpoints[-1]["sim_seconds"],
            wall_seconds=wall,
            completed=completed,
            recovered=recovered,
            document=document,
        )


__all__ = [
    "HttpTarget",
    "ReplayClient",
    "ReplayConfig",
    "ReplayResult",
    "TargetError",
]
