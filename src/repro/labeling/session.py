"""Labeling sessions: the state behind the labeling tool (§4.2, Fig 4).

Operators "left click and drag the mouse to label the window of
anomalies, or right click and drag to (partially) cancel previously
labeled window". A :class:`LabelSession` records exactly those two
operations (plus undo and persistence) over one KPI series, and renders
the final point labels. All the data are labeled only once (§4.1), so a
session is the unit of labeling work for one batch of data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List

import numpy as np

from ..timeseries import (
    AnomalyWindow,
    TimeSeries,
    merge_windows,
    subtract_window,
    windows_to_points,
)


@dataclass(frozen=True)
class LabelAction:
    """One labeling operation, for undo history and audit."""

    kind: str  # "label" | "cancel"
    begin: int
    end: int


class LabelSession:
    """Window labeling over one series, with undo and persistence."""

    def __init__(self, series: TimeSeries):
        self.series = series
        self._windows: List[AnomalyWindow] = []
        self._history: List[List[AnomalyWindow]] = []
        self._actions: List[LabelAction] = []

    # ------------------------------------------------------------------
    @property
    def windows(self) -> List[AnomalyWindow]:
        """Current labelled windows (merged, sorted)."""
        return list(self._windows)

    @property
    def actions(self) -> List[LabelAction]:
        return list(self._actions)

    def n_label_actions(self) -> int:
        """Number of label drags — what drives labeling time (Fig 14)."""
        return sum(1 for a in self._actions if a.kind == "label")

    # ------------------------------------------------------------------
    def _checkpoint(self) -> None:
        self._history.append(list(self._windows))

    def label(self, begin: int, end: int) -> None:
        """Left-click drag: mark [begin, end) anomalous."""
        window = self._validated(begin, end)
        self._checkpoint()
        self._windows = merge_windows(self._windows + [window])
        self._actions.append(LabelAction("label", window.begin, window.end))

    def cancel(self, begin: int, end: int) -> None:
        """Right-click drag: (partially) cancel labels in [begin, end)."""
        window = self._validated(begin, end)
        self._checkpoint()
        self._windows = subtract_window(self._windows, window)
        self._actions.append(LabelAction("cancel", window.begin, window.end))

    def undo(self) -> bool:
        """Revert the last label/cancel; returns False if nothing to undo."""
        if not self._history:
            return False
        self._windows = self._history.pop()
        if self._actions:
            self._actions.pop()
        return True

    def clear(self) -> None:
        self._checkpoint()
        self._windows = []
        self._actions.append(LabelAction("cancel", 0, len(self.series)))

    def _validated(self, begin: int, end: int) -> AnomalyWindow:
        n = len(self.series)
        if not (0 <= begin < end <= n):
            raise ValueError(
                f"window [{begin}, {end}) outside series of length {n}"
            )
        return AnomalyWindow(begin, end)

    # ------------------------------------------------------------------
    def to_labels(self) -> np.ndarray:
        """Point labels (the training ground truth)."""
        return windows_to_points(self._windows, len(self.series))

    def labeled_series(self) -> TimeSeries:
        """The series with this session's labels attached."""
        return self.series.with_labels(self.to_labels())

    # ------------------------------------------------------------------
    def save(self, path: "Path | str") -> None:
        """Persist windows as JSON (timestamps are grid indices)."""
        payload = {
            "name": self.series.name,
            "length": len(self.series),
            "interval": self.series.interval,
            "start": self.series.start,
            "windows": [[w.begin, w.end] for w in self._windows],
        }
        Path(path).write_text(json.dumps(payload, indent=2))

    def load(self, path: "Path | str") -> None:
        """Restore windows saved by :meth:`save` (validated against the
        session's series)."""
        payload = json.loads(Path(path).read_text())
        if payload["length"] != len(self.series):
            raise ValueError(
                f"saved labels cover {payload['length']} points, series "
                f"has {len(self.series)}"
            )
        if payload["interval"] != self.series.interval:
            raise ValueError("saved labels use a different interval")
        self._checkpoint()
        self._windows = merge_windows(
            AnomalyWindow(int(b), int(e)) for b, e in payload["windows"]
        )
        self._actions.append(LabelAction("load", 0, len(self.series)))
