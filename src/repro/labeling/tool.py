"""A terminal labeling tool (the Fig 4 GUI, rebuilt for the console).

The paper's tool shows the KPI as a line graph with last-day/last-week
context, lets operators navigate with arrow keys, and label/cancel
anomaly windows by dragging. This console edition renders the series as
a braille-free ASCII chart with label markers and last-week context,
and takes the same operations as typed commands:

=============  =================================================
Command        Effect
=============  =================================================
``l A B``      label points [A, B) anomalous (left-click drag)
``c A B``      cancel labels in [A, B)      (right-click drag)
``u``          undo
``n`` / ``p``  next / previous page          (arrow keys)
``+`` / ``-``  zoom in / out                 (arrow keys)
``g A``        go to point A
``w PATH``     save labels to PATH
``q``          quit
=============  =================================================

The tool is scriptable: :func:`run_commands` drives a session from a
command list, which is also how the tests exercise it end to end.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass
from typing import Iterable, Optional, TextIO

import numpy as np

from ..timeseries import TimeSeries, TimeSeriesError
from .session import LabelSession

#: Rendered chart dimensions.
CHART_WIDTH = 72
CHART_HEIGHT = 12


@dataclass
class ViewState:
    """The navigator state: which slice is on screen."""

    offset: int = 0
    width: int = 500

    def clamp(self, n: int) -> None:
        self.width = max(20, min(self.width, n))
        self.offset = max(0, min(self.offset, n - self.width))


def render_chart(
    series: TimeSeries,
    labels: np.ndarray,
    view: ViewState,
    *,
    show_last_week: bool = True,
) -> str:
    """ASCII chart of the viewed slice; labelled points are marked with
    ``#`` under the x-axis, last-week context (light colour in the GUI)
    is drawn with ``.``."""
    view.clamp(len(series))
    lo, hi = view.offset, view.offset + view.width
    values = series.values[lo:hi]
    marks = labels[lo:hi]
    ppw = None
    context = None
    if show_last_week:
        try:
            ppw = series.points_per_week
        except TimeSeriesError:
            # Interval does not divide a day evenly — no week context.
            ppw = None
        if ppw is not None and lo - ppw >= 0:
            context = series.values[lo - ppw: hi - ppw]

    # Downsample columns by max (so single anomalous bins stay visible,
    # exactly the "we do not smooth the curve" property of §4.2).
    columns = np.array_split(np.arange(len(values)), CHART_WIDTH)
    col_values = np.array(
        [np.nanmax(values[c]) if len(c) and not np.isnan(values[c]).all()
         else np.nan for c in columns]
    )
    col_marked = np.array(
        [marks[c].any() if len(c) else False for c in columns]
    )
    col_context = None
    if context is not None:
        col_context = np.array(
            [np.nanmax(context[c]) if len(c) and not np.isnan(context[c]).all()
             else np.nan for c in columns]
        )

    finite = col_values[np.isfinite(col_values)]
    if col_context is not None:
        finite = np.concatenate(
            [finite, col_context[np.isfinite(col_context)]]
        )
    if len(finite) == 0:
        return "(no data in view)"
    low, high = float(finite.min()), float(finite.max())
    span = high - low or 1.0

    def row_of(value: float) -> int:
        return int((value - low) / span * (CHART_HEIGHT - 1))

    grid = [[" "] * CHART_WIDTH for _ in range(CHART_HEIGHT)]
    for x in range(CHART_WIDTH):
        if col_context is not None and np.isfinite(col_context[x]):
            grid[CHART_HEIGHT - 1 - row_of(col_context[x])][x] = "."
        if np.isfinite(col_values[x]):
            grid[CHART_HEIGHT - 1 - row_of(col_values[x])][x] = (
                "@" if col_marked[x] else "*"
            )
    lines = ["".join(row) for row in grid]
    lines.append("-" * CHART_WIDTH)
    lines.append(
        "".join("#" if m else " " for m in col_marked)
    )
    lines.append(
        f"[{lo}..{hi}) of {len(series)}  name={series.name or '?'}  "
        f"(@=labelled, .=last week)"
    )
    return "\n".join(lines)


class LabelingTool:
    """Interactive console labeling over a :class:`LabelSession`."""

    def __init__(
        self,
        series: TimeSeries,
        *,
        session: Optional[LabelSession] = None,
        output: Optional[TextIO] = None,
    ):
        self.session = session or LabelSession(series)
        self.view = ViewState(width=min(500, len(series)))
        self._output = output

    # ------------------------------------------------------------------
    def _print(self, text: str) -> None:
        if self._output is not None:
            self._output.write(text + "\n")

    def render(self) -> str:
        return render_chart(
            self.session.series, self.session.to_labels(), self.view
        )

    def execute(self, command: str) -> bool:
        """Run one command; returns False when the user quits."""
        parts = shlex.split(command)
        if not parts:
            return True
        op, args = parts[0], parts[1:]
        n = len(self.session.series)
        if op == "q":
            return False
        if op == "l" and len(args) == 2:
            self.session.label(int(args[0]), int(args[1]))
        elif op == "c" and len(args) == 2:
            self.session.cancel(int(args[0]), int(args[1]))
        elif op == "u":
            if not self.session.undo():
                self._print("nothing to undo")
        elif op == "n":
            self.view.offset += self.view.width
        elif op == "p":
            self.view.offset -= self.view.width
        elif op == "+":
            self.view.width = max(20, self.view.width // 2)
        elif op == "-":
            self.view.width = min(n, self.view.width * 2)
        elif op == "g" and len(args) == 1:
            self.view.offset = int(args[0])
        elif op == "w" and len(args) == 1:
            self.session.save(args[0])
        else:
            self._print(f"unknown command: {command!r}")
            return True
        self.view.clamp(n)
        self._print(self.render())
        return True

    def run(self, input_stream: TextIO, prompt: str = "> ") -> LabelSession:
        """Interactive loop reading commands from ``input_stream``."""
        self._print(self.render())
        for line in input_stream:
            if not self.execute(line.strip()):
                break
        return self.session


def run_commands(
    series: TimeSeries, commands: Iterable[str]
) -> LabelSession:
    """Drive a labeling tool from a command list (scripted labeling)."""
    tool = LabelingTool(series)
    for command in commands:
        if not tool.execute(command):
            break
    return tool.session
