"""Alert review: confirming or rejecting detections as labels.

The paper contrasts its labeling tool with WebClass [27], which "only
allows operators to label the anomalies already identified by detectors
as false positives or unknown". Free labeling is strictly more
powerful — but reviewing the detector's own alerts is still the
cheapest label source in steady state, and every verdict is a training
label: a confirmed alert adds anomaly points, a rejected one adds
*hard-negative* normal points that correct the classifier's precise
mistake.

:class:`ReviewSession` manages that workflow over a batch of alerts and
emits labelled windows ready for
:meth:`repro.core.MonitoringService.submit_labels` /
:meth:`~repro.core.Opprentice.fit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..timeseries import AnomalyWindow

#: Verdict states for a reviewed alert.
PENDING = "pending"
CONFIRMED = "confirmed"
REJECTED = "rejected"


@dataclass
class ReviewItem:
    """One alert awaiting an operator verdict."""

    window: AnomalyWindow
    peak_score: float
    verdict: str = PENDING


class ReviewSession:
    """Verdict tracking over a batch of alert windows.

    Windows may be adjusted during confirmation (operators often widen
    an alert to cover the true anomalous extent — the §4.2 boundary
    behaviour), which WebClass-style FP/unknown labeling cannot do.
    """

    def __init__(self, alerts: Sequence, length: int):
        """``alerts`` are `repro.core.Alert`-like objects (anything with
        ``begin_index``/``end_index``/``peak_score``); ``length`` is the
        reviewed series length (bounds verdict windows)."""
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        self._length = length
        self._items: List[ReviewItem] = [
            ReviewItem(
                window=AnomalyWindow(alert.begin_index, alert.end_index),
                peak_score=float(alert.peak_score),
            )
            for alert in alerts
        ]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[ReviewItem]:
        return list(self._items)

    def pending(self) -> List[int]:
        """Indices of alerts without a verdict, highest peak first."""
        order = sorted(
            (i for i, item in enumerate(self._items)
             if item.verdict == PENDING),
            key=lambda i: -self._items[i].peak_score,
        )
        return order

    # ------------------------------------------------------------------
    def confirm(
        self, index: int, *, begin: int | None = None, end: int | None = None
    ) -> None:
        """Mark an alert as a true anomaly, optionally adjusting the
        window extent."""
        item = self._item(index)
        window = item.window
        new_begin = window.begin if begin is None else begin
        new_end = window.end if end is None else end
        if not 0 <= new_begin < new_end <= self._length:
            raise ValueError(
                f"adjusted window [{new_begin}, {new_end}) out of bounds"
            )
        item.window = AnomalyWindow(new_begin, new_end)
        item.verdict = CONFIRMED

    def reject(self, index: int) -> None:
        """Mark an alert as a false positive (a hard negative)."""
        self._item(index).verdict = REJECTED

    def _item(self, index: int) -> ReviewItem:
        if not 0 <= index < len(self._items):
            raise IndexError(f"no alert at index {index}")
        return self._items[index]

    # ------------------------------------------------------------------
    def verdicts(self) -> Dict[str, int]:
        counts = {PENDING: 0, CONFIRMED: 0, REJECTED: 0}
        for item in self._items:
            counts[item.verdict] += 1
        return counts

    def anomaly_windows(self) -> List[AnomalyWindow]:
        """Confirmed windows — feed these to submit_labels / retraining."""
        return [
            item.window for item in self._items if item.verdict == CONFIRMED
        ]

    def hard_negative_mask(self) -> np.ndarray:
        """Boolean mask of points the operator explicitly marked normal
        (rejected alerts). Useful for weighting or for auditing the
        classifier's false positives over time."""
        mask = np.zeros(self._length, dtype=bool)
        for item in self._items:
            if item.verdict == REJECTED:
                mask[item.window.begin: item.window.end] = True
        return mask

    def is_complete(self) -> bool:
        return not any(item.verdict == PENDING for item in self._items)
