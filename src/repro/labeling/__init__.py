"""Labeling-tool substrate: sessions, console tool, scripted labeling."""

from .review import CONFIRMED, PENDING, REJECTED, ReviewItem, ReviewSession
from .session import LabelAction, LabelSession
from .tool import LabelingTool, ViewState, render_chart, run_commands
from .triage import TriageCandidate, suggest_windows, triage_queue_minutes

__all__ = [
    "LabelSession",
    "ReviewSession",
    "ReviewItem",
    "PENDING",
    "CONFIRMED",
    "REJECTED",
    "LabelAction",
    "LabelingTool",
    "ViewState",
    "render_chart",
    "run_commands",
    "TriageCandidate",
    "suggest_windows",
    "triage_queue_minutes",
]
