"""Label triage: which windows should the operator look at next?

§4.2's tool lets operators label everything; as data accumulates,
pointing them at the *most informative* stretches first shrinks the
weekly labeling session further. The triage heuristic ranks candidate
windows by the classifier's anomaly scores over still-unlabelled
regions — high-scoring unlabelled runs are either real anomalies (label
them: confirms the classifier) or false positives (label them normal:
the next retraining round fixes exactly the classifier's mistake).
Either way the label is worth more than a random one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..timeseries import AnomalyWindow


@dataclass(frozen=True)
class TriageCandidate:
    """A suggested stretch for the operator to inspect."""

    window: AnomalyWindow
    peak_score: float
    mean_score: float


def suggest_windows(
    scores: Sequence[float],
    *,
    labeled_mask: Optional[Sequence[bool]] = None,
    score_threshold: float = 0.3,
    max_candidates: int = 10,
    context_points: int = 2,
    min_gap: int = 1,
) -> List[TriageCandidate]:
    """Rank unlabelled high-score runs for operator review.

    Parameters
    ----------
    scores:
        Anomaly scores over the data to triage (NaN = not scoreable).
    labeled_mask:
        True where the operator has already labelled (those regions are
        excluded); default none labelled.
    score_threshold:
        Runs are grown where ``score >= score_threshold``.
    context_points:
        Each suggested window is padded by this many points on both
        sides so the operator sees the onset and recovery.
    min_gap:
        Runs closer than this many points merge into one suggestion.
    """
    scores = np.asarray(scores, dtype=np.float64)
    n = len(scores)
    if n == 0:
        return []
    if not 0.0 <= score_threshold <= 1.0:
        raise ValueError(
            f"score_threshold must be in [0, 1], got {score_threshold}"
        )
    if labeled_mask is None:
        labeled = np.zeros(n, dtype=bool)
    else:
        labeled = np.asarray(labeled_mask, dtype=bool)
        if labeled.shape != scores.shape:
            raise ValueError("labeled_mask length must match scores")

    hot = np.zeros(n, dtype=bool)
    finite = np.isfinite(scores)
    hot[finite] = scores[finite] >= score_threshold
    hot &= ~labeled

    # Grow maximal runs, merging runs separated by < min_gap points.
    candidates: List[TriageCandidate] = []
    runs: List[List[int]] = []
    index = 0
    while index < n:
        if not hot[index]:
            index += 1
            continue
        end = index
        while end < n and hot[end]:
            end += 1
        if runs and index - runs[-1][1] < min_gap:
            runs[-1][1] = end
        else:
            runs.append([index, end])
        index = end
    for begin, end in runs:
        padded_begin = max(0, begin - context_points)
        padded_end = min(n, end + context_points)
        run_scores = scores[begin:end]
        candidates.append(
            TriageCandidate(
                window=AnomalyWindow(padded_begin, padded_end),
                peak_score=float(np.nanmax(run_scores)),
                mean_score=float(np.nanmean(run_scores)),
            )
        )
    candidates.sort(key=lambda c: -c.peak_score)
    return candidates[:max_candidates]


def triage_queue_minutes(
    candidates: Sequence[TriageCandidate], *, seconds_per_window: float = 8.0
) -> float:
    """Estimated operator time to review the queue (one zoom + one
    drag per candidate, the Fig 14 per-window cost)."""
    if seconds_per_window <= 0:
        raise ValueError("seconds_per_window must be positive")
    return len(candidates) * seconds_per_window / 60.0
