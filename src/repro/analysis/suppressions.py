"""Inline suppression comments: ``# repro: disable=<rule> — reason``.

Suppressions are scoped by where the comment sits:

* On any statement line — suppresses the named rules on that line only.
* On a ``def``/``class`` header line (or one of its decorator lines) —
  suppresses the named rules for the whole body of that definition.
* ``# repro: disable`` with no rule list disables every rule for the
  same scope — but the ``suppression-justification`` rule reports every
  bare disable, so name the rules being silenced.

Multiple rules are comma-separated: ``# repro: disable=a,b — reason``.
The justification text after the rule list (separated by a dash or
colon) is mandatory: a directive without one is itself a finding. The
engine counts how many findings each suppression removed, so reporters
can surface the suppressed total.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

#: Sentinel meaning "all rules" (a bare ``disable`` with no rule list).
ALL_RULES = "*"

_DIRECTIVE = re.compile(
    r"#\s*repro:\s*disable(?:\s*=\s*(?P<rules>[\w\-\*]+(?:\s*,\s*[\w\-\*]+)*))?"
)


def iter_directives(
    source: str,
) -> Iterator[Tuple[int, Optional[FrozenSet[str]], str]]:
    """Yield ``(line, rules, justification)`` per suppression directive.

    ``rules`` is ``None`` for a bare ``# repro: disable`` (suppresses
    everything); ``justification`` is the comment text after the
    directive with leading separators (dashes, colons) stripped — empty
    when the author gave no reason.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if match is None:
                continue
            rules = match.group("rules")
            parsed = (
                None
                if rules is None
                else frozenset(
                    part.strip() for part in rules.split(",") if part.strip()
                )
            )
            trailer = token.string[match.end():]
            justification = trailer.strip().lstrip("—–-: \t").strip()
            yield token.start[0], parsed, justification
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        return  # unparseable files are reported via the parse-error rule


def _parse_directive(comment: str) -> Set[str]:
    """Rule ids disabled by one comment string (empty set = none)."""
    match = _DIRECTIVE.search(comment)
    if match is None:
        return set()
    rules = match.group("rules")
    if rules is None:
        return {ALL_RULES}
    return {part.strip() for part in rules.split(",") if part.strip()}


def _comment_lines(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rules disabled by a comment on that line."""
    disabled: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            rules = _parse_directive(token.string)
            if rules:
                disabled.setdefault(token.start[0], set()).update(rules)
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        pass  # unparseable files are reported via the parse-error rule
    return disabled


def build_suppressions(source: str, tree: ast.AST) -> Dict[int, FrozenSet[str]]:
    """Full line -> disabled-rules map, with def/class scopes expanded.

    A directive on a definition's header (or decorator) line applies to
    every line of the definition's body, so a single comment can exempt
    an intentionally non-conforming method or class.
    """
    per_line = _comment_lines(source)
    if per_line:
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            header_lines = [node.lineno]
            header_lines += [d.lineno for d in node.decorator_list]
            scoped: Set[str] = set()
            for line in header_lines:
                scoped |= per_line.get(line, set())
            if scoped and node.end_lineno is not None:
                for line in range(node.lineno, node.end_lineno + 1):
                    per_line.setdefault(line, set()).update(scoped)
    return {line: frozenset(rules) for line, rules in per_line.items()}


def is_suppressed(
    disabled: Dict[int, FrozenSet[str]], line: int, rule: str
) -> bool:
    rules = disabled.get(line)
    return bool(rules) and (rule in rules or ALL_RULES in rules)
