"""``repro-lint`` / ``python -m repro.analysis`` command line.

Examples::

    repro-lint src/repro                 # lint the library, text output
    repro-lint --format json src/repro   # machine-readable report
    repro-lint --list-rules              # show the rule set
    repro-lint --disable api-hygiene src # switch a rule off for one run
    repro-lint --strict src/repro        # warnings also fail the run
    repro-lint --changed-only            # findings only in files changed
                                         # vs origin/main (pre-commit)
    repro-lint --changed-only HEAD~3     # ... vs an explicit git ref

``--changed-only`` still analyses every configured path — the
cross-module rules need the whole project, and the analysis cache makes
that cheap — but reports only findings located in changed files.

Exit codes: 0 clean, 1 findings at failing severity, 2 usage/config
error. Configuration is read from the nearest ``pyproject.toml``
(``[tool.repro-lint]``) unless ``--config`` points elsewhere or
``--no-config`` skips it.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from .config import ConfigError, LintConfig, find_pyproject, load_config
from .engine import LintEngine
from .finding import Severity
from .reporters import REPORTERS
from .rules import RULE_REGISTRY

USAGE_EXIT = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static contract checks for the Opprentice reproduction: "
            "detector causality, determinism, registry consistency, "
            "API hygiene."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: [tool.repro-lint] "
             "paths, else src/repro)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--config", type=Path, default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.repro-lint] from",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore pyproject.toml configuration entirely",
    )
    parser.add_argument(
        "--disable", action="append", default=[], metavar="RULE",
        help="disable a rule for this run (repeatable)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures (exit 1)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--changed-only", nargs="?", const="origin/main", default=None,
        metavar="REF",
        help="report only findings in files changed vs a git ref "
             "(default ref: origin/main); the whole project is still "
             "analysed so cross-module rules stay sound",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="analysis-cache directory (overrides [tool.repro-lint] "
             "cache-dir)",
    )
    return parser


def _changed_files(ref: str) -> Set[str]:
    """Posix paths (relative to the cwd) of .py files changed vs ``ref``.

    Includes committed, staged and unstaged changes plus untracked
    files, so the pre-commit hook sees exactly what a push would.
    """
    toplevel = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True,
    ).stdout.strip()
    commands = [
        ["git", "diff", "--name-only", "-z", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard", "-z"],
    ]
    changed: Set[str] = set()
    for command in commands:
        proc = subprocess.run(
            command, capture_output=True, text=True, check=True
        )
        for name in proc.stdout.split("\0"):
            if not name.endswith(".py"):
                continue
            # git paths are repo-root-relative; findings are cwd-relative
            path = Path(toplevel) / name
            try:
                changed.add(path.resolve().relative_to(Path.cwd()).as_posix())
            except ValueError:
                changed.add(path.as_posix())
    return changed


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.no_config:
        config = LintConfig()
    else:
        pyproject = args.config
        if pyproject is None:
            anchor = Path(args.paths[0]) if args.paths else Path.cwd()
            pyproject = find_pyproject(anchor)
        config = load_config(pyproject)
    config.disabled_rules = list(config.disabled_rules) + list(args.disable)
    return config


def _list_rules() -> str:
    lines = []
    for rule_id, rule_cls in RULE_REGISTRY.items():
        severity = rule_cls.default_severity.value
        lines.append(f"{rule_id:<20} [{severity}] {rule_cls.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    unknown = set(args.disable) - set(RULE_REGISTRY)
    if unknown:
        print(
            f"repro-lint: unknown rule(s) in --disable: {sorted(unknown)}",
            file=sys.stderr,
        )
        return USAGE_EXIT

    try:
        config = _resolve_config(args)
    except (ConfigError, ValueError, OSError) as exc:
        print(f"repro-lint: config error: {exc}", file=sys.stderr)
        return USAGE_EXIT

    only_files: Optional[Set[str]] = None
    if args.changed_only is not None:
        try:
            only_files = _changed_files(args.changed_only)
        except (subprocess.CalledProcessError, OSError) as exc:
            detail = ""
            if isinstance(exc, subprocess.CalledProcessError) and exc.stderr:
                detail = f": {exc.stderr.strip()}"
            print(
                f"repro-lint: cannot list files changed vs "
                f"{args.changed_only!r}{detail}",
                file=sys.stderr,
            )
            return USAGE_EXIT

    paths: List[str] = list(args.paths) or list(config.paths) or ["src/repro"]
    try:
        result = LintEngine(config, cache_dir=args.cache_dir).run(
            paths, only_files=only_files
        )
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return USAGE_EXIT

    print(REPORTERS[args.format](result))
    return result.exit_code(strict=args.strict)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
