"""Render a :class:`~repro.analysis.engine.LintResult` as text or JSON.

The text format is the classic one editors parse
(``path:line:col: severity[rule] message``); the JSON format is stable
and versioned so CI jobs and dashboards can consume it::

    {
      "version": 2,
      "findings": [
        {"file": ..., "line": ..., "col": ..., "rule": ...,
         "severity": "error"|"warning", "message": ..., "data": {...}}
      ],
      "summary": {"files": N, "errors": N, "warnings": N,
                  "suppressed": N},
      "rules": ["no-lookahead", ...],
      "timing": {"duration_seconds": S, "parsed": N, "cached": N}
    }

Version history: 2 added the ``timing`` section (wall time plus
analysis-cache hit counts) so CI can assert the cache is effective.
"""

from __future__ import annotations

import json
from typing import Callable, Dict

from .engine import LintResult

JSON_FORMAT_VERSION = 2


def render_text(result: LintResult) -> str:
    lines = [finding.format() for finding in result.findings]
    summary = result.summary
    lines.append(
        f"{summary.files} file(s) checked: "
        f"{summary.errors} error(s), {summary.warnings} warning(s)"
        + (f", {summary.suppressed} suppressed" if summary.suppressed else "")
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": JSON_FORMAT_VERSION,
        "findings": [
            {
                "file": finding.file,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "severity": finding.severity.value,
                "message": finding.message,
                "data": dict(finding.data),
            }
            for finding in result.findings
        ],
        "summary": {
            "files": result.summary.files,
            "errors": result.summary.errors,
            "warnings": result.summary.warnings,
            "suppressed": result.summary.suppressed,
        },
        "rules": list(result.rules),
        "timing": {
            "duration_seconds": round(
                result.timing.get("duration_seconds", 0.0), 6
            ),
            "parsed": int(result.timing.get("parsed", 0)),
            "cached": int(result.timing.get("cached", 0)),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


REPORTERS: Dict[str, Callable[[LintResult], str]] = {
    "text": render_text,
    "json": render_json,
}
