"""The lint data model: findings, severities, and sort order.

A :class:`Finding` is one contract violation at one source location.
Findings are plain data — rules produce them, the engine filters them
through suppressions and config overrides, and reporters render them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional


class Severity(enum.Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail the lint run; ``WARNING`` findings are
    reported but only fail under ``--strict``.
    """

    WARNING = "warning"
    ERROR = "error"

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls(text.lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.value for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``line``/``col`` are 1-based line and 0-based column, matching
    Python's ``ast`` node coordinates so editors can jump to them.
    """

    file: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str
    #: Extra machine-readable context (e.g. the offending symbol name).
    data: Dict[str, str] = field(default_factory=dict)

    @property
    def sort_key(self):
        return (self.file, self.line, self.col, self.rule, self.message)

    def with_severity(self, severity: Severity) -> "Finding":
        return replace(self, severity=severity)

    def format(self) -> str:
        return (
            f"{self.file}:{self.line}:{self.col}: "
            f"{self.severity.value}[{self.rule}] {self.message}"
        )


@dataclass(frozen=True)
class LintSummary:
    """Aggregate counts for one lint run."""

    files: int
    errors: int
    warnings: int
    suppressed: int

    @property
    def clean(self) -> bool:
        return self.errors == 0 and self.warnings == 0

    def failed(self, strict: bool = False) -> bool:
        return self.errors > 0 or (strict and self.warnings > 0)


def make_finding(
    module,
    node,
    rule: str,
    severity: Severity,
    message: str,
    data: Optional[Dict[str, str]] = None,
) -> Finding:
    """Build a finding anchored at an AST node of ``module``."""
    return Finding(
        file=module.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        severity=severity,
        message=message,
        data=data or {},
    )
