"""Static contract enforcement for the Opprentice reproduction.

The paper's §4.3 invariants — detector causality (batch ``severities``
== online ``stream``), reproducible randomness, and the Table 3 bank of
14 detectors / 133 configurations — are contracts the dynamic test
suite can only sample. This package enforces them *statically*: a
dependency-free lint engine over :mod:`ast` with a rule registry,
inline suppressions (``# repro: disable=<rule>``), ``[tool.repro-lint]``
configuration, and text/JSON reporters.

Run it as ``python -m repro.analysis src/repro`` or via the
``repro-lint`` console script; the test suite runs it over the library
itself so a contract violation fails CI like any broken unit test.
See ``docs/static_analysis.md`` for the rule catalogue.
"""

from .config import ConfigError, LintConfig, load_config, parse_config
from .engine import LintEngine, LintResult, discover_files, lint_paths
from .finding import Finding, LintSummary, Severity
from .reporters import render_json, render_text
from .rules import RULE_REGISTRY, Rule, all_rules, register

__all__ = [
    "ConfigError",
    "LintConfig",
    "load_config",
    "parse_config",
    "LintEngine",
    "LintResult",
    "discover_files",
    "lint_paths",
    "Finding",
    "LintSummary",
    "Severity",
    "render_json",
    "render_text",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "register",
]
