"""``[tool.repro-lint]`` configuration loaded from ``pyproject.toml``.

Recognised keys::

    [tool.repro-lint]
    paths = ["src/repro"]          # default lint targets
    exclude = ["*/_vendored/*"]    # fnmatch patterns on posix paths
    disable = ["api-hygiene"]      # rule ids switched off entirely

    [tool.repro-lint.severity]
    api-hygiene = "warning"        # override a rule's severity

    [tool.repro-lint.registry-contract]
    exempt = ["ExperimentalDet"]   # Detector subclasses that may stay
                                   # outside the default bank

    cache-dir = ".lint-cache"      # analysis cache (relative to the
                                   # pyproject's directory)

    [tool.repro-lint.obs-taxonomy]
    doc = "docs/observability.md"  # taxonomy doc to cross-check
                                   # (relative to the pyproject's dir)

    [tool.repro-lint.worker-reachability]
    entry-points = ["_process_worker_run", "_process_worker_attach"]

Unknown keys are rejected so typos fail loudly instead of silently
disabling a contract check. TOML parsing uses the stdlib ``tomllib``
(Python >= 3.11); on older interpreters configuration is skipped with
the built-in defaults, never a crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .finding import Severity

try:  # pragma: no cover - exercised only on Python < 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover
    tomllib = None  # type: ignore[assignment]

_KNOWN_KEYS = {
    "paths", "exclude", "disable", "severity", "registry-contract",
    "cache-dir", "obs-taxonomy", "worker-reachability",
}
_KNOWN_REGISTRY_KEYS = {"exempt"}
_KNOWN_OBS_KEYS = {"doc"}
_KNOWN_WORKER_KEYS = {"entry-points"}

#: Worker entry points assumed when the config does not override them.
DEFAULT_WORKER_ENTRY_POINTS = ["_process_worker_run", "_process_worker_attach"]


class ConfigError(ValueError):
    """Raised for a malformed ``[tool.repro-lint]`` table."""


@dataclass
class LintConfig:
    """Resolved lint configuration (defaults + pyproject overrides)."""

    paths: List[str] = field(default_factory=list)
    exclude: List[str] = field(default_factory=list)
    disabled_rules: List[str] = field(default_factory=list)
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)
    #: Detector class names allowed to stay out of the default bank.
    registry_exempt: List[str] = field(default_factory=list)
    #: Analysis-cache directory ("" = caching off). Relative paths are
    #: resolved against the config's directory by :meth:`resolve_path`.
    cache_dir: str = ""
    #: Observability taxonomy doc for obs-taxonomy ("" = no doc check).
    obs_doc: str = ""
    #: Bare function names treated as process-worker entry points.
    worker_entry_points: List[str] = field(
        default_factory=lambda: list(DEFAULT_WORKER_ENTRY_POINTS)
    )
    #: Where the config came from, for error messages ("" = defaults).
    source: str = ""

    def resolve_path(self, value: str) -> Optional[Path]:
        """Resolve a configured path against the config's directory."""
        if not value:
            return None
        path = Path(value)
        if path.is_absolute() or not self.source:
            return path
        return Path(self.source).parent / path


def _expect_str_list(value, key: str) -> List[str]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ConfigError(f"[tool.repro-lint] {key} must be a list of strings")
    return list(value)


def parse_config(table: dict, source: str = "") -> LintConfig:
    """Validate a raw ``[tool.repro-lint]`` table into a LintConfig."""
    unknown = set(table) - _KNOWN_KEYS
    if unknown:
        raise ConfigError(
            f"unknown [tool.repro-lint] keys: {sorted(unknown)} "
            f"(known: {sorted(_KNOWN_KEYS)})"
        )
    config = LintConfig(source=source)
    if "paths" in table:
        config.paths = _expect_str_list(table["paths"], "paths")
    if "exclude" in table:
        config.exclude = _expect_str_list(table["exclude"], "exclude")
    if "disable" in table:
        config.disabled_rules = _expect_str_list(table["disable"], "disable")
    severity = table.get("severity", {})
    if not isinstance(severity, dict):
        raise ConfigError("[tool.repro-lint] severity must be a table")
    for rule, level in severity.items():
        if not isinstance(level, str):
            raise ConfigError(f"severity for {rule!r} must be a string")
        config.severity_overrides[rule] = Severity.parse(level)
    registry = table.get("registry-contract", {})
    if not isinstance(registry, dict):
        raise ConfigError("[tool.repro-lint] registry-contract must be a table")
    unknown = set(registry) - _KNOWN_REGISTRY_KEYS
    if unknown:
        raise ConfigError(
            f"unknown [tool.repro-lint.registry-contract] keys: "
            f"{sorted(unknown)}"
        )
    if "exempt" in registry:
        config.registry_exempt = _expect_str_list(
            registry["exempt"], "registry-contract.exempt"
        )
    if "cache-dir" in table:
        if not isinstance(table["cache-dir"], str):
            raise ConfigError("[tool.repro-lint] cache-dir must be a string")
        config.cache_dir = table["cache-dir"]
    obs = table.get("obs-taxonomy", {})
    if not isinstance(obs, dict):
        raise ConfigError("[tool.repro-lint] obs-taxonomy must be a table")
    unknown = set(obs) - _KNOWN_OBS_KEYS
    if unknown:
        raise ConfigError(
            f"unknown [tool.repro-lint.obs-taxonomy] keys: {sorted(unknown)}"
        )
    if "doc" in obs:
        if not isinstance(obs["doc"], str):
            raise ConfigError("[tool.repro-lint] obs-taxonomy.doc must be a string")
        config.obs_doc = obs["doc"]
    worker = table.get("worker-reachability", {})
    if not isinstance(worker, dict):
        raise ConfigError(
            "[tool.repro-lint] worker-reachability must be a table"
        )
    unknown = set(worker) - _KNOWN_WORKER_KEYS
    if unknown:
        raise ConfigError(
            f"unknown [tool.repro-lint.worker-reachability] keys: "
            f"{sorted(unknown)}"
        )
    if "entry-points" in worker:
        config.worker_entry_points = _expect_str_list(
            worker["entry-points"], "worker-reachability.entry-points"
        )
    return config


def load_config(pyproject: Optional[Path]) -> LintConfig:
    """Load config from an explicit pyproject path (None = defaults)."""
    if pyproject is None or tomllib is None:
        return LintConfig()
    raw = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    table = raw.get("tool", {}).get("repro-lint", {})
    return parse_config(table, source=str(pyproject))


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in [current, *current.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None
