"""Approximate project call graph built from module summaries.

Nodes (*units*) are top-level functions and class methods; calls inside
nested functions are attributed to the enclosing unit. Edges are
resolved by name:

* plain-name calls (``helper(...)``, ``mod.helper(...)`` through an
  import) link to every project top-level function with that name, and
  to ``Cls.__init__`` when the name is a project class (construction);
* ``self.``/``cls.``/``super().`` method calls link to methods of the
  caller's name-based class family (ancestors + descendants), falling
  back to every method of that name when the family defines none;
* other attribute calls (``task.run(...)``) link to *every* project
  method of that name — a deliberate over-approximation, since the
  receiver's type is unknown statically.

Known limits, by construction: dynamic dispatch through containers of
callables, ``getattr``/``functools.partial`` indirection and string-based
invocation produce no edges. Rules built on reachability therefore pair
the graph with inline suppressions for the few intentional escapes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: A unit key: ``"<display_path>::<qualname>"``.
UnitKey = str


class CallGraph:
    """Name-resolved call edges over every summarized function."""

    def __init__(self, summaries: Sequence[dict]):
        #: unit key -> (module summary, function record)
        self.units: Dict[UnitKey, Tuple[dict, dict]] = {}
        self._top_level: Dict[str, List[UnitKey]] = {}
        self._methods: Dict[str, List[UnitKey]] = {}
        self._class_methods: Dict[str, Dict[str, UnitKey]] = {}
        self._bases: Dict[str, Set[str]] = {}
        self._children: Dict[str, Set[str]] = {}

        for summary in summaries:
            path = summary["path"]
            for cls in summary["classes"]:
                bases = set(cls["bases"])
                self._bases.setdefault(cls["name"], set()).update(bases)
                for base in bases:
                    self._children.setdefault(base, set()).add(cls["name"])
            for func in summary["functions"]:
                key = f"{path}::{func['qualname']}"
                self.units[key] = (summary, func)
                if func["cls"] is None:
                    self._top_level.setdefault(func["name"], []).append(key)
                else:
                    self._methods.setdefault(func["name"], []).append(key)
                    self._class_methods.setdefault(func["cls"], {})[
                        func["name"]
                    ] = key

    # ------------------------------------------------------------------
    # Class hierarchy (name-based)
    # ------------------------------------------------------------------
    def family(self, cls: str) -> Set[str]:
        """``cls`` plus its transitive bases and subclasses by name."""
        members = {cls}
        frontier = deque([cls])
        while frontier:
            current = frontier.popleft()
            for neighbour in self._bases.get(current, set()) | self._children.get(
                current, set()
            ):
                if neighbour not in members:
                    members.add(neighbour)
                    frontier.append(neighbour)
        return members

    # ------------------------------------------------------------------
    # Edge resolution
    # ------------------------------------------------------------------
    def _resolve_name_call(self, target: str) -> List[UnitKey]:
        name = target.rsplit(".", 1)[-1]
        keys = list(self._top_level.get(name, ()))
        constructor = self._class_methods.get(name, {}).get("__init__")
        if constructor is not None:
            keys.append(constructor)
        return keys

    def _resolve_attr_call(self, caller_cls: Optional[str], call: dict) -> List[UnitKey]:
        attr = call["attr"]
        candidates = self._methods.get(attr, [])
        if not candidates:
            return list(self._top_level.get(attr, ()))
        if call["receiver"] in ("self", "cls", "super") and caller_cls:
            family = self.family(caller_cls)
            scoped = [
                key for key in candidates
                if self.units[key][1]["cls"] in family
            ]
            if scoped:
                return scoped
        return list(candidates)

    def callees(self, key: UnitKey) -> List[UnitKey]:
        _, func = self.units[key]
        targets: List[UnitKey] = []
        for call in func["calls"]:
            if call["kind"] == "name":
                targets.extend(self._resolve_name_call(call["target"]))
            else:
                targets.extend(self._resolve_attr_call(func["cls"], call))
        return targets

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def reachable_from(
        self, entry_names: Iterable[str]
    ) -> Dict[UnitKey, Optional[UnitKey]]:
        """BFS parent map from every unit whose bare name is an entry.

        Entry units map to ``None``; every other reachable unit maps to
        the unit it was first reached from, so callers can render the
        shortest call chain in a finding message.
        """
        wanted = set(entry_names)
        parents: Dict[UnitKey, Optional[UnitKey]] = {}
        frontier: deque = deque()
        for key in sorted(self.units):
            if self.units[key][1]["name"] in wanted:
                parents[key] = None
                frontier.append(key)
        while frontier:
            current = frontier.popleft()
            for callee in self.callees(current):
                if callee not in parents:
                    parents[callee] = current
                    frontier.append(callee)
        return parents

    def chain(
        self, key: UnitKey, parents: Dict[UnitKey, Optional[UnitKey]]
    ) -> List[str]:
        """Qualnames from the entry point down to ``key``."""
        names: List[str] = []
        current: Optional[UnitKey] = key
        while current is not None:
            names.append(self.units[current][1]["qualname"])
            current = parents.get(current)
        return list(reversed(names))
