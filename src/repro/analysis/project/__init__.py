"""Project-wide analysis layer: summaries, symbol/call graph, cache.

The engine parses each module once into a JSON-serializable
:func:`~repro.analysis.project.summary.summarize_module` record holding
everything the cross-module rules need — classes and bases, per-function
call and mutation records, snapshot/restore key sets, ``repro.obs`` call
sites, lock-guarded attribute accesses, registry factory terms and the
suppression table. Because summaries (and per-module rule findings) are
content-addressed by file hash in :class:`AnalysisCache`, a warm run
re-parses nothing: project rules execute over cached summaries through
:class:`ProjectIndex` and the :class:`CallGraph` built from them.
"""

from .cache import AnalysisCache
from .callgraph import CallGraph
from .index import ProjectIndex
from .summary import SUMMARY_SCHEMA_VERSION, summarize_module

__all__ = [
    "AnalysisCache",
    "CallGraph",
    "ProjectIndex",
    "SUMMARY_SCHEMA_VERSION",
    "summarize_module",
]
