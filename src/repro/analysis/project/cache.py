"""Content-addressed cache for per-module analysis results.

Same idiom as ``repro.core.severity_cache.SeverityCache``: entries are
keyed by a sha256 digest, laid out as ``<dir>/<key[:2]>/<key>.json`` and
published atomically via ``os.replace`` so concurrent lint runs can
share one directory. The digest covers the module *source bytes* plus an
engine fingerprint (cache format, summary schema, active rule ids), so
editing a file, upgrading the engine or toggling a rule each invalidate
exactly the affected entries — stale keys are simply never requested
again.

One entry stores everything the engine needs to skip parsing a module:
its JSON summary (which feeds every project rule), the serialized
findings of the per-module rules, or the parse error if the file does
not compile.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, Optional

#: Bump to invalidate every cache entry on a cache-format change.
CACHE_FORMAT_VERSION = 1


def engine_fingerprint(schema_version: int, rule_ids: Iterable[str]) -> str:
    """The run configuration half of every cache key."""
    return f"v{CACHE_FORMAT_VERSION}:s{schema_version}:" + ",".join(
        sorted(rule_ids)
    )


class AnalysisCache:
    """Disk + in-memory cache of per-module analysis payloads."""

    def __init__(self, directory: Optional[Path], fingerprint: str):
        self.directory = Path(directory) if directory is not None else None
        self.fingerprint = fingerprint
        self._memory: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key_for(self, source: bytes) -> str:
        digest = hashlib.sha256()
        digest.update(self.fingerprint.encode("utf-8"))
        digest.update(b"\0")
        digest.update(source)
        return digest.hexdigest()

    def _path_for(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        payload = self._memory.get(key)
        if payload is None:
            path = self._path_for(key)
            if path is not None and path.is_file():
                try:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    payload = None  # corrupt entry: treat as a miss
                if payload is not None:
                    self._memory[key] = payload
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        self._memory[key] = payload
        path = self._path_for(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream)
            os.replace(tmp_name, path)
        except OSError:
            pass  # a read-only cache directory degrades to in-memory
