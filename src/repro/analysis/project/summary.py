"""Per-module analysis summaries: one parse, many cross-module rules.

A *summary* is a JSON-serializable dict distilled from one module's AST
that carries everything the project-level rules consume:

* ``classes``/``functions`` — the symbol table plus, per function, the
  outgoing call records and state-mutation records the worker
  reachability check walks;
* ``checkpoints`` — statically extracted ``snapshot()`` key sets and
  ``restore()`` key reads per class;
* ``obs`` — every ``repro.obs`` metric/span/event call site with its
  resolved name string and label keys;
* ``locks`` — per class using ``with self._lock:``, each ``self.*``
  attribute access with its guarded/unguarded context;
* ``registry`` — parameter-grid lengths, ``EXPECTED_*`` constants and
  symbolic factory configuration terms (grid names resolved later,
  project-wide);
* ``causality`` — candidate no-lookahead findings, gated at project
  time by the cross-module class hierarchy;
* ``suppressions`` — the inline-directive table the engine filters
  findings through.

Summaries never hold AST nodes, so they round-trip through the analysis
cache and a warm run needs no re-parse.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Set

from ..rules.base import ModuleInfo, base_names

#: Bump when the summary schema changes; part of the cache fingerprint.
SUMMARY_SCHEMA_VERSION = 2

#: Method names that mutate their receiver in place.
MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
    "appendleft", "extendleft", "fill", "put", "itemset", "rotate",
}

#: The observability facade methods whose first argument names a
#: metric/span/event (see ``repro.obs.provider``).
OBS_METRIC_APIS = {"counter", "gauge", "histogram", "timer"}
OBS_APIS = OBS_METRIC_APIS | {"span", "emit"}

#: Receiver spellings that address the observability layer.
_OBS_RECEIVER_NAMES = {"obs", "provider", "registry", "tracer", "events"}

#: Registry factory functions whose configuration count is pinned.
FACTORY_NAMES = {"default_detectors", "extended_detectors"}

_SNAPSHOT_METHOD = "snapshot"
_RESTORE_METHODS = ("restore_snapshot", "restore")


def _loc(node: ast.AST) -> Dict[str, int]:
    return {
        "lineno": getattr(node, "lineno", 1),
        "col": getattr(node, "col_offset", 0),
    }


def _is_abstract(cls: ast.ClassDef) -> bool:
    """Statically abstract: declares an ``@abstractmethod`` of its own."""
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in item.decorator_list:
                target = decorator
                if isinstance(target, ast.Call):
                    target = target.func
                name = ""
                if isinstance(target, ast.Name):
                    name = target.id
                elif isinstance(target, ast.Attribute):
                    name = target.attr
                if name.endswith("abstractmethod"):
                    return True
    return False


def _base_name(node: ast.AST) -> str:
    """The root ``Name`` of an attribute/subscript chain, or ``""``."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return ""


def _local_names(function: ast.AST) -> Set[str]:
    """Names bound inside ``function``: arguments, assignment targets,
    loop/with/comprehension targets, local defs and imports."""
    names: Set[str] = set()
    assert isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = function.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not function:
                names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name.split(".")[0])
    return names


# ---------------------------------------------------------------------------
# Function records: calls + mutations
# ---------------------------------------------------------------------------
def _call_records(module: ModuleInfo, func: ast.AST) -> List[dict]:
    calls: List[dict] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if isinstance(target, ast.Name):
            calls.append({
                "kind": "name",
                "target": module.import_map.get(target.id, target.id),
                **_loc(node),
            })
        elif isinstance(target, ast.Attribute):
            receiver = target.value
            if isinstance(receiver, ast.Name):
                if receiver.id in ("self", "cls"):
                    calls.append({
                        "kind": "attr", "attr": target.attr,
                        "receiver": receiver.id, **_loc(node),
                    })
                elif receiver.id in module.import_map:
                    # mod.func(...) through an import: a plain-name call
                    # with a fully resolved dotted target.
                    calls.append({
                        "kind": "name",
                        "target": module.resolve(target),
                        **_loc(node),
                    })
                else:
                    calls.append({
                        "kind": "attr", "attr": target.attr,
                        "receiver": receiver.id, **_loc(node),
                    })
            elif (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
            ):
                calls.append({
                    "kind": "attr", "attr": target.attr,
                    "receiver": "super", **_loc(node),
                })
            else:
                calls.append({
                    "kind": "attr", "attr": target.attr,
                    "receiver": "", **_loc(node),
                })
    return calls


def _mutation_records(func: ast.AST) -> dict:
    """``global`` statements, attribute/subscript writes and mutating
    method calls inside one function, with local-shadow information."""
    locals_ = _local_names(func)
    globals_: List[dict] = []
    attr_writes: List[dict] = []
    mut_calls: List[dict] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            globals_.append({"names": list(node.names), **_loc(node)})
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                base = _base_name(target)
                value = target.value if isinstance(target, ast.Attribute) else None
                is_type_call = (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "type"
                )
                attr_writes.append({
                    "base": base,
                    "is_local": base in locals_,
                    "direct_attr": isinstance(target, ast.Attribute),
                    "is_type_call": is_type_call,
                    **_loc(node),
                })
        elif isinstance(node, ast.Call):
            target = node.func
            if (
                isinstance(target, ast.Attribute)
                and target.attr in MUTATING_METHODS
            ):
                base = _base_name(target.value)
                mut_calls.append({
                    "base": base,
                    "method": target.attr,
                    "is_local": base in locals_,
                    **_loc(node),
                })
    return {"globals": globals_, "attr_writes": attr_writes,
            "mut_calls": mut_calls}


def _function_record(
    module: ModuleInfo, func: ast.AST, cls: Optional[str]
) -> dict:
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    record = {
        "name": func.name,
        "cls": cls,
        "qualname": f"{cls}.{func.name}" if cls else func.name,
        **_loc(func),
        "calls": _call_records(module, func),
    }
    record.update(_mutation_records(func))
    return record


# ---------------------------------------------------------------------------
# Checkpoint symmetry: snapshot() keys vs restore() reads
# ---------------------------------------------------------------------------
def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _unsafe_reason(module: ModuleInfo, value: ast.AST) -> Optional[str]:
    """Why a snapshot value is provably not JSON-serializable."""
    if isinstance(value, ast.Set) or (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("set", "frozenset", "bytes", "bytearray")
    ):
        return "a set/bytes value"
    if isinstance(value, ast.Constant) and isinstance(
        value.value, (bytes, bytearray)
    ):
        return "a bytes literal"
    if isinstance(value, ast.Call):
        path = module.resolve(value.func)
        if path.startswith("numpy."):
            return f"a numpy object ({path})"
    return None


def _snapshot_info(module: ModuleInfo, method: ast.AST) -> dict:
    """Static keys written by one ``snapshot()`` body.

    ``dynamic`` is set when the produced dict cannot be enumerated
    statically (``super().snapshot()`` delegation, ``self.__dict__``
    walks, returning a non-literal); statically added keys (dict-literal
    entries and ``state["k"] = ...`` assignments) are still collected.
    """
    assert isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
    keys: List[dict] = []
    unsafe: List[dict] = []
    dynamic = False
    dict_vars: Dict[str, bool] = {}  # var name -> statically known

    def note_value(key: str, value: ast.AST, node: ast.AST) -> None:
        reason = _unsafe_reason(module, value)
        if reason is not None:
            unsafe.append({"key": key, "reason": reason, **_loc(node)})

    def collect_literal(node: ast.Dict) -> bool:
        known = True
        for key_node, value in zip(node.keys, node.values):
            if key_node is None:  # {**other}
                known = False
                continue
            key = _const_str(key_node)
            if key is None:
                known = False
                continue
            keys.append({"key": key, **_loc(key_node)})
            note_value(key, value, key_node)
        return known

    for node in ast.walk(method):
        if isinstance(node, ast.Attribute) and node.attr == "__dict__":
            dynamic = True
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if isinstance(node.value, ast.Dict):
                    dict_vars[target.id] = collect_literal(node.value)
                else:
                    dict_vars[target.id] = False
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in dict_vars
            ):
                key = _const_str(target.slice)
                if key is not None:
                    keys.append({"key": key, **_loc(target)})
                    note_value(key, node.value, target)
        elif isinstance(node, ast.Return) and node.value is not None:
            value = node.value
            if isinstance(value, ast.Dict):
                if not collect_literal(value):
                    dynamic = True
            elif isinstance(value, ast.Name):
                if not dict_vars.get(value.id, False):
                    dynamic = True
            else:
                dynamic = True
    return {
        "keys": keys, "unsafe": unsafe, "dynamic": dynamic, **_loc(method)
    }


def _restore_info(method: ast.AST) -> dict:
    """String keys one ``restore()`` body reads off its state argument."""
    assert isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = method.args.posonlyargs + method.args.args
    params = [a.arg for a in args if a.arg not in ("self", "cls")]
    if not params:
        return {"reads": [], "dynamic": True, "name": method.name,
                **_loc(method)}
    aliases = {params[0]}
    reads: List[dict] = []
    dynamic = False

    def is_alias(node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in aliases

    for node in ast.walk(method):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
            if isinstance(target, ast.Name):
                if is_alias(value):
                    aliases.add(target.id)
                elif (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "dict"
                    and value.args
                    and is_alias(value.args[0])
                ):
                    aliases.add(target.id)
        elif isinstance(node, ast.Subscript) and is_alias(node.value):
            key = _const_str(node.slice)
            if key is not None and isinstance(node.ctx, ast.Load):
                reads.append({"key": key, "kind": "subscript", **_loc(node)})
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and is_alias(func.value):
                if func.attr in ("get", "pop") and node.args:
                    key = _const_str(node.args[0])
                    if key is not None:
                        reads.append({
                            "key": key, "kind": func.attr, **_loc(node)
                        })
                elif func.attr in ("items", "keys", "values", "update"):
                    dynamic = True  # iterates/forwards the whole mapping
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                dynamic = True  # delegates to a base-class restore
            elif isinstance(func, ast.Name) and func.id == "setattr":
                dynamic = True
    return {"reads": reads, "dynamic": dynamic, "name": method.name,
            **_loc(method)}


def _checkpoint_records(module: ModuleInfo, cls: ast.ClassDef) -> Optional[dict]:
    methods = {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    snapshot = methods.get(_SNAPSHOT_METHOD)
    restore = next(
        (methods[name] for name in _RESTORE_METHODS if name in methods), None
    )
    if snapshot is None or restore is None:
        return None
    return {
        "cls": cls.name,
        "snapshot": _snapshot_info(module, snapshot),
        "restore": _restore_info(restore),
    }


# ---------------------------------------------------------------------------
# Observability call sites
# ---------------------------------------------------------------------------
def _str_constants(module: ModuleInfo) -> Dict[str, str]:
    """Top-level ``NAME = "literal"`` string constants of the module."""
    constants: Dict[str, str] = {}
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Constant
        ) and isinstance(node.value.value, str):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = node.value.value
    return constants


def _is_obs_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _OBS_RECEIVER_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _OBS_RECEIVER_NAMES and isinstance(
            node.value, ast.Name
        )
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name == "get_provider"
    return False


def _obs_records(module: ModuleInfo) -> List[dict]:
    constants = _str_constants(module)
    sites: List[dict] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in OBS_APIS):
            continue
        if not _is_obs_receiver(func.value):
            continue
        name: Optional[str] = None
        prefix = ""
        if node.args:
            first = node.args[0]
            name = _const_str(first)
            if name is None and isinstance(first, ast.Name):
                name = constants.get(first.id)
            if (
                name is None
                and isinstance(first, ast.JoinedStr)
                and first.values
            ):
                # f"alert_{event.kind}": keep the literal prefix so the
                # doc cross-check can match documented alert_* names.
                head = first.values[0]
                if isinstance(head, ast.Constant) and isinstance(
                    head.value, str
                ):
                    prefix = head.value
        labels: List[str] = []
        labels_dynamic = False
        for keyword in node.keywords:
            if keyword.arg is None:
                labels_dynamic = True  # **labels forwarding
            elif keyword.arg not in ("help_text", "buckets"):
                labels.append(keyword.arg)
        sites.append({
            "api": func.attr,
            "name": name,  # None = dynamic, skip checks
            "prefix": prefix,  # literal f-string head of a dynamic name
            "labels": sorted(labels),
            "labels_dynamic": labels_dynamic,
            **_loc(node),
        })
    return sites


# ---------------------------------------------------------------------------
# Lock discipline
# ---------------------------------------------------------------------------
_LOCK_ATTR = "_lock"
_LOCK_EXEMPT_METHODS = {"__init__", "__new__", "__del__"}


def _is_lock_guard(item: ast.withitem) -> bool:
    expr = item.context_expr
    return (
        isinstance(expr, ast.Attribute)
        and expr.attr == _LOCK_ATTR
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    )


def _lock_records(cls: ast.ClassDef) -> Optional[dict]:
    method_names = {
        item.name
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    accesses: List[dict] = []
    self_calls: List[dict] = []
    uses_lock = False

    def visit(node: ast.AST, method: str, guarded: bool) -> None:
        nonlocal uses_lock
        if isinstance(node, ast.With):
            inner = guarded or any(_is_lock_guard(i) for i in node.items)
            if inner and not guarded:
                uses_lock = True
            for item in node.items:
                visit(item.context_expr, method, guarded)
            for child in node.body:
                visit(child, method, inner)
            return
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ) and node.value.id == "self" and node.attr != _LOCK_ATTR:
            accesses.append({
                "attr": node.attr,
                "method": method,
                "guarded": guarded,
                "write": isinstance(node.ctx, (ast.Store, ast.Del)),
                **_loc(node),
            })
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            # self.attr[i] = ... mutates self.attr even though the inner
            # Attribute node itself carries a Load context.
            target = node.value
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ) and target.value.id == "self" and target.attr != _LOCK_ATTR:
                accesses.append({
                    "attr": target.attr,
                    "method": method,
                    "guarded": guarded,
                    "write": True,
                    **_loc(node),
                })
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ) and func.value.id == "self" and func.attr in method_names:
                self_calls.append({
                    "caller": method, "callee": func.attr,
                    "guarded": guarded, **_loc(node),
                })
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
            ):
                # self.attr.append(...) mutates self.attr
                accesses.append({
                    "attr": func.value.attr,
                    "method": method,
                    "guarded": guarded,
                    "write": True,
                    **_loc(node),
                })
        for child in ast.iter_child_nodes(node):
            visit(child, method, guarded)

    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in item.body:
                visit(child, item.name, False)

    if not uses_lock:
        return None
    # A subscript/augassign through self.attr loads the attribute, so
    # writes like ``self._counts[i] += 1`` are already recorded as
    # accesses; mark them as writes by post-processing augmented targets.
    return {
        "cls": cls.name,
        "accesses": accesses,
        "self_calls": self_calls,
        "methods": sorted(method_names),
    }


# ---------------------------------------------------------------------------
# Registry factory terms
# ---------------------------------------------------------------------------
def _literal_grids(module: ModuleInfo) -> Dict[str, int]:
    grids: Dict[str, int] = {}
    for node in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not isinstance(value, (ast.Tuple, ast.List)):
            continue
        try:
            length = len(ast.literal_eval(value))
        except (ValueError, SyntaxError, TypeError):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                grids[target.id] = length
    return grids


def _int_constants(module: ModuleInfo) -> Dict[str, dict]:
    constants: Dict[str, dict] = {}
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Constant
        ) and isinstance(node.value.value, int) and not isinstance(
            node.value.value, bool
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = {
                        "value": node.value.value, **_loc(node)
                    }
    return constants


class _Symbolic(Exception):
    """An expression whose count needs an unresolvable runtime value."""

    def __init__(self, expr: ast.AST):
        super().__init__(ast.unparse(expr))
        self.expr = expr


def _call_name(node: ast.AST) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts = [node.attr]
        value = node.value
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name):
            parts.append(value.id)
        return ".".join(reversed(parts))
    return ""


def _returned_name(factory: ast.FunctionDef) -> str:
    for node in ast.walk(factory):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
            return node.value.id
    return ""


def _iter_factors(node: ast.AST) -> List[Any]:
    """Symbolic length factors of an iterable expression: int literals
    and grid *names* (resolved project-wide at check time)."""
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, (ast.Tuple, ast.List)):
        return [len(node.elts)]
    if isinstance(node, ast.Call):
        path = _call_name(node)
        if path in ("product", "itertools.product"):
            factors: List[Any] = []
            for arg in node.args:
                factors.extend(_iter_factors(arg))
            return factors
        if path == "range" and all(
            isinstance(a, ast.Constant) for a in node.args
        ):
            return [len(range(*[a.value for a in node.args]))]
    raise _Symbolic(node)


def _noted_classes(node: ast.AST) -> List[str]:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return [func.id]
        if isinstance(func, ast.Attribute):
            return [func.attr]
    return []


def _count_contributions(node: ast.AST) -> List[dict]:
    """Symbolic configuration-count contributions of one expression."""
    if isinstance(node, ast.List):
        contributions: List[dict] = []
        for elt in node.elts:
            contributions.extend(_count_contributions(elt))
        return contributions
    if isinstance(node, ast.ListComp):
        factors: List[Any] = []
        try:
            if any(gen.ifs for gen in node.generators):
                raise _Symbolic(node)
            for gen in node.generators:
                factors.extend(_iter_factors(gen.iter))
        except _Symbolic as exc:
            return [{
                "unresolvable": str(exc), **_loc(exc.expr)
            }]
        return [{
            "factors": factors, "classes": _noted_classes(node.elt),
            **_loc(node),
        }]
    if isinstance(node, ast.Call):
        return [{
            "factors": [1], "classes": _noted_classes(node), **_loc(node)
        }]
    return [{"unresolvable": ast.unparse(node), **_loc(node)}]


def _factory_record(factory: ast.FunctionDef) -> dict:
    accumulator = _returned_name(factory)
    contributions: List[dict] = []
    for node in ast.walk(factory):
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == accumulator
                for t in node.targets
            ):
                contributions.extend(_count_contributions(node.value))
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == accumulator
                and node.value is not None
            ):
                contributions.extend(_count_contributions(node.value))
        elif isinstance(node, ast.AugAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == accumulator
                and isinstance(node.op, ast.Add)
            ):
                contributions.extend(_count_contributions(node.value))
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            if (
                isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == accumulator
            ):
                if call.func.attr == "append":
                    for arg in call.args:
                        contributions.append({
                            "factors": [1], "classes": _noted_classes(arg),
                            **_loc(call),
                        })
                elif call.func.attr == "extend":
                    for arg in call.args:
                        contributions.extend(_count_contributions(arg))
    referenced = sorted({
        n.id for n in ast.walk(factory) if isinstance(n, ast.Name)
    })
    return {
        "name": factory.name,
        **_loc(factory),
        "contributions": contributions,
        "referenced": referenced,
    }


# ---------------------------------------------------------------------------
# The summary builder
# ---------------------------------------------------------------------------
def summarize_module(
    module: ModuleInfo, suppressions: Dict[int, frozenset]
) -> dict:
    """Distil one parsed module into its JSON-serializable summary."""
    from ..rules.causality import scan_class  # late: avoid import cycles

    classes: List[dict] = []
    functions: List[dict] = []
    checkpoints: List[dict] = []
    locks: List[dict] = []
    causality: List[dict] = []
    factories: List[dict] = []

    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(_function_record(module, node, None))
            if node.name in FACTORY_NAMES and isinstance(
                node, ast.FunctionDef
            ):
                factories.append(_factory_record(node))

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = [
            item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        classes.append({
            "name": node.name,
            **_loc(node),
            "bases": base_names(node),
            "is_abstract": _is_abstract(node),
            "methods": [m.name for m in methods],
        })
        for method in methods:
            functions.append(_function_record(module, method, node.name))
        checkpoint = _checkpoint_records(module, node)
        if checkpoint is not None:
            checkpoints.append(checkpoint)
        lock = _lock_records(node)
        if lock is not None:
            locks.append(lock)
        causality.extend(scan_class(module, node))

    bindings = module.top_level_bindings()
    imports = sorted(
        name
        for name, node in bindings.items()
        if isinstance(node, (ast.Import, ast.ImportFrom))
    )

    return {
        "schema": SUMMARY_SCHEMA_VERSION,
        "path": module.display_path,
        "top_level": sorted(bindings),
        "imports": imports,
        "classes": classes,
        "functions": functions,
        "checkpoints": checkpoints,
        "obs": _obs_records(module),
        "locks": locks,
        "registry": {
            "grids": _literal_grids(module),
            "int_constants": _int_constants(module),
            "factories": factories,
        },
        "causality": causality,
        "suppressions": {
            str(line): sorted(rules) for line, rules in suppressions.items()
        },
    }
