"""The cross-module view one lint run hands to its project rules."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .callgraph import CallGraph


class ProjectIndex:
    """Every module summary of one run plus run-wide configuration.

    Project rules consume only this object, never raw ASTs — which is
    what lets the engine serve cached summaries on a warm run without
    re-parsing anything.
    """

    def __init__(
        self,
        summaries: List[dict],
        registry_exempt: Iterable[str] = (),
        worker_entry_points: Iterable[str] = (),
        obs_doc: Optional[Path] = None,
    ):
        self.summaries = sorted(summaries, key=lambda s: s["path"])
        self.registry_exempt = set(registry_exempt)
        self.worker_entry_points = list(worker_entry_points)
        #: Resolved path of the observability taxonomy document, if the
        #: run is configured to cross-check one.
        self.obs_doc = obs_doc
        self._callgraph: Optional[CallGraph] = None
        self._class_bases: Optional[Dict[str, Set[str]]] = None

    # ------------------------------------------------------------------
    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph(self.summaries)
        return self._callgraph

    # ------------------------------------------------------------------
    def iter_classes(self) -> Iterator[Tuple[dict, dict]]:
        """Yield ``(module summary, class record)`` project-wide."""
        for summary in self.summaries:
            for cls in summary["classes"]:
                yield summary, cls

    def class_names(self) -> Set[str]:
        return {cls["name"] for _, cls in self.iter_classes()}

    def subclasses_of(self, roots: Iterable[str]) -> Set[str]:
        """Class names transitively deriving from any root, by name.

        Resolution is by class *name* across the analysed module set, so
        a hierarchy split over files is followed without importing
        anything. Root names themselves are excluded.
        """
        if self._class_bases is None:
            bases: Dict[str, Set[str]] = {}
            for _, cls in self.iter_classes():
                bases.setdefault(cls["name"], set()).update(cls["bases"])
            self._class_bases = bases
        derived = set(roots)
        changed = True
        while changed:
            changed = False
            for name, base_set in self._class_bases.items():
                if name not in derived and base_set & derived:
                    derived.add(name)
                    changed = True
        return derived - set(roots)
