"""Rule registry: importing this package registers every built-in rule.

To add a rule: create a module here with a ``Rule`` subclass decorated
``@register``, import it below, and document it in
``docs/static_analysis.md``. The engine, ``--list-rules`` and the
config validation all read :data:`RULE_REGISTRY`, so registration is
the only wiring step.
"""

from .base import (
    RULE_REGISTRY,
    ModuleInfo,
    ProjectInfo,
    Rule,
    all_rules,
    register,
    subclasses_of,
)
from . import (  # noqa: F401
    causality,
    determinism,
    hygiene,
    registry_contract,
    worker_safety,
)

__all__ = [
    "RULE_REGISTRY",
    "ModuleInfo",
    "ProjectInfo",
    "Rule",
    "all_rules",
    "register",
    "subclasses_of",
]
