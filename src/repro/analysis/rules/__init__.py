"""Rule registry: importing this package registers every built-in rule.

To add a rule: create a module here with a ``Rule`` subclass decorated
``@register``, import it below, and document it in
``docs/static_analysis.md``. The engine, ``--list-rules`` and the
config validation all read :data:`RULE_REGISTRY`, so registration is
the only wiring step.
"""

from .base import (
    RULE_REGISTRY,
    ModuleInfo,
    Rule,
    all_rules,
    base_names,
    register,
)
from . import (  # noqa: F401
    causality,
    checkpoint_symmetry,
    determinism,
    hygiene,
    lock_discipline,
    obs_taxonomy,
    registry_contract,
    suppression_justification,
    worker_reachability,
)

__all__ = [
    "RULE_REGISTRY",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "base_names",
    "register",
]
