"""``worker-safety``: detectors must not mutate module-level state.

The ``process`` execution backend (see ``repro.core.execution``) fans
detector configurations out over a process pool. A detector that
mutates module-level state — a ``global`` rebind, an in-place update of
a module constant, a class-attribute write used as a shared cache —
still *works* under the serial and thread backends, but under the
process backend every mutation lands in some worker's private copy of
the module: results silently start depending on which worker ran which
configuration, and the bit-identical-across-backends guarantee breaks.

Flagged, inside any method of a ``Detector`` subclass (or of ``Detector``
itself):

* ``global`` statements — rebinding module state from a method;
* assignments / augmented assignments through a module-level name
  (``CACHE[key] = ...``, ``_TABLE.total += 1``) unless the name is
  rebound locally first;
* calls of known mutating methods (``append``, ``update``, ``add``, ...)
  on a module-level name;
* class-attribute writes (``cls.attr = ...``, ``type(self).attr = ...``,
  ``SomeDetector.attr = ...``) — per-process class state is just module
  state with extra steps.

Reading module-level constants (parameter grids, window tables) is of
course fine — only mutation is unsafe.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..finding import Finding, Severity, make_finding
from .base import ModuleInfo, ProjectInfo, Rule, register, subclasses_of

RULE_ID = "worker-safety"

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
    "appendleft", "extendleft", "fill", "put", "itemset", "rotate",
}

#: Receiver names that are never module-level state.
_LOCAL_RECEIVERS = {"self", "cls"}


def _base_name(node: ast.AST) -> str:
    """The root ``Name`` of an attribute/subscript chain, or ``""``."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return ""


def _local_names(function: ast.AST) -> Set[str]:
    """Names bound inside ``function``: arguments, assignment targets,
    loop/with/comprehension targets, local defs and imports."""
    names: Set[str] = set()
    assert isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = function.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not function:
                names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name.split(".")[0])
    return names


def _is_class_attribute_write(node: ast.AST, class_names: Set[str]) -> bool:
    """``cls.x`` / ``type(self).x`` / ``SomeDetectorClass.x`` targets."""
    if not isinstance(node, ast.Attribute):
        return False
    value = node.value
    if isinstance(value, ast.Name):
        return value.id == "cls" or value.id in class_names
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "type"
    ):
        return True
    return False


@register
class WorkerSafetyRule(Rule):
    id = RULE_ID
    description = (
        "detectors must not mutate module-level or class-level state "
        "(required by the process execution backend)"
    )
    default_severity = Severity.ERROR

    def check_project(self, project: ProjectInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        detector_classes = subclasses_of(project, {"Detector"})
        class_names = {node.name for _, node in detector_classes} | {"Detector"}
        for module, class_node in detector_classes:
            top_level = set(module.top_level_bindings())
            for item in class_node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    findings.extend(
                        self._check_method(
                            module, class_node, item, top_level, class_names
                        )
                    )
        return findings

    # ------------------------------------------------------------------
    def _check_method(
        self,
        module: ModuleInfo,
        class_node: ast.ClassDef,
        method: ast.AST,
        top_level: Set[str],
        class_names: Set[str],
    ) -> Iterable[Finding]:
        assert isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
        where = f"{class_node.name}.{method.name}"
        locals_ = _local_names(method)

        def shared(name: str) -> bool:
            return bool(name) and name in top_level and name not in locals_

        for node in ast.walk(method):
            if isinstance(node, ast.Global):
                yield make_finding(
                    module, node, self.id, self.default_severity,
                    f"{where} rebinds module globals "
                    f"({', '.join(node.names)}); detectors must stay "
                    "stateless across workers",
                    data={"symbol": ", ".join(node.names)},
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        name = _base_name(target)
                        if _is_class_attribute_write(target, class_names):
                            yield make_finding(
                                module, node, self.id, self.default_severity,
                                f"{where} writes a class attribute; "
                                "per-process class state breaks the "
                                "process backend",
                                data={"symbol": name or "type(...)"},
                            )
                        elif shared(name):
                            yield make_finding(
                                module, node, self.id, self.default_severity,
                                f"{where} mutates module-level "
                                f"{name!r}; detectors must not share "
                                "mutable module state",
                                data={"symbol": name},
                            )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                ):
                    name = _base_name(func.value)
                    if name in _LOCAL_RECEIVERS:
                        continue
                    if shared(name):
                        yield make_finding(
                            module, node, self.id, self.default_severity,
                            f"{where} calls {name}.{func.attr}(...) on "
                            "module-level state; detectors must not "
                            "mutate shared containers",
                            data={"symbol": f"{name}.{func.attr}"},
                        )
