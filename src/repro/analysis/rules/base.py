"""Rule protocol and the rule registry.

A rule declares an ``id``, a ``default_severity`` and one or both of:

* :meth:`Rule.check_module` — runs once per parsed module; for checks
  that only need one file's AST (randomness calls, except clauses...).
  Its findings are cached with the module, so it must depend on nothing
  but the module itself.
* :meth:`Rule.check_summaries` — runs once per lint run with the
  :class:`~repro.analysis.project.index.ProjectIndex` of every
  module's (possibly cached) summary; for cross-module contracts
  (detector registration, class hierarchies, call-graph reachability).
  Summary-based rules never see an AST, which is what keeps warm-cache
  runs parse-free.

Rules register themselves with :func:`register`, which is how the
engine, CLI ``--list-rules`` and the docs stay in sync: there is
exactly one list of rules, and it lives here.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Type

from ..finding import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..project.index import ProjectIndex


class Rule:
    """Base class for all lint rules."""

    #: Stable rule identifier used in reports, config and suppressions.
    id: str = ""
    #: One-line description shown by ``repro-lint --list-rules``.
    description: str = ""
    default_severity: Severity = Severity.ERROR

    def check_module(self, module: "ModuleInfo") -> Iterable[Finding]:
        return ()

    def check_summaries(self, index: "ProjectIndex") -> Iterable[Finding]:
        return ()


#: rule id -> rule class, in registration order.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule_cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    RULE_REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in RULE_REGISTRY.values()]


class ModuleInfo:
    """One parsed module: path, source, AST, and import resolution."""

    def __init__(self, display_path: str, source: str, tree: ast.Module):
        self.display_path = display_path
        self.source = source
        self.tree = tree
        self._import_map: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------
    # Import resolution
    # ------------------------------------------------------------------
    @property
    def import_map(self) -> Dict[str, str]:
        """Local name -> dotted module/object path it was imported as.

        ``import numpy as np``           -> ``{"np": "numpy"}``
        ``from numpy import random``     -> ``{"random": "numpy.random"}``
        ``from numpy.random import default_rng``
                                 -> ``{"default_rng": "numpy.random.default_rng"}``
        Relative imports keep their dots (``from .base import Detector``
        -> ``{"Detector": ".base.Detector"}``) — enough to recognise
        in-package origins without knowing the package root.
        """
        if self._import_map is None:
            mapping: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname:
                            mapping[alias.asname] = alias.name
                        else:
                            root = alias.name.split(".")[0]
                            mapping[root] = root
                elif isinstance(node, ast.ImportFrom):
                    prefix = "." * node.level + (node.module or "")
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        mapping[alias.asname or alias.name] = (
                            f"{prefix}.{alias.name}" if prefix else alias.name
                        )
            self._import_map = mapping
        return self._import_map

    def resolve(self, node: ast.AST) -> str:
        """Dotted path of a Name/Attribute chain with imports resolved.

        ``np.random.default_rng`` -> ``"numpy.random.default_rng"``;
        unresolvable expressions return ``""``.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return ""
        base = self.import_map.get(current.id, current.id)
        parts.append(base)
        return ".".join(reversed(parts))

    # ------------------------------------------------------------------
    def top_level_bindings(self) -> Dict[str, ast.AST]:
        """Names bound at module top level -> the binding node."""
        bound: Dict[str, ast.AST] = {}
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound[node.name] = node
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name.split(".")[0]
                    bound[name] = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            bound[name_node.id] = node
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                bound[node.target.id] = node
            elif isinstance(node, (ast.If, ast.Try)):
                # Common patterns: version-gated imports / defs.
                for child in ast.walk(node):
                    if isinstance(
                        child,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    ):
                        bound[child.name] = child
                    elif isinstance(child, (ast.Import, ast.ImportFrom)):
                        for alias in child.names:
                            if alias.name == "*":
                                continue
                            bound[alias.asname or alias.name.split(".")[0]] = child
                    elif isinstance(child, ast.Assign):
                        for target in child.targets:
                            for name_node in ast.walk(target):
                                if isinstance(name_node, ast.Name):
                                    bound[name_node.id] = child
        return bound


def base_names(node: ast.ClassDef) -> List[str]:
    """Unqualified base-class names of a class definition."""
    names: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names
