"""``worker-reachability``: process-pool workers must stay stateless.

The process backend in ``repro.core.execution`` forks workers that each
import the library fresh; any module- or class-level state a worker
mutates is silently process-local and never reaches the parent. Instead
of heuristically scanning ``Detector`` methods, this rule walks the
approximate project call graph from the configured worker entry points
(``_process_worker_run`` / ``_process_worker_attach`` by default, see
``[tool.repro-lint.worker-reachability] entry-points``) and flags every
*transitively reachable* function that:

* declares ``global`` and rebinds module names,
* writes class attributes (``cls.x = ...``, ``type(self).x = ...``,
  ``SomeClass.x = ...``),
* assigns through module-level state (``STATE["k"] = ...``), or
* calls a mutating method on module-level state (``CACHE.append(...)``).

Mutations of imported *modules* (``os``, ``np``) are out of scope here —
seeding is the determinism rule's job — as is instance state
(``self.x``), which is process-local by design. Each finding names the
call chain the mutation is reached through, so the fix (or the
justified suppression) is one hop away. The call graph resolves
dispatch by name only; functions invoked via ``getattr`` or stored
callables are invisible to it (documented in docs/static_analysis.md).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Set

from ..finding import Finding, Severity
from .base import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..project.index import ProjectIndex

RULE_ID = "worker-reachability"

#: Entry points used when the config does not override them.
DEFAULT_ENTRY_POINTS = ("_process_worker_run", "_process_worker_attach")


@register
class WorkerReachabilityRule(Rule):
    id = RULE_ID
    description = (
        "functions reachable from the process-backend worker entry points "
        "must not mutate module or class state (call-graph reachability)"
    )
    default_severity = Severity.ERROR

    def check_summaries(self, index: "ProjectIndex") -> Iterable[Finding]:
        entries = index.worker_entry_points or list(DEFAULT_ENTRY_POINTS)
        graph = index.callgraph
        parents = graph.reachable_from(entries)
        if not parents:
            return

        class_names = index.class_names()
        module_state: dict = {}
        for summary in index.summaries:
            imported = set(summary["imports"])
            module_state[summary["path"]] = (
                set(summary["top_level"]) - imported - class_names
            )

        for key in sorted(parents):
            summary, func = graph.units[key]
            chain = " -> ".join(graph.chain(key, parents))
            where = func["qualname"]
            shared = module_state[summary["path"]]
            yield from self._check_unit(
                summary, func, where, chain, shared, class_names
            )

    # ------------------------------------------------------------------
    def _check_unit(
        self, summary: dict, func: dict, where: str, chain: str,
        shared: Set[str], class_names: Set[str],
    ) -> Iterable[Finding]:
        def finding(record: dict, message: str, data: dict) -> Finding:
            data = dict(data, chain=chain)
            return Finding(
                file=summary["path"],
                line=record["lineno"],
                col=record.get("col", 0),
                rule=self.id,
                severity=self.default_severity,
                message=message,
                data=data,
            )

        for record in func["globals"]:
            names = ", ".join(record["names"])
            yield finding(
                record,
                f"{where} rebinds module globals ({names}) and is reachable "
                f"from the process backend via {chain}; worker-visible "
                f"state must stay process-local and explicit",
                {"kind": "global"},
            )

        for record in func["attr_writes"]:
            base = record["base"]
            if record["direct_attr"] and (
                base == "cls"
                or record["is_type_call"]
                or base in class_names
            ):
                yield finding(
                    record,
                    f"{where} writes a class attribute; per-process class "
                    f"state breaks the process backend (reachable via "
                    f"{chain})",
                    {"kind": "class-write"},
                )
            elif not record["is_local"] and base in shared:
                yield finding(
                    record,
                    f"{where} writes module-level {base!r}; workers never "
                    f"share it back with the parent (reachable via {chain})",
                    {"kind": "module-write"},
                )

        for record in func["mut_calls"]:
            if not record["is_local"] and record["base"] in shared:
                yield finding(
                    record,
                    f"{where} calls {record['base']}.{record['method']}(...) "
                    f"on module-level state; workers never share it back "
                    f"with the parent (reachable via {chain})",
                    {"kind": "module-mutation"},
                )
