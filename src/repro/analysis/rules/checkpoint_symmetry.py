"""``checkpoint-symmetry``: ``snapshot()`` and ``restore()`` must agree.

Fleet resume (``FleetManager.restore``/``MonitoringService``
``restore_snapshot``) is bit-identical only if every key a
``snapshot()`` writes is read back by the paired ``restore()`` — a key
stored but never restored silently drops state on resume, and a key
restored but never stored crashes on a real checkpoint. For every class
defining both ``snapshot()`` and ``restore()``/``restore_snapshot()``,
the summaries record:

* the statically enumerable snapshot keys (dict-literal entries and
  ``state["k"] = ...`` assignments), plus values that are provably not
  JSON-serializable (sets, bytes, numpy objects);
* the keys the restore body reads off its state argument
  (``state["k"]``, ``state.get("k")``, ``state.pop("k")``) through
  direct aliases only, so nested payload dicts don't count.

Either side can be *dynamic* — ``super().snapshot()`` delegation,
``self.__dict__`` walks, ``state.items()`` iteration — in which case
the key-set comparison that depends on it is skipped rather than
guessed: coverage needs a static restore, phantom-read detection a
static snapshot. ``state.get(...)`` reads are optional by construction
and never count as phantoms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..finding import Finding, Severity
from .base import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..project.index import ProjectIndex

RULE_ID = "checkpoint-symmetry"


@register
class CheckpointSymmetryRule(Rule):
    id = RULE_ID
    description = (
        "snapshot() keys must be read back by the paired restore() and "
        "stay JSON-serializable, so fleet resume cannot drop state"
    )
    default_severity = Severity.ERROR

    def check_summaries(self, index: "ProjectIndex") -> Iterable[Finding]:
        for summary in index.summaries:
            for record in summary["checkpoints"]:
                yield from self._check_pair(summary, record)

    # ------------------------------------------------------------------
    def _check_pair(self, summary: dict, record: dict) -> Iterable[Finding]:
        cls = record["cls"]
        snapshot = record["snapshot"]
        restore = record["restore"]

        def finding(loc: dict, message: str, data: dict) -> Finding:
            return Finding(
                file=summary["path"],
                line=loc["lineno"],
                col=loc["col"],
                rule=self.id,
                severity=self.default_severity,
                message=message,
                data=dict(data, cls=cls),
            )

        for entry in snapshot["unsafe"]:
            yield finding(
                entry,
                f"{cls}.snapshot() stores {entry['reason']} under key "
                f"{entry['key']!r}; snapshots must stay JSON-serializable "
                f"for on-disk fleet checkpoints",
                {"check": "json-unsafe", "key": entry["key"]},
            )

        snapshot_keys = {entry["key"] for entry in snapshot["keys"]}
        read_keys = {read["key"] for read in restore["reads"]}

        if not restore["dynamic"]:
            for entry in snapshot["keys"]:
                if entry["key"] not in read_keys:
                    yield finding(
                        entry,
                        f"{cls}.snapshot() stores key {entry['key']!r} but "
                        f"{restore['name']}() never reads it; fleet resume "
                        f"would silently drop that state",
                        {"check": "dropped-key", "key": entry["key"]},
                    )

        if not snapshot["dynamic"]:
            for read in restore["reads"]:
                if read["kind"] == "subscript" and read["key"] not in snapshot_keys:
                    yield finding(
                        read,
                        f"{cls}.{restore['name']}() requires key "
                        f"{read['key']!r} that snapshot() never writes; "
                        f"restoring a real checkpoint would raise KeyError",
                        {"check": "phantom-key", "key": read["key"]},
                    )
