"""``suppression-justification``: every disable carries a reason.

A ``# repro: disable=<rule>`` comment switches a contract check off for
a line or a whole definition; six months later nobody remembers why.
This rule makes the why part of the directive itself:

* a *bare* ``# repro: disable`` (no rule list) is always a finding —
  it silences every current and future rule at once;
* ``# repro: disable=<rule>`` without trailing justification text
  (``— reason`` / ``: reason``) is a finding.

Findings of this rule are deliberately **not suppressible** (the engine
exempts them from suppression filtering, like ``parse-error``) — the
directive being complained about sits on the very line the finding
anchors to and would otherwise swallow it.
"""

from __future__ import annotations

from typing import Iterable

from ..finding import Finding, Severity
from ..suppressions import iter_directives
from .base import ModuleInfo, Rule, register

RULE_ID = "suppression-justification"


@register
class SuppressionJustificationRule(Rule):
    id = RULE_ID
    description = (
        "every `# repro: disable=<rule>` names its rules and carries a "
        "trailing justification (`— reason`); bare disables are findings"
    )
    default_severity = Severity.ERROR

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for line, rules, justification in iter_directives(module.source):
            if rules is None:
                yield Finding(
                    file=module.display_path,
                    line=line,
                    col=0,
                    rule=self.id,
                    severity=self.default_severity,
                    message=(
                        "bare '# repro: disable' suppresses every rule, "
                        "current and future; name the rule(s) and add a "
                        "reason: '# repro: disable=<rule> — reason'"
                    ),
                    data={"check": "bare"},
                )
            elif not justification:
                listed = ",".join(sorted(rules))
                yield Finding(
                    file=module.display_path,
                    line=line,
                    col=0,
                    rule=self.id,
                    severity=self.default_severity,
                    message=(
                        f"suppression of {listed} has no justification; "
                        f"append one: '# repro: disable={listed} — reason'"
                    ),
                    data={"check": "unjustified", "rules": listed},
                )
