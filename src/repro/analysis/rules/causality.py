"""``no-lookahead``: detectors must be causal (§4.3.2 of the paper).

The severity of point *t* may use only points ``0..t`` — otherwise the
batch :meth:`severities` and online :meth:`stream` modes diverge and
training silently leaks the future into the features. This rule scans
the ``severities``/``stream`` bodies of every ``Detector`` subclass and
the ``update`` bodies of every ``SeverityStream`` subclass for the three
lookahead shapes that have actually bitten detector zoos:

1. **Forward indexing** — ``values[t + 1]`` (any ``name + positive
   int`` subscript index reads a future point relative to the loop
   variable).
2. **Forward slicing** — ``values[t + 1:]`` (a slice *starting* past
   the current point; slice *upper* bounds like ``values[t - w : t + 1]``
   are exclusive and therefore causal, so they are allowed).
3. **Whole-series aggregates** — ``np.mean(values)`` / ``values.std()``
   where ``values`` is the full input series. Statistics must come
   from a window or prefix; an aggregate over the whole series bakes
   future points into every severity. Derived arrays (``values[:t]``,
   ``values[mask]``) are windows, not the whole series, and are fine.
4. **Series reversal** — ``values[::-1]`` on the full series (an
   anti-causal traversal).

Aggregates are only flagged on names that *directly* alias the full
series: the ``series`` parameter's ``.values``, ``self._validate(series)``
results, or ``np.asarray(series.values)``. Anything reached through a
subscript breaks the alias, which keeps legitimate windowed statistics
(``prefix.mean()``, ``windows[:-1].std(axis=1)``) quiet.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, List, Set

from ..finding import Finding, Severity
from .base import ModuleInfo, Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..project.index import ProjectIndex

RULE_ID = "no-lookahead"

#: Method names whose bodies must be causal, per root class.
DETECTOR_METHODS = {"severities", "stream"}
STREAM_METHODS = {"update"}

#: Aggregate callables/methods that summarise a whole array.
AGGREGATE_FUNCS = {
    "mean", "std", "var", "median", "average", "sum", "max", "min",
    "percentile", "quantile", "ptp",
    "nanmean", "nanstd", "nanvar", "nanmedian", "nansum", "nanmax",
    "nanmin", "nanpercentile", "nanquantile",
}
AGGREGATE_METHODS = {"mean", "std", "var", "sum", "max", "min", "ptp"}


def _positive_int(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
        and node.value > 0
    )


def _is_forward_offset(node: ast.AST) -> bool:
    """``t + k`` / ``k + t`` with an integer constant ``k > 0``."""
    if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)):
        return False
    left, right = node.left, node.right
    return (isinstance(left, ast.Name) and _positive_int(right)) or (
        _positive_int(left) and isinstance(right, ast.Name)
    )


class _SeriesAliases(ast.NodeVisitor):
    """Names in a method body that alias the *entire* input series."""

    def __init__(self, series_param: str):
        self.series_param = series_param
        self.aliases: Set[str] = set()

    def _is_series_wide(self, node: ast.AST) -> bool:
        # series.values
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "values"
            and isinstance(node.value, ast.Name)
            and node.value.id == self.series_param
        ):
            return True
        # an existing alias
        if isinstance(node, ast.Name) and node.id in self.aliases:
            return True
        if isinstance(node, ast.Call):
            func = node.func
            # self._validate(series)
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "_validate"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == self.series_param
            ):
                return True
            # np.asarray(<series-wide>, ...) / np.ascontiguousarray(...)
            if (
                isinstance(func, ast.Attribute)
                and func.attr in {"asarray", "ascontiguousarray", "array"}
                and node.args
                and self._is_series_wide(node.args[0])
            ):
                return True
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_series_wide(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.aliases.add(target.id)
        else:
            # rebinding an alias to something derived clears it
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.aliases.discard(target.id)
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Summary-time scan: candidates, gated by hierarchy at project time
# ---------------------------------------------------------------------------
def _candidate(node: ast.AST, root: str, cls: str, message: str,
               shape: str, where: str) -> dict:
    return {
        "cls": cls,
        "root": root,
        "lineno": getattr(node, "lineno", 1),
        "col": getattr(node, "col_offset", 0),
        "message": message,
        "data": {"shape": shape, "method": where},
    }


def _scan_method(
    cls: ast.ClassDef, method: ast.FunctionDef, module: ModuleInfo, root: str
) -> Iterable[dict]:
    where = f"{cls.name}.{method.name}"
    args = method.args.posonlyargs + method.args.args
    series_param = args[1].arg if len(args) > 1 else ""
    alias_scan = _SeriesAliases(series_param)
    alias_scan.visit(method)
    aliases = alias_scan.aliases

    def series_wide(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in aliases
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "values"
            and isinstance(node.value, ast.Name)
            and node.value.id == series_param
        )

    for node in ast.walk(method):
        if isinstance(node, ast.Subscript):
            index = node.slice
            if isinstance(index, ast.Slice):
                if index.lower is not None and _is_forward_offset(index.lower):
                    yield _candidate(
                        node, root, cls.name,
                        f"{where}: slice starts past the current point "
                        f"({ast.unparse(index.lower)}); severities must be "
                        f"causal (§4.3.2)",
                        "forward-slice", where,
                    )
                if (
                    series_wide(node.value)
                    and isinstance(index.step, ast.UnaryOp)
                    and isinstance(index.step.op, ast.USub)
                    and _positive_int(index.step.operand)
                ):
                    yield _candidate(
                        node, root, cls.name,
                        f"{where}: reversing the input series traverses "
                        f"future-to-past; severities must be causal",
                        "reversal", where,
                    )
            elif _is_forward_offset(index):
                yield _candidate(
                    node, root, cls.name,
                    f"{where}: index {ast.unparse(index)} reads a future "
                    f"point; the severity of t may use only points 0..t",
                    "forward-index", where,
                )
        elif isinstance(node, ast.Call):
            func = node.func
            # np.mean(values) etc. — resolved through the module's imports.
            if isinstance(func, ast.Attribute) and func.attr in AGGREGATE_FUNCS:
                path = module.resolve(func)
                if (
                    path.startswith("numpy.")
                    and node.args
                    and series_wide(node.args[0])
                ):
                    yield _candidate(
                        node, root, cls.name,
                        f"{where}: whole-series aggregate "
                        f"{ast.unparse(func)}(...) over the full input bakes "
                        f"future points into every severity; aggregate a "
                        f"window or prefix instead",
                        "whole-series-aggregate", where,
                    )
                    continue
            # values.mean() etc. — method call on a series-wide alias.
            if (
                isinstance(func, ast.Attribute)
                and func.attr in AGGREGATE_METHODS
                and series_wide(func.value)
            ):
                yield _candidate(
                    node, root, cls.name,
                    f"{where}: whole-series aggregate .{func.attr}() over "
                    f"the full input bakes future points into every "
                    f"severity; aggregate a window or prefix instead",
                    "whole-series-aggregate", where,
                )


def scan_class(module: ModuleInfo, cls: ast.ClassDef) -> List[dict]:
    """Candidate lookahead findings for one class, hierarchy-agnostic.

    Runs at summary time on *every* class defining a ``severities``/
    ``stream``/``update`` method. Each candidate records the root class
    (``Detector`` or ``SeverityStream``) whose subclasses the contract
    binds; :class:`NoLookaheadRule` keeps only candidates whose class is
    actually in that hierarchy once the cross-module class graph is
    known — so a ``Smoother.severities`` on an unrelated class stays
    quiet without re-parsing anything.
    """
    candidates: List[dict] = []
    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name in DETECTOR_METHODS:
            candidates.extend(_scan_method(cls, item, module, "Detector"))
        elif item.name in STREAM_METHODS:
            candidates.extend(
                _scan_method(cls, item, module, "SeverityStream")
            )
    return candidates


@register
class NoLookaheadRule(Rule):
    id = RULE_ID
    description = (
        "detector severities()/stream() bodies must not read future points "
        "(forward indexing/slicing, whole-series aggregates, reversal)"
    )
    default_severity = Severity.ERROR

    def check_summaries(self, index: "ProjectIndex") -> Iterable[Finding]:
        members: Dict[str, Set[str]] = {
            "Detector": index.subclasses_of(["Detector"]),
            "SeverityStream": index.subclasses_of(["SeverityStream"]),
        }
        for summary in index.summaries:
            for candidate in summary["causality"]:
                if candidate["cls"] not in members[candidate["root"]]:
                    continue
                yield Finding(
                    file=summary["path"],
                    line=candidate["lineno"],
                    col=candidate["col"],
                    rule=self.id,
                    severity=self.default_severity,
                    message=candidate["message"],
                    data=dict(candidate["data"]),
                )
