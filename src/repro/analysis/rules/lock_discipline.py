"""``lock-discipline``: guarded attributes stay guarded everywhere.

In every class that takes ``with self._lock:`` anywhere (the fleet
manager, ``SeverityCache``, the obs registries), an attribute accessed
under the lock in one method and without it in another is a data race
waiting for the first concurrent caller. From the per-class lock tables
in the module summaries, the rule computes:

* the *guarded set* — attributes with at least one access lexically
  inside a ``with self._lock:`` block, or inside a **lock-held helper**
  (a method whose intra-class call sites are all guarded — fixpoint
  inference, so ``_remember()`` called only under the lock counts as
  guarded without holding the lock itself);
* the exemptions — ``__init__``/``__new__``/``__del__`` run before or
  after sharing, and attributes written *only* in ``__init__`` are
  immutable configuration that is safe to read unguarded.

Every remaining unguarded access to a guarded attribute is a finding.
Subscript stores (``self._counts[i] += 1``) and in-place mutator calls
(``self._buf.append(x)``) count as writes, so container mutation cannot
masquerade as immutable config.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Set

from ..finding import Finding, Severity
from .base import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..project.index import ProjectIndex

RULE_ID = "lock-discipline"

_EXEMPT_METHODS = {"__init__", "__new__", "__del__"}


def _lock_held_methods(record: dict) -> Set[str]:
    """Methods only ever entered with the lock already held (fixpoint)."""
    calls_by_callee: Dict[str, List[dict]] = {}
    for call in record["self_calls"]:
        calls_by_callee.setdefault(call["callee"], []).append(call)
    held: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for callee, calls in calls_by_callee.items():
            if callee in held or callee in _EXEMPT_METHODS:
                continue
            if all(
                call["guarded"] or call["caller"] in held for call in calls
            ):
                held.add(callee)
                changed = True
    return held


@register
class LockDisciplineRule(Rule):
    id = RULE_ID
    description = (
        "attributes accessed under `with self._lock:` in one method must "
        "be accessed under it everywhere in the class"
    )
    default_severity = Severity.ERROR

    def check_summaries(self, index: "ProjectIndex") -> Iterable[Finding]:
        for summary in index.summaries:
            for record in summary["locks"]:
                yield from self._check_class(summary, record)

    # ------------------------------------------------------------------
    def _check_class(self, summary: dict, record: dict) -> Iterable[Finding]:
        held = _lock_held_methods(record)

        def effective(access: dict) -> bool:
            return access["guarded"] or access["method"] in held

        accesses = [
            access
            for access in record["accesses"]
            if access["method"] not in _EXEMPT_METHODS
        ]
        guarded_attrs = {
            access["attr"] for access in accesses if effective(access)
        }
        # Attributes written only in __init__ are immutable configuration
        # and safe to read unguarded, however defensively other methods
        # lock around them.
        written_later = {
            access["attr"]
            for access in record["accesses"]
            if access["write"] and access["method"] != "__init__"
        }
        checked = guarded_attrs & written_later

        for access in accesses:
            attr = access["attr"]
            if attr not in checked or effective(access):
                continue
            action = "writes" if access["write"] else "reads"
            yield Finding(
                file=summary["path"],
                line=access["lineno"],
                col=access["col"],
                rule=self.id,
                severity=self.default_severity,
                message=(
                    f"{record['cls']}.{access['method']} {action} "
                    f"self.{attr} without holding self._lock, but other "
                    f"methods guard it; lock it here too or move the "
                    f"access into a lock-held helper"
                ),
                data={"cls": record["cls"], "attr": attr,
                      "method": access["method"]},
            )
