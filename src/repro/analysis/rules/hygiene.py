"""``api-hygiene``: small API contracts that rot silently.

* **Broad exception handlers** — ``except:`` / ``except Exception:`` /
  ``except BaseException:`` swallow ``TimeSeriesError`` and
  ``DetectorError`` alike, hiding the contract violations the rest of
  this linter exists to surface. Catch the specific exception the
  callee documents; a deliberate catch-all (top-level CLI guard) takes
  a ``# repro: disable=api-hygiene`` with a justification.
* **Mutable default arguments** — ``def f(x=[])`` shares one list
  across calls; use ``None`` plus an in-body default.
* **``__all__`` drift** — a name exported in ``__all__`` that is not
  actually bound in the module breaks ``from m import *`` and lies to
  readers; a public top-level def/class missing from an existing
  ``__all__`` is reported as a warning (it is invisible to
  ``import *`` consumers).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..finding import Finding, Severity, make_finding
from .base import ModuleInfo, Rule, register

RULE_ID = "api-hygiene"

_BROAD = {"Exception", "BaseException"}
_MUTABLE_CALLS = {"list", "dict", "set"}


def _broad_name(node: Optional[ast.expr]) -> Optional[str]:
    """The broad exception name matched by a handler type, if any."""
    if node is None:
        return "bare"
    if isinstance(node, ast.Name) and node.id in _BROAD:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in _BROAD:
        return node.attr
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            name = _broad_name(elt)
            if name:
                return name
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """A handler whose every path re-raises is a narrowing wrapper, not
    a swallow — ``except Exception as e: raise Wrapped(...) from e``."""
    last = handler.body[-1] if handler.body else None
    return isinstance(last, ast.Raise)


@register
class ApiHygieneRule(Rule):
    id = RULE_ID
    description = (
        "no bare/broad except, no mutable default args, __all__ matches "
        "the module's actual public bindings"
    )
    default_severity = Severity.ERROR

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                findings.extend(self._check_handler(module, node))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_defaults(module, node))
        findings.extend(self._check_all(module))
        return findings

    # ------------------------------------------------------------------
    def _check_handler(
        self, module: ModuleInfo, node: ast.ExceptHandler
    ) -> Iterable[Finding]:
        name = _broad_name(node.type)
        if name is None or _reraises(node):
            return
        what = "bare except:" if name == "bare" else f"except {name}:"
        yield make_finding(
            module, node, self.id, self.default_severity,
            f"{what} swallows unrelated failures; catch the specific "
            f"exception the callee raises (or re-raise)",
            data={"check": "broad-except"},
        )

    def _check_defaults(
        self, module: ModuleInfo, node: ast.FunctionDef
    ) -> Iterable[Finding]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            )
            if mutable:
                yield make_finding(
                    module, default, self.id, self.default_severity,
                    f"{node.name}(): mutable default argument is shared "
                    f"across calls; default to None and create it in the "
                    f"body",
                    data={"check": "mutable-default"},
                )

    def _check_all(self, module: ModuleInfo) -> Iterable[Finding]:
        exported: Optional[Set[str]] = None
        all_node: Optional[ast.AST] = None
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                if isinstance(node.value, (ast.List, ast.Tuple)) and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in node.value.elts
                ):
                    exported = {e.value for e in node.value.elts}
                    all_node = node
        if exported is None:
            return
        has_star = any(
            alias.name == "*"
            for node in module.tree.body
            if isinstance(node, ast.ImportFrom)
            for alias in node.names
        )
        if has_star:
            return  # cannot see what * bound; skip rather than guess
        bound = module.top_level_bindings()
        for name in sorted(exported - set(bound)):
            yield make_finding(
                module, all_node, self.id, self.default_severity,
                f"__all__ exports {name!r} but the module never binds it",
                data={"check": "all-undefined", "name": name},
            )
        for node in module.tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                and not node.name.startswith("_")
                and node.name not in exported
            ):
                yield make_finding(
                    module, node, self.id, Severity.WARNING,
                    f"public {node.name!r} is missing from __all__ "
                    f"(invisible to `from module import *`)",
                    data={"check": "all-missing", "name": node.name},
                )
