"""``determinism``: library code must not draw unseeded randomness.

Opprentice's results are reproducible run-to-run: the random forest, the
synthetic KPI generator and the significance tests all thread an
explicit seed into ``numpy.random.default_rng(seed)``. A single call to
the *global* NumPy RNG (``np.random.normal(...)``), an unseeded
``default_rng()``, or the stdlib ``random`` module's global functions
breaks that guarantee invisibly — the tests still pass, the numbers
just stop being reproducible.

Flagged:

* any ``numpy.random.<fn>(...)`` call that uses the global RNG
  (``seed``, ``normal``, ``rand``, ``shuffle``, ...);
* ``numpy.random.default_rng()`` with no arguments or an explicit
  ``None`` seed;
* ``numpy.random.RandomState()`` with no arguments;
* stdlib ``random.<fn>(...)`` global-state calls (``random.random``,
  ``random.seed``, ...) — ``random.Random(seed)`` instances are fine.

Allowed: calls on RNG *instances* (``rng.normal(...)``), seeded
``default_rng(seed)``/``Random(seed)``, and ``numpy.random`` names used
purely in type annotations.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..finding import Finding, Severity, make_finding
from .base import ModuleInfo, Rule, register

RULE_ID = "determinism"

#: Constructors that are deterministic when given a seed argument.
_SEEDED_OK = {"default_rng", "RandomState", "Random", "Generator", "SeedSequence",
              "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}


def _first_arg_is_none(node: ast.Call) -> bool:
    return bool(node.args) and (
        isinstance(node.args[0], ast.Constant) and node.args[0].value is None
    )


def _has_seed(node: ast.Call) -> bool:
    if node.args and not _first_arg_is_none(node):
        return True
    for keyword in node.keywords:
        if keyword.arg == "seed" and not (
            isinstance(keyword.value, ast.Constant) and keyword.value.value is None
        ):
            return True
    return False


@register
class DeterminismRule(Rule):
    id = RULE_ID
    description = (
        "no global-RNG or unseeded randomness in library code; use "
        "numpy.random.default_rng(seed) / random.Random(seed)"
    )
    default_severity = Severity.ERROR

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            path = module.resolve(node.func)
            if not path:
                continue
            if path.startswith("numpy.random."):
                findings.extend(self._check_numpy(module, node, path))
            elif path.startswith("random."):
                findings.extend(self._check_stdlib(module, node, path))
        return findings

    def _check_numpy(
        self, module: ModuleInfo, node: ast.Call, path: str
    ) -> Iterable[Finding]:
        leaf = path.rsplit(".", 1)[1]
        if leaf in _SEEDED_OK:
            if leaf in {"Generator", "SeedSequence", "PCG64", "PCG64DXSM",
                        "Philox", "SFC64", "MT19937"}:
                return  # bit-generator plumbing; seeding checked at its call
            if _has_seed(node):
                return
            yield make_finding(
                module, node, self.id, self.default_severity,
                f"numpy.random.{leaf}() without a seed is irreproducible; "
                f"pass an explicit seed (e.g. default_rng(seed))",
                data={"symbol": path},
            )
            return
        yield make_finding(
            module, node, self.id, self.default_severity,
            f"numpy.random.{leaf}(...) uses the process-global RNG; "
            f"thread a numpy.random.default_rng(seed) Generator instead",
            data={"symbol": path},
        )

    def _check_stdlib(
        self, module: ModuleInfo, node: ast.Call, path: str
    ) -> Iterable[Finding]:
        leaf = path.rsplit(".", 1)[1]
        if leaf == "Random":
            if _has_seed(node):
                return
            yield make_finding(
                module, node, self.id, self.default_severity,
                "random.Random() without a seed is irreproducible; "
                "pass an explicit seed",
                data={"symbol": path},
            )
            return
        yield make_finding(
            module, node, self.id, self.default_severity,
            f"random.{leaf}(...) uses the interpreter-global RNG; "
            f"use a seeded random.Random(seed) instance instead",
            data={"symbol": path},
        )
