"""``obs-taxonomy``: the observability name inventory stays coherent.

Every literal metric/span/event name passed to the ``repro.obs`` facade
(``counter``/``gauge``/``histogram``/``timer``/``span``/``emit``) is
extracted at summary time, including names routed through same-module
string constants (``SPAN_SECONDS_METRIC``). Across the project the rule
then checks:

* **kind consistency** — one metric name never registers as two
  different instrument kinds (``counter`` vs ``gauge``);
* **label-key consistency** — every call site of one name passes the
  same label-key set as the first (canonical) site, so Prometheus-style
  exporters never see a label schema change mid-run;
* **documentation** — when ``[tool.repro-lint.obs-taxonomy] doc`` points
  at ``docs/observability.md``, every name used in code appears in a
  doc table (backticked, first column) and every documented name is
  still used somewhere — undocumented *and* stale names fail.

Names passed as variables/attributes from other modules are dynamic and
skipped; the delegating provider methods therefore don't double-count.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from ..finding import Finding, Severity
from .base import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..project.index import ProjectIndex

RULE_ID = "obs-taxonomy"

#: APIs that register a metric *instrument* (kind must be consistent).
METRIC_APIS = {"counter", "gauge", "histogram", "timer"}

#: ``timer`` is sugar over a histogram; treat them as one kind.
_KIND_ALIASES = {"timer": "histogram"}

#: A backticked name inside a markdown table cell.
_DOC_NAME = re.compile(r"`([^`]+)`")


def _doc_names(text: str) -> Dict[str, int]:
    """Documented name -> line number, from the taxonomy tables.

    Only the *first* column of each table row is inventoried, but one
    cell may document several names (``| `alert_opened` /
    `alert_closed` | ...``) — every backticked token in it counts.
    """
    names: Dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            continue
        first_cell = stripped[1:].split("|", 1)[0]
        for name in _DOC_NAME.findall(first_cell):
            names.setdefault(name, lineno)
    return names


@register
class ObsTaxonomyRule(Rule):
    id = RULE_ID
    description = (
        "repro.obs metric/span/event names use consistent label keys and "
        "instrument kinds, and match the docs/observability.md inventory"
    )
    default_severity = Severity.ERROR

    def check_summaries(self, index: "ProjectIndex") -> Iterable[Finding]:
        sites: Dict[str, List[Tuple[dict, dict]]] = {}
        for summary in index.summaries:
            for site in summary["obs"]:
                if site["name"] is not None:
                    sites.setdefault(site["name"], []).append((summary, site))

        for name in sorted(sites):
            yield from self._check_name(name, sites[name])
        yield from self._check_doc(index, sites)

    # ------------------------------------------------------------------
    def _check_name(
        self, name: str, occurrences: List[Tuple[dict, dict]]
    ) -> Iterable[Finding]:
        def finding(summary: dict, site: dict, message: str,
                    data: dict) -> Finding:
            return Finding(
                file=summary["path"],
                line=site["lineno"],
                col=site["col"],
                rule=self.id,
                severity=self.default_severity,
                message=message,
                data=dict(data, name=name),
            )

        metric_sites = [
            (summary, site)
            for summary, site in occurrences
            if site["api"] in METRIC_APIS
        ]
        if metric_sites:
            canonical_summary, canonical = metric_sites[0]
            kind = _KIND_ALIASES.get(canonical["api"], canonical["api"])
            for summary, site in metric_sites[1:]:
                site_kind = _KIND_ALIASES.get(site["api"], site["api"])
                if site_kind != kind:
                    yield finding(
                        summary, site,
                        f"metric {name!r} is registered as a {site_kind} "
                        f"here but as a {kind} at "
                        f"{canonical_summary['path']}:"
                        f"{canonical['lineno']}; one name, one instrument "
                        f"kind",
                        {"check": "kind-mismatch"},
                    )

        label_sites = [
            (summary, site)
            for summary, site in occurrences
            if not site["labels_dynamic"]
        ]
        if label_sites:
            canonical_summary, canonical = label_sites[0]
            labels = canonical["labels"]
            for summary, site in label_sites[1:]:
                if site["labels"] != labels:
                    yield finding(
                        summary, site,
                        f"{name!r} is called with label keys "
                        f"{site['labels']} here but {labels} at "
                        f"{canonical_summary['path']}:{canonical['lineno']}; "
                        f"label keys must be identical at every call site",
                        {"check": "label-mismatch"},
                    )

    # ------------------------------------------------------------------
    def _check_doc(
        self, index: "ProjectIndex", sites: Dict[str, List[Tuple[dict, dict]]]
    ) -> Iterable[Finding]:
        doc = index.obs_doc
        if doc is None or not doc.is_file():
            return  # the run is not configured to cross-check docs
        documented = _doc_names(doc.read_text(encoding="utf-8"))
        try:
            doc_display = doc.resolve().relative_to(Path.cwd()).as_posix()
        except ValueError:
            doc_display = doc.as_posix()

        for name in sorted(set(sites) - set(documented)):
            summary, site = sites[name][0]
            yield Finding(
                file=summary["path"],
                line=site["lineno"],
                col=site["col"],
                rule=self.id,
                severity=self.default_severity,
                message=(
                    f"{site['api']} name {name!r} is not documented in "
                    f"{doc_display}; add it to the taxonomy table"
                ),
                data={"check": "undocumented", "name": name},
            )
        # Dynamic names with a literal f-string head (f"alert_{kind}")
        # can't be matched exactly; a documented name covered by such a
        # prefix is assumed emitted rather than reported stale.
        prefixes = {
            site["prefix"]
            for summary in index.summaries
            for site in summary["obs"]
            if site["name"] is None and site.get("prefix")
        }
        for name in sorted(set(documented) - set(sites)):
            if any(name.startswith(prefix) for prefix in prefixes):
                continue
            yield Finding(
                file=doc_display,
                line=documented[name],
                col=0,
                rule=self.id,
                severity=self.default_severity,
                message=(
                    f"documented name {name!r} is never emitted by any "
                    f"analysed module; remove the stale taxonomy row or "
                    f"restore the instrumentation"
                ),
                data={"check": "stale", "name": name},
            )
