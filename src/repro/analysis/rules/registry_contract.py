"""``registry-contract``: the detector bank matches Table 3, statically.

Two contracts from ``repro.detectors.registry``:

1. **Reachability** — every concrete public ``Detector`` subclass in the
   analysed modules is constructed somewhere inside a registry factory
   (``default_detectors`` / ``extended_detectors``). A detector that is
   defined but never registered silently drops out of the feature
   matrix; that is exactly the "detector zoo drift" failure this rule
   exists to catch. Intentionally unregistered detectors are listed in
   ``[tool.repro-lint.registry-contract] exempt = [...]`` or carry a
   ``# repro: disable=registry-contract`` comment on their class line.

2. **Grid arithmetic** — ``EXPECTED_CONFIGURATIONS`` and
   ``EXPECTED_DETECTORS`` are re-derived from the AST of
   ``default_detectors`` itself: list literals count their elements,
   comprehensions multiply the lengths of their (statically resolvable)
   parameter grids, ``itertools.product(A, B)`` multiplies, and
   ``.append(...)`` adds one. If someone widens ``MA_WINDOWS`` without
   updating ``EXPECTED_CONFIGURATIONS`` (or vice versa), the mismatch is
   reported with both numbers.

Parameter grids (``MA_WINDOWS = (10, 20, ...)``) are resolved from
top-level literal assignments across the whole analysed module set, so
grids living next to their detector still count. The whole check runs
off cached module summaries: factory bodies are distilled into symbolic
contribution terms (integer factors and grid *names*) at summary time,
and the grid names are resolved here once every module is known.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Set

from ..finding import Finding, Severity
from .base import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..project.index import ProjectIndex

RULE_ID = "registry-contract"

#: Functions that register detectors into the bank (also recognised at
#: summary time, see ``repro.analysis.project.summary.FACTORY_NAMES``).
FACTORY_NAMES = {"default_detectors", "extended_detectors"}
#: The factory whose size Table 3 pins down.
COUNTED_FACTORY = "default_detectors"

EXPECTED_CONFIGS_NAME = "EXPECTED_CONFIGURATIONS"
EXPECTED_DETECTORS_NAME = "EXPECTED_DETECTORS"


def _finding(summary: dict, record: dict, severity: Severity,
             message: str, data: Dict[str, str]) -> Finding:
    return Finding(
        file=summary["path"],
        line=record.get("lineno", 1),
        col=record.get("col", 0),
        rule=RULE_ID,
        severity=severity,
        message=message,
        data=data,
    )


@register
class RegistryContractRule(Rule):
    id = RULE_ID
    description = (
        "every concrete Detector subclass is registered in the default "
        "bank (or exempted); EXPECTED_* constants match the statically "
        "derived Table 3 grid counts"
    )
    default_severity = Severity.ERROR

    def check_summaries(self, index: "ProjectIndex") -> Iterable[Finding]:
        findings: List[Finding] = []
        findings.extend(self._check_reachability(index))
        findings.extend(self._check_grid_counts(index))
        return findings

    # ------------------------------------------------------------------
    def _concrete_detectors(self, index: "ProjectIndex") -> Set[str]:
        detector_subs = index.subclasses_of(["Detector"])
        return {
            cls["name"]
            for _, cls in index.iter_classes()
            if cls["name"] in detector_subs
            and not cls["name"].startswith("_")
            and not cls["is_abstract"]
        }

    def _check_reachability(self, index: "ProjectIndex") -> Iterable[Finding]:
        referenced: Set[str] = set()
        for summary in index.summaries:
            for factory in summary["registry"]["factories"]:
                referenced.update(factory["referenced"])

        concrete = self._concrete_detectors(index)
        for summary in index.summaries:
            for cls in summary["classes"]:
                if cls["name"] not in concrete:
                    continue
                if cls["name"] in referenced or cls["name"] in index.registry_exempt:
                    continue
                yield _finding(
                    summary, cls, self.default_severity,
                    f"detector {cls['name']!r} is not reachable from any "
                    f"registry factory ({', '.join(sorted(FACTORY_NAMES))}); "
                    f"register it or exempt it in "
                    f"[tool.repro-lint.registry-contract]",
                    data={"detector": cls["name"], "check": "reachability"},
                )

    # ------------------------------------------------------------------
    def _check_grid_counts(self, index: "ProjectIndex") -> Iterable[Finding]:
        grids: Dict[str, int] = {}
        for summary in index.summaries:
            grids.update(summary["registry"]["grids"])

        for summary in index.summaries:
            registry = summary["registry"]
            for factory in registry["factories"]:
                if factory["name"] != COUNTED_FACTORY:
                    continue
                expected_configs = registry["int_constants"].get(
                    EXPECTED_CONFIGS_NAME
                )
                expected_detectors = registry["int_constants"].get(
                    EXPECTED_DETECTORS_NAME
                )
                if expected_configs is None and expected_detectors is None:
                    continue  # module does not pin the bank size
                yield from self._check_one_factory(
                    index, summary, factory, grids,
                    expected_configs, expected_detectors,
                )

    def _check_one_factory(
        self, index, summary, factory, grids,
        expected_configs, expected_detectors,
    ) -> Iterable[Finding]:
        derived = 0
        classes_used: Set[str] = set()
        for term in factory["contributions"]:
            unresolved = term.get("unresolvable")
            if unresolved is None:
                # an unknown grid name makes the term symbolic too
                unresolved = next(
                    (f for f in term["factors"]
                     if isinstance(f, str) and f not in grids),
                    None,
                )
            if unresolved is not None:
                yield _finding(
                    summary, term, Severity.WARNING,
                    f"cannot statically derive the configuration count of "
                    f"{factory['name']}(): unresolvable grid {unresolved}",
                    data={"check": "grid-unresolvable"},
                )
                return
            count = 1
            for factor in term["factors"]:
                count *= grids[factor] if isinstance(factor, str) else factor
            derived += count
            classes_used.update(term["classes"])

        if expected_configs is not None and derived != expected_configs["value"]:
            yield _finding(
                summary, expected_configs, self.default_severity,
                f"{EXPECTED_CONFIGS_NAME} = {expected_configs['value']} but "
                f"the parameter grids in {factory['name']}() produce "
                f"{derived} configurations; Table 3 and the code have "
                f"drifted",
                data={"check": "config-count", "derived": str(derived)},
            )
        concrete = self._concrete_detectors(index)
        used = classes_used & concrete if concrete else classes_used
        if expected_detectors is not None and len(used) != expected_detectors["value"]:
            yield _finding(
                summary, expected_detectors, self.default_severity,
                f"{EXPECTED_DETECTORS_NAME} = {expected_detectors['value']} "
                f"but {factory['name']}() constructs {len(used)} distinct "
                f"detector classes ({', '.join(sorted(used))})",
                data={"check": "detector-count", "derived": str(len(used))},
            )
