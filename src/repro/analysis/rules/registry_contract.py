"""``registry-contract``: the detector bank matches Table 3, statically.

Two contracts from ``repro.detectors.registry``:

1. **Reachability** — every concrete public ``Detector`` subclass in the
   analysed modules is constructed somewhere inside a registry factory
   (``default_detectors`` / ``extended_detectors``). A detector that is
   defined but never registered silently drops out of the feature
   matrix; that is exactly the "detector zoo drift" failure this rule
   exists to catch. Intentionally unregistered detectors are listed in
   ``[tool.repro-lint.registry-contract] exempt = [...]`` or carry a
   ``# repro: disable=registry-contract`` comment on their class line.

2. **Grid arithmetic** — ``EXPECTED_CONFIGURATIONS`` and
   ``EXPECTED_DETECTORS`` are re-derived from the AST of
   ``default_detectors`` itself: list literals count their elements,
   comprehensions multiply the lengths of their (statically resolvable)
   parameter grids, ``itertools.product(A, B)`` multiplies, and
   ``.append(...)`` adds one. If someone widens ``MA_WINDOWS`` without
   updating ``EXPECTED_CONFIGURATIONS`` (or vice versa), the mismatch is
   reported with both numbers.

Parameter grids (``MA_WINDOWS = (10, 20, ...)``) are resolved from
top-level literal assignments across the whole analysed module set, so
grids living next to their detector still count.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..finding import Finding, Severity, make_finding
from .base import ModuleInfo, ProjectInfo, Rule, base_names, register, subclasses_of

RULE_ID = "registry-contract"

#: Functions that register detectors into the bank.
FACTORY_NAMES = {"default_detectors", "extended_detectors"}
#: The factory whose size Table 3 pins down.
COUNTED_FACTORY = "default_detectors"

EXPECTED_CONFIGS_NAME = "EXPECTED_CONFIGURATIONS"
EXPECTED_DETECTORS_NAME = "EXPECTED_DETECTORS"


class _Unresolvable(Exception):
    """A grid length could not be derived statically."""

    def __init__(self, expr: ast.AST):
        super().__init__(ast.unparse(expr))
        self.expr = expr


def _literal_grids(project: ProjectInfo) -> Dict[str, int]:
    """Lengths of top-level literal tuple/list constants, project-wide."""
    grids: Dict[str, int] = {}
    for module in project.modules:
        for node in module.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not isinstance(value, (ast.Tuple, ast.List)):
                continue
            try:
                length = len(ast.literal_eval(value))
            except (ValueError, SyntaxError, TypeError):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    grids[target.id] = length
    return grids


class _FactoryCounter:
    """Static configuration count of one registry factory function."""

    def __init__(self, grids: Dict[str, int]):
        self.grids = grids
        self.classes_used: Set[str] = set()

    # -- length of an iterable expression --------------------------------
    def _iter_len(self, node: ast.AST) -> int:
        if isinstance(node, ast.Name):
            if node.id in self.grids:
                return self.grids[node.id]
            raise _Unresolvable(node)
        if isinstance(node, (ast.Tuple, ast.List)):
            return len(node.elts)
        if isinstance(node, ast.Call):
            path = _call_name(node)
            if path in {"product", "itertools.product"}:
                total = 1
                for arg in node.args:
                    total *= self._iter_len(arg)
                return total
            if path == "range" and all(
                isinstance(a, ast.Constant) for a in node.args
            ):
                return len(range(*[a.value for a in node.args]))
        raise _Unresolvable(node)

    # -- number of detectors one expression contributes ------------------
    def count_expr(self, node: ast.AST) -> int:
        if isinstance(node, ast.List):
            return sum(self.count_expr(elt) for elt in node.elts)
        if isinstance(node, ast.ListComp):
            total = 1
            for generator in node.generators:
                if generator.ifs:
                    raise _Unresolvable(node)
                total *= self._iter_len(generator.iter)
            self._note_class(node.elt)
            return total
        if isinstance(node, ast.Call):
            self._note_class(node)
            return 1
        raise _Unresolvable(node)

    def _note_class(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                self.classes_used.add(func.id)
            elif isinstance(func, ast.Attribute):
                self.classes_used.add(func.attr)

    # -- walk the factory body -------------------------------------------
    def count(self, factory: ast.FunctionDef) -> int:
        accumulator = _returned_name(factory)
        total = 0
        for node in ast.walk(factory):
            if isinstance(node, ast.Assign):
                if any(
                    isinstance(t, ast.Name) and t.id == accumulator
                    for t in node.targets
                ):
                    total += self.count_expr(node.value)
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id == accumulator
                    and node.value is not None
                ):
                    total += self.count_expr(node.value)
            elif isinstance(node, ast.AugAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id == accumulator
                    and isinstance(node.op, ast.Add)
                ):
                    total += self.count_expr(node.value)
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                if (
                    isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == accumulator
                ):
                    if call.func.attr == "append":
                        for arg in call.args:
                            self._note_class(arg)
                        total += len(call.args)
                    elif call.func.attr == "extend":
                        total += sum(self.count_expr(a) for a in call.args)
        return total


def _call_name(node: ast.AST) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts = [node.attr]
        value = node.value
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name):
            parts.append(value.id)
        return ".".join(reversed(parts))
    return ""


def _returned_name(factory: ast.FunctionDef) -> str:
    for node in ast.walk(factory):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
            return node.value.id
    return ""


def _int_constant(module: ModuleInfo, name: str) -> Optional[Tuple[ast.AST, int]]:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    if isinstance(node.value, ast.Constant) and isinstance(
                        node.value.value, int
                    ):
                        return node, node.value.value
    return None


def _is_abstract(cls: ast.ClassDef) -> bool:
    """Statically abstract: declares an @abstractmethod of its own."""
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in item.decorator_list:
                name = _call_name(decorator)
                if name.endswith("abstractmethod"):
                    return True
    return False


@register
class RegistryContractRule(Rule):
    id = RULE_ID
    description = (
        "every concrete Detector subclass is registered in the default "
        "bank (or exempted); EXPECTED_* constants match the statically "
        "derived Table 3 grid counts"
    )
    default_severity = Severity.ERROR

    def check_project(self, project: ProjectInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        factories: List[Tuple[ModuleInfo, ast.FunctionDef]] = []
        for module in project.modules:
            for node in module.tree.body:
                if (
                    isinstance(node, ast.FunctionDef)
                    and node.name in FACTORY_NAMES
                ):
                    factories.append((module, node))

        findings.extend(self._check_reachability(project, factories))
        findings.extend(self._check_grid_counts(project, factories))
        return findings

    # ------------------------------------------------------------------
    def _check_reachability(
        self,
        project: ProjectInfo,
        factories: List[Tuple[ModuleInfo, ast.FunctionDef]],
    ) -> Iterable[Finding]:
        referenced: Set[str] = set()
        for _, factory in factories:
            for node in ast.walk(factory):
                if isinstance(node, ast.Name):
                    referenced.add(node.id)

        for module, cls in subclasses_of(project, ["Detector"]):
            if cls.name.startswith("_") or _is_abstract(cls):
                continue  # private/abstract bases are not bank entries
            if cls.name in referenced or cls.name in project.registry_exempt:
                continue
            yield make_finding(
                module, cls, self.id, self.default_severity,
                f"detector {cls.name!r} is not reachable from any registry "
                f"factory ({', '.join(sorted(FACTORY_NAMES))}); register it "
                f"or exempt it in [tool.repro-lint.registry-contract]",
                data={"detector": cls.name, "check": "reachability"},
            )

    # ------------------------------------------------------------------
    def _check_grid_counts(
        self,
        project: ProjectInfo,
        factories: List[Tuple[ModuleInfo, ast.FunctionDef]],
    ) -> Iterable[Finding]:
        counted = [
            (module, factory)
            for module, factory in factories
            if factory.name == COUNTED_FACTORY
        ]
        for module, factory in counted:
            expected_configs = _int_constant(module, EXPECTED_CONFIGS_NAME)
            expected_detectors = _int_constant(module, EXPECTED_DETECTORS_NAME)
            if expected_configs is None and expected_detectors is None:
                continue  # module does not pin the bank size
            counter = _FactoryCounter(_literal_grids(project))
            try:
                derived = counter.count(factory)
            except _Unresolvable as exc:
                yield make_finding(
                    module, exc.expr if hasattr(exc.expr, "lineno") else factory,
                    self.id, Severity.WARNING,
                    f"cannot statically derive the configuration count of "
                    f"{factory.name}(): unresolvable grid {exc}",
                    data={"check": "grid-unresolvable"},
                )
                continue
            if expected_configs is not None and derived != expected_configs[1]:
                node, value = expected_configs
                yield make_finding(
                    module, node, self.id, self.default_severity,
                    f"{EXPECTED_CONFIGS_NAME} = {value} but the parameter "
                    f"grids in {factory.name}() produce {derived} "
                    f"configurations; Table 3 and the code have drifted",
                    data={"check": "config-count", "derived": str(derived)},
                )
            concrete = {
                cls.name
                for _, cls in subclasses_of(project, ["Detector"])
                if not cls.name.startswith("_") and not _is_abstract(cls)
            }
            used = counter.classes_used & concrete if concrete else counter.classes_used
            if expected_detectors is not None and len(used) != expected_detectors[1]:
                node, value = expected_detectors
                yield make_finding(
                    module, node, self.id, self.default_severity,
                    f"{EXPECTED_DETECTORS_NAME} = {value} but "
                    f"{factory.name}() constructs {len(used)} distinct "
                    f"detector classes ({', '.join(sorted(used))})",
                    data={"check": "detector-count", "derived": str(len(used))},
                )
