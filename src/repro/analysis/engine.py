"""The lint engine: discover files, parse (or hit the cache), run rules.

Pipeline::

    paths -> .py files -> cache lookup by sha256(source + fingerprint)
          miss: parse -> per-module rules -> JSON summary -> cache
          hit:  cached findings + summary, zero parsing
          -> ProjectIndex over all summaries -> summary-based rules
          -> drop suppressed findings, apply severity overrides
          -> sorted findings + summary + timing

Files that fail to parse are reported under the ``parse-error`` pseudo
rule instead of crashing the run, so one broken file cannot hide the
findings in the other hundred; the error is cached like any other
result, so a warm run stays parse-free even over broken files.
"""

from __future__ import annotations

import ast
import fnmatch
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from .config import LintConfig
from .finding import Finding, LintSummary, Severity
from .project import AnalysisCache, ProjectIndex, SUMMARY_SCHEMA_VERSION, summarize_module
from .project.cache import engine_fingerprint
from .rules import ModuleInfo, all_rules
from .suppressions import build_suppressions, is_suppressed

#: Pseudo rule id for unparseable files (not suppressible by design).
PARSE_ERROR_RULE = "parse-error"

#: Rules whose findings bypass inline suppression filtering: the
#: suppression-justification rule anchors its findings on the very
#: directive line that would otherwise swallow them.
NON_SUPPRESSIBLE_RULES = frozenset({PARSE_ERROR_RULE, "suppression-justification"})


@dataclass
class LintResult:
    """Findings plus run metadata, ready for a reporter."""

    findings: List[Finding]
    summary: LintSummary
    #: rule ids that actually ran (for reporters / debugging).
    rules: List[str] = field(default_factory=list)
    #: wall time and cache effectiveness of the run:
    #: ``duration_seconds``, ``parsed`` (modules analysed from source)
    #: and ``cached`` (modules served from the analysis cache).
    timing: Dict[str, float] = field(default_factory=dict)

    def exit_code(self, strict: bool = False) -> int:
        return 1 if self.summary.failed(strict) else 0


def discover_files(
    paths: Sequence[str], exclude: Sequence[str] = ()
) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"lint target does not exist: {raw}")
        for candidate in candidates:
            posix = candidate.as_posix()
            if any(fnmatch.fnmatch(posix, pattern) for pattern in exclude):
                continue
            seen.setdefault(candidate, None)
    return list(seen)


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _finding_to_dict(finding: Finding) -> dict:
    return {
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule,
        "severity": finding.severity.value,
        "message": finding.message,
        "data": dict(finding.data),
    }


def _finding_from_dict(payload: dict, display_path: str) -> Finding:
    return Finding(
        file=display_path,
        line=payload["line"],
        col=payload["col"],
        rule=payload["rule"],
        severity=Severity(payload["severity"]),
        message=payload["message"],
        data=dict(payload["data"]),
    )


class LintEngine:
    """One configured lint run over a set of paths."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        cache_dir: Optional[Path] = None,
    ):
        self.config = config or LintConfig()
        disabled = set(self.config.disabled_rules)
        self.rules = [rule for rule in all_rules() if rule.id not in disabled]
        if cache_dir is None:
            cache_dir = self.config.resolve_path(self.config.cache_dir)
        fingerprint = engine_fingerprint(
            SUMMARY_SCHEMA_VERSION, (rule.id for rule in self.rules)
        )
        self.cache = AnalysisCache(cache_dir, fingerprint)

    # ------------------------------------------------------------------
    def _analyse(self, path: Path, display: str, source: bytes) -> dict:
        """Parse one module, run its per-module rules, summarize it."""
        try:
            text = source.decode("utf-8")
            tree = ast.parse(text, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            col = getattr(exc, "offset", 1) or 1
            error = Finding(
                file=display,
                line=line,
                col=max(col - 1, 0),
                rule=PARSE_ERROR_RULE,
                severity=Severity.ERROR,
                message=f"cannot parse file: {exc}",
            )
            return {
                "summary": None,
                "findings": [],
                "error": _finding_to_dict(error),
            }
        info = ModuleInfo(display, text, tree)
        suppressions = build_suppressions(text, tree)
        findings: List[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check_module(info))
        return {
            "summary": summarize_module(info, suppressions),
            "findings": [_finding_to_dict(f) for f in findings],
            "error": None,
        }

    # ------------------------------------------------------------------
    def run(
        self,
        paths: Sequence[str],
        only_files: Optional[Set[str]] = None,
    ) -> LintResult:
        """Lint ``paths``; with ``only_files``, analyse everything (the
        cross-module rules need the whole project) but report only
        findings located in the given display paths."""
        start = time.perf_counter()
        files = discover_files(paths, self.config.exclude)
        findings: List[Finding] = []
        summaries: List[dict] = []
        suppression_index: Dict[str, Dict[int, FrozenSet[str]]] = {}
        parsed = 0
        cached = 0

        for path in files:
            display = _display_path(path)
            try:
                source = path.read_bytes()
            except OSError as exc:
                findings.append(Finding(
                    file=display, line=1, col=0, rule=PARSE_ERROR_RULE,
                    severity=Severity.ERROR,
                    message=f"cannot parse file: {exc}",
                ))
                continue
            key = self.cache.key_for(source)
            payload = self.cache.get(key)
            if payload is None:
                payload = self._analyse(path, display, source)
                self.cache.put(key, payload)
                parsed += 1
            else:
                cached += 1
            if payload["error"] is not None:
                findings.append(_finding_from_dict(payload["error"], display))
            summary = payload["summary"]
            if summary is not None:
                # the cwd (and hence the display path) may differ from
                # the run that populated the cache entry
                summary = dict(summary, path=display)
                summaries.append(summary)
                suppression_index[display] = {
                    int(line): frozenset(rules)
                    for line, rules in summary["suppressions"].items()
                }
                findings.extend(
                    _finding_from_dict(f, display)
                    for f in payload["findings"]
                )

        index = ProjectIndex(
            summaries,
            registry_exempt=self.config.registry_exempt,
            worker_entry_points=self.config.worker_entry_points,
            obs_doc=self.config.resolve_path(self.config.obs_doc),
        )
        for rule in self.rules:
            findings.extend(rule.check_summaries(index))

        kept: List[Finding] = []
        suppressed = 0
        for finding in findings:
            table = suppression_index.get(finding.file, {})
            if finding.rule not in NON_SUPPRESSIBLE_RULES and is_suppressed(
                table, finding.line, finding.rule
            ):
                suppressed += 1
                continue
            override = self.config.severity_overrides.get(finding.rule)
            if override is not None:
                finding = finding.with_severity(override)
            kept.append(finding)

        if only_files is not None:
            kept = [f for f in kept if f.file in only_files]

        kept.sort(key=lambda f: f.sort_key)
        summary = LintSummary(
            files=len(files),
            errors=sum(1 for f in kept if f.severity is Severity.ERROR),
            warnings=sum(1 for f in kept if f.severity is Severity.WARNING),
            suppressed=suppressed,
        )
        return LintResult(
            findings=kept,
            summary=summary,
            rules=[rule.id for rule in self.rules],
            timing={
                "duration_seconds": time.perf_counter() - start,
                "parsed": parsed,
                "cached": cached,
            },
        )


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> LintResult:
    """Convenience: run the full rule set over ``paths``."""
    return LintEngine(config).run(paths)
