"""The lint engine: discover files, parse, run rules, filter, report.

Pipeline::

    paths -> .py files -> ModuleInfo (AST + suppressions)
          -> per-module rules + project rules
          -> drop suppressed findings, apply severity overrides
          -> sorted findings + summary

Files that fail to parse are reported under the ``parse-error`` pseudo
rule instead of crashing the run, so one broken file cannot hide the
findings in the other hundred.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .config import LintConfig
from .finding import Finding, LintSummary, Severity
from .rules import ModuleInfo, ProjectInfo, all_rules
from .suppressions import build_suppressions, is_suppressed

#: Pseudo rule id for unparseable files (not suppressible by design).
PARSE_ERROR_RULE = "parse-error"


@dataclass
class LintResult:
    """Findings plus run metadata, ready for a reporter."""

    findings: List[Finding]
    summary: LintSummary
    #: rule ids that actually ran (for reporters / debugging).
    rules: List[str] = field(default_factory=list)

    def exit_code(self, strict: bool = False) -> int:
        return 1 if self.summary.failed(strict) else 0


def discover_files(
    paths: Sequence[str], exclude: Sequence[str] = ()
) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"lint target does not exist: {raw}")
        for candidate in candidates:
            posix = candidate.as_posix()
            if any(fnmatch.fnmatch(posix, pattern) for pattern in exclude):
                continue
            seen.setdefault(candidate, None)
    return list(seen)


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class _ParsedModule:
    info: ModuleInfo
    suppressions: Dict[int, FrozenSet[str]]


def _parse(path: Path) -> Tuple[Optional[_ParsedModule], Optional[Finding]]:
    display = _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        col = getattr(exc, "offset", 1) or 1
        return None, Finding(
            file=display,
            line=line,
            col=max(col - 1, 0),
            rule=PARSE_ERROR_RULE,
            severity=Severity.ERROR,
            message=f"cannot parse file: {exc}",
        )
    info = ModuleInfo(display, source, tree)
    return _ParsedModule(info, build_suppressions(source, tree)), None


class LintEngine:
    """One configured lint run over a set of paths."""

    def __init__(self, config: Optional[LintConfig] = None):
        self.config = config or LintConfig()
        disabled = set(self.config.disabled_rules)
        self.rules = [rule for rule in all_rules() if rule.id not in disabled]

    def run(self, paths: Sequence[str]) -> LintResult:
        files = discover_files(paths, self.config.exclude)
        parsed: List[_ParsedModule] = []
        findings: List[Finding] = []
        for path in files:
            module, error = _parse(path)
            if error is not None:
                findings.append(error)
            if module is not None:
                parsed.append(module)

        project = ProjectInfo(
            [m.info for m in parsed], self.config.registry_exempt
        )
        suppression_index = {
            m.info.display_path: m.suppressions for m in parsed
        }
        for rule in self.rules:
            for module in parsed:
                findings.extend(rule.check_module(module.info))
            findings.extend(rule.check_project(project))

        kept: List[Finding] = []
        suppressed = 0
        for finding in findings:
            table = suppression_index.get(finding.file, {})
            if finding.rule != PARSE_ERROR_RULE and is_suppressed(
                table, finding.line, finding.rule
            ):
                suppressed += 1
                continue
            override = self.config.severity_overrides.get(finding.rule)
            if override is not None:
                finding = finding.with_severity(override)
            kept.append(finding)

        kept.sort(key=lambda f: f.sort_key)
        summary = LintSummary(
            files=len(files),
            errors=sum(1 for f in kept if f.severity is Severity.ERROR),
            warnings=sum(1 for f in kept if f.severity is Severity.WARNING),
            suppressed=suppressed,
        )
        return LintResult(
            findings=kept,
            summary=summary,
            rules=[rule.id for rule in self.rules],
        )


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> LintResult:
    """Convenience: run the full rule set over ``paths``."""
    return LintEngine(config).run(paths)
