"""Opprentice reproduction: automatic KPI anomaly detection.

This package reproduces *Opprentice: Towards Practical and Automatic
Anomaly Detection Through Machine Learning* (Liu et al., IMC 2015):
KPI anomaly detection that combines 14 classic detectors (133 sampled
configurations) as feature extractors for a random forest, with
preference-centric threshold selection (PC-Score) and EWMA-based online
threshold prediction.

Quickstart::

    from repro import Opprentice, make_pv

    kpi = make_pv().series          # a labelled synthetic PV KPI
    opp = Opprentice()
    opp.fit(kpi.slice(0, 8 * kpi.points_per_week))
    result = opp.detect(kpi.slice(8 * kpi.points_per_week, len(kpi)))
    print(result.accuracy())

See README.md for the full tour and DESIGN.md for the paper mapping.
"""

from .core import (
    Alert,
    AlertEvent,
    CrossValidationPredictor,
    DetectionResult,
    EWMAPredictor,
    FeatureExtractor,
    FeatureMatrix,
    MonitoringService,
    OnlineRun,
    Opprentice,
    SeverityNormalizer,
    StreamingDetector,
    TransferDetector,
    WeeklyOutcome,
    alerts_from_predictions,
    best_cthld,
    default_classifier_factory,
    duration_filter,
    explain_point,
    extract_features,
    load_model,
    run_online,
    save_model,
)
from .data import make_all, make_pv, make_sr, make_srt
from .detectors import default_configs, default_detectors
from .evaluation import (
    MODERATE_PREFERENCE,
    AccuracyPreference,
    KPIReport,
    PCScoreSelector,
    aucpr,
    evaluate_kpi,
    pr_curve,
)
from .labeling import LabelSession, LabelingTool
from .ml import RandomForest
from .timeseries import AnomalyWindow, TimeSeries

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # containers
    "TimeSeries",
    "AnomalyWindow",
    # framework
    "Opprentice",
    "DetectionResult",
    "OnlineRun",
    "WeeklyOutcome",
    "run_online",
    "FeatureExtractor",
    "FeatureMatrix",
    "extract_features",
    "EWMAPredictor",
    "CrossValidationPredictor",
    "best_cthld",
    "default_classifier_factory",
    "Alert",
    "AlertEvent",
    "duration_filter",
    "alerts_from_predictions",
    "SeverityNormalizer",
    "TransferDetector",
    "StreamingDetector",
    "MonitoringService",
    "save_model",
    "load_model",
    "explain_point",
    "KPIReport",
    "evaluate_kpi",
    # detectors
    "default_detectors",
    "default_configs",
    # learning
    "RandomForest",
    # evaluation
    "AccuracyPreference",
    "MODERATE_PREFERENCE",
    "PCScoreSelector",
    "pr_curve",
    "aucpr",
    # data
    "make_pv",
    "make_sr",
    "make_srt",
    "make_all",
    # labeling
    "LabelSession",
    "LabelingTool",
]
