"""The majority-vote combiner [8] (Fontugne et al., MAWILab).

Every configuration casts a binary vote using its own severity
threshold — here the per-configuration training quantile (a detector
flags its own top ``1 - vote_quantile`` fraction of points). The
combined score is the fraction of configurations voting anomaly;
sweeping that fraction yields the PR curve. Like the normalization
schema, all configurations are "treated with the same priority (e.g.,
equally weighted vote)" (§5.3.1), so inaccurate configurations drag the
combination down.
"""

from __future__ import annotations

import warnings

import numpy as np

from .base import StaticCombiner


class MajorityVote(StaticCombiner):
    """Fraction of configurations whose severity exceeds their own
    training-quantile sThld."""

    name = "majority-vote"

    def __init__(self, vote_quantile: float = 0.99):
        super().__init__()
        if not 0.5 <= vote_quantile < 1.0:
            raise ValueError(
                f"vote_quantile must be in [0.5, 1), got {vote_quantile}"
            )
        self.vote_quantile = vote_quantile
        self.thresholds_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "MajorityVote":
        features = self._check_fit(features)
        cleaned = np.where(np.isfinite(features), features, np.nan)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", category=RuntimeWarning)
            self.thresholds_ = np.nanquantile(
                cleaned, self.vote_quantile, axis=0
            )
        # All-NaN training columns can never vote.
        self.thresholds_ = np.where(
            np.isfinite(self.thresholds_), self.thresholds_, np.inf
        )
        return self

    def score(self, features: np.ndarray) -> np.ndarray:
        features = self._check_score(features)
        with np.errstate(invalid="ignore"):
            votes = features > self.thresholds_
        return votes.mean(axis=1)
