"""Static baselines: combiners (§5.3.1) and the tuned-detector workflow."""

from .base import StaticCombiner
from .majority_vote import MajorityVote
from .normalization import NormalizationSchema
from .tuned import TunedBasicDetector

__all__ = [
    "StaticCombiner",
    "NormalizationSchema",
    "MajorityVote",
    "TunedBasicDetector",
]
