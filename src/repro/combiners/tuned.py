"""The "manually tuned detector" baseline.

The traditional practice the paper replaces (§1): an algorithm designer
picks the single best detector configuration for a KPI and tunes its
sThld on historical data — "many rounds of time-consuming iterations".
:class:`TunedBasicDetector` automates that end state: given labelled
training severities it selects the configuration with the best training
AUCPR and the sThld maximising the PC-Score, then applies both to new
data. Comparing it against Opprentice quantifies what the manual-tuning
workflow could achieve at its very best (with none of its 8-12 days of
human effort, §5.7).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..evaluation import (
    MODERATE_PREFERENCE,
    AccuracyPreference,
    PCScoreSelector,
    aucpr,
)


class TunedBasicDetector:
    """Pick-one-configuration-and-tune-its-threshold baseline."""

    name = "tuned basic detector"

    def __init__(
        self,
        preference: AccuracyPreference = MODERATE_PREFERENCE,
        feature_names: Optional[Sequence[str]] = None,
    ):
        self.preference = preference
        self.feature_names = list(feature_names) if feature_names else None
        self.selected_column_: Optional[int] = None
        self.sthld_: Optional[float] = None

    @property
    def selected_name(self) -> str:
        """The chosen configuration's name (if names were provided)."""
        if self.selected_column_ is None:
            raise RuntimeError("baseline is not fitted")
        if self.feature_names is None:
            return f"column {self.selected_column_}"
        return self.feature_names[self.selected_column_]

    def fit(
        self, features: np.ndarray, labels: np.ndarray
    ) -> "TunedBasicDetector":
        """Select the best configuration and sThld on training data."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got {features.shape}")
        if labels.shape != (features.shape[0],):
            raise ValueError("labels length must match features rows")
        if labels.sum() == 0:
            raise ValueError(
                "cannot tune a detector without labelled anomalies"
            )
        best_auc, best_column = -1.0, None
        for j in range(features.shape[1]):
            column = features[:, j]
            if not np.isfinite(column).any():
                continue
            finite_labels = labels[np.isfinite(column)]
            if finite_labels.sum() == 0:
                continue
            auc = aucpr(column, labels)
            if auc > best_auc:
                best_auc, best_column = auc, j
        if best_column is None:
            raise ValueError("no usable configuration in the feature matrix")
        self.selected_column_ = best_column
        choice = PCScoreSelector(self.preference).select(
            features[:, best_column], labels
        )
        self.sthld_ = choice.threshold
        return self

    def score(self, features: np.ndarray) -> np.ndarray:
        """The selected configuration's severities (for PR analysis)."""
        if self.selected_column_ is None:
            raise RuntimeError("baseline is not fitted")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] <= self.selected_column_:
            raise ValueError("feature matrix does not match the fitted bank")
        return features[:, self.selected_column_]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard detection at the tuned sThld (NaN severities -> -1,
        the missing-prediction placeholder)."""
        scores = self.score(features)
        assert self.sthld_ is not None
        predictions = np.where(
            np.isfinite(scores), (scores >= self.sthld_).astype(np.int8), -1
        )
        return predictions.astype(np.int8)
