"""The normalization schema combiner [21] (Shanbhag & Wolf).

Each configuration's severity is rescaled to [0, 1] using the range
observed on the training matrix, then all configurations are averaged
with equal weight. Inaccurate configurations dilute the signal — the
weakness §5.3.1 demonstrates ("they can be significantly impacted by
inaccurate configurations").
"""

from __future__ import annotations

import warnings

import numpy as np

from .base import StaticCombiner


class NormalizationSchema(StaticCombiner):
    """Equal-weight average of range-normalised severities.

    Normalisation bounds come from robust training quantiles (default
    1st/99th percentile) so a single extreme training severity does not
    flatten a configuration's contribution; test scores are clipped to
    [0, 1].
    """

    name = "normalization scheme"

    def __init__(self, lower_quantile: float = 0.01, upper_quantile: float = 0.99):
        super().__init__()
        if not 0.0 <= lower_quantile < upper_quantile <= 1.0:
            raise ValueError(
                f"bad quantiles ({lower_quantile}, {upper_quantile})"
            )
        self.lower_quantile = lower_quantile
        self.upper_quantile = upper_quantile
        self.low_: np.ndarray | None = None
        self.high_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "NormalizationSchema":
        features = self._check_fit(features)
        cleaned = np.where(np.isfinite(features), features, np.nan)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", category=RuntimeWarning)
            self.low_ = np.nanquantile(cleaned, self.lower_quantile, axis=0)
            self.high_ = np.nanquantile(cleaned, self.upper_quantile, axis=0)
        # Configurations that were all-NaN in training contribute 0.
        self.low_ = np.where(np.isfinite(self.low_), self.low_, 0.0)
        self.high_ = np.where(np.isfinite(self.high_), self.high_, 0.0)
        return self

    def score(self, features: np.ndarray) -> np.ndarray:
        features = self._check_score(features)
        span = np.maximum(self.high_ - self.low_, 1e-12)
        normalized = (features - self.low_) / span
        normalized = np.clip(normalized, 0.0, 1.0)
        # NaN severities (warm-up, missing data) are neutral (0).
        normalized = np.where(np.isfinite(normalized), normalized, 0.0)
        return normalized.mean(axis=1)
