"""Static detector-combination baselines (§5.3.1).

Opprentice is compared against two prior approaches that combine
diverse detectors *statically* — "they treat them equally no matter
their accuracy": the normalization schema [21] and majority vote [8].
Both consume the same severity feature matrix as the random forest and
emit one anomaly score per point, so the PR-curve machinery applies
unchanged. Both calibrate per-configuration statistics on a training
matrix only (no peeking at the test set).
"""

from __future__ import annotations

import abc

import numpy as np


class StaticCombiner(abc.ABC):
    """A fit/score combiner over severity feature matrices."""

    name: str = "combiner"

    def __init__(self) -> None:
        self.n_features_: int | None = None

    @abc.abstractmethod
    def fit(self, features: np.ndarray) -> "StaticCombiner":
        """Calibrate per-configuration statistics on training severities
        (labels are deliberately unused — these combiners are the
        unsupervised baselines)."""

    @abc.abstractmethod
    def score(self, features: np.ndarray) -> np.ndarray:
        """Combined anomaly score per row; higher = more anomalous."""

    # ------------------------------------------------------------------
    def _check_fit(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got {features.shape}")
        self.n_features_ = features.shape[1]
        return features

    def _check_score(self, features: np.ndarray) -> np.ndarray:
        if self.n_features_ is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.n_features_:
            raise ValueError(
                f"expected (n, {self.n_features_}) features, got {features.shape}"
            )
        return features
