"""Random forest (Breiman [28]) — the classifier Opprentice trains.

§4.4.2: "a random forest adds some elements or randomness. First, each
tree is trained on subsets sampled from the original training set.
Second, instead of evaluating all the features at each level, the trees
only consider a random subset of the features each time... All the
trees are fully grown in this way without pruning. The random forest
then combines those trees by majority vote... if 40 trees out of 100
classify the point into an anomaly, its anomaly probability is 40%."

Both randomness sources are implemented exactly: bootstrap resampling
per tree and sqrt-feature subsampling per split. ``predict_proba``
returns the fraction of trees voting anomaly, which the cThld machinery
(default 0.5, §4.4.2) thresholds.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import Classifier
from .tree import Binner, DecisionTree


class RandomForest(Classifier):
    """Bootstrap-aggregated fully grown CART trees.

    Parameters
    ----------
    n_estimators:
        Number of trees (the paper's running example uses 100).
    max_features:
        Features per split; ``"sqrt"`` (default) is the standard forest
        choice and what keeps trees robust to irrelevant features.
    max_depth:
        Optional cap; None (default) grows fully, as in the paper.
    seed:
        Master seed; tree *i* uses an independent child seed, so fits
        are reproducible.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_features: object = "sqrt",
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        seed: int = 0,
    ):
        super().__init__()
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.trees_: List[DecisionTree] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForest":
        features, labels = self._check_fit_inputs(features, labels)
        n = features.shape[0]
        binner = Binner().fit(features)
        binned = binner.transform(features)
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        self._oob_votes = np.zeros(n)
        self._oob_counts = np.zeros(n)
        self._train_labels = labels.copy()
        for i in range(self.n_estimators):
            bootstrap = rng.integers(0, n, size=n)
            tree = DecisionTree(
                max_features=self.max_features,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit_binned(binned[bootstrap], labels[bootstrap], binner)
            self.trees_.append(tree)
            # Out-of-bag bookkeeping: this tree votes on the training
            # rows its bootstrap missed (Breiman's built-in validation).
            out_of_bag = np.ones(n, dtype=bool)
            out_of_bag[bootstrap] = False
            if out_of_bag.any():
                votes = tree.vote(features[out_of_bag])
                self._oob_votes[out_of_bag] += votes
                self._oob_counts[out_of_bag] += 1
        return self

    def oob_scores(self) -> np.ndarray:
        """Out-of-bag anomaly probability per training row (NaN for rows
        every tree happened to include in its bootstrap)."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        with np.errstate(invalid="ignore"):
            return np.where(
                self._oob_counts > 0,
                self._oob_votes / np.maximum(self._oob_counts, 1),
                np.nan,
            )

    def oob_accuracy(self, threshold: float = 0.5) -> float:
        """OOB classification accuracy — a generalisation estimate with
        no held-out data (useful before the first labelled test week
        exists)."""
        scores = self.oob_scores()
        valid = np.isfinite(scores)
        if not valid.any():
            raise RuntimeError("no out-of-bag rows (too few trees)")
        predictions = (scores[valid] >= threshold).astype(np.int8)
        return float((predictions == self._train_labels[valid]).mean())

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = self._check_predict_inputs(features)
        if not self.trees_:
            raise RuntimeError("forest has no trees")
        votes = np.zeros(features.shape[0], dtype=np.float64)
        for tree in self.trees_:
            votes += tree.vote(features)
        return votes / len(self.trees_)

    def feature_importances(self) -> np.ndarray:
        """Mean gini importance across trees."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        return np.mean([t.feature_importances() for t in self.trees_], axis=0)

    def prediction_contributions(self, features: np.ndarray) -> np.ndarray:
        """Per-feature contributions to each forest prediction.

        The mean of the member trees' Saabas path contributions
        (:meth:`DecisionTree.decision_path_contributions`). Rows sum to
        the mean leaf probability across trees — for fully grown trees
        (pure leaves, the paper's configuration) that equals
        ``predict_proba`` exactly, so the decomposition explains the
        reported anomaly probability. Shape: (n_samples, n_features + 1)
        with a trailing bias column.
        """
        features = self._check_predict_inputs(features)
        if not self.trees_:
            raise RuntimeError("forest has no trees")
        total = self.trees_[0].decision_path_contributions(features)
        for tree in self.trees_[1:]:
            total += tree.decision_path_contributions(features)
        return total / len(self.trees_)

    # ------------------------------------------------------------------
    # Serialisation (portable, pickle-free)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Portable representation of the fitted ensemble."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        return {
            "n_estimators": self.n_estimators,
            "n_features": self.n_features_,
            "trees": [tree.to_dict() for tree in self.trees_],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RandomForest":
        """Rebuild a prediction-ready forest from :meth:`to_dict`."""
        forest = cls(n_estimators=int(payload["n_estimators"]))
        forest.n_features_ = int(payload["n_features"])
        forest.trees_ = [
            DecisionTree.from_dict(tree) for tree in payload["trees"]
        ]
        if len(forest.trees_) != forest.n_estimators:
            raise ValueError(
                f"payload has {len(forest.trees_)} trees for "
                f"n_estimators={forest.n_estimators}"
            )
        return forest
