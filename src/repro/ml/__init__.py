"""Learning substrate: random forest and Fig 10 comparison classifiers.

scikit-learn is unavailable offline, so everything here is implemented
from scratch on numpy/scipy (see DESIGN.md's substitution table).
"""

from .base import Classifier, NotFittedError
from .boosting import GradientBoosting
from .feature_selection import (
    mrmr_select,
    mutual_information,
    mutual_information_between,
    rank_features_by_mi,
)
from .forest import RandomForest
from .linear import LinearSVM, LogisticRegression
from .naive_bayes import GaussianNB
from .preprocessing import Imputer, StandardScaler
from .tree import Binner, DecisionTree

__all__ = [
    "Classifier",
    "NotFittedError",
    "DecisionTree",
    "Binner",
    "RandomForest",
    "GradientBoosting",
    "LogisticRegression",
    "LinearSVM",
    "GaussianNB",
    "Imputer",
    "StandardScaler",
    "mutual_information",
    "mutual_information_between",
    "mrmr_select",
    "rank_features_by_mi",
]
