"""Linear comparison classifiers of Fig 10: logistic regression and
linear SVM.

§5.3.2 compares random forests against "decision trees, logistic
regression, linear support vector machines (SVMs), and naive Bayes" and
finds the linear models "unstable and decreased as more features are
used" (irrelevant/redundant features hurt them). Both models here are
trained with L-BFGS (scipy) on L2-regularised convex losses; inputs are
internally standardised so the optimisation is well-conditioned
regardless of severity scales.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from .base import Classifier
from .preprocessing import StandardScaler


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class _LinearModel(Classifier):
    """Shared L-BFGS training loop over a convex loss."""

    def __init__(self, C: float = 1.0, max_iter: int = 200):
        super().__init__()
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.C = C
        self.max_iter = max_iter
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self._scaler = StandardScaler()

    def _loss_grad(self, packed, features, targets):
        raise NotImplementedError

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "_LinearModel":
        features, labels = self._check_fit_inputs(features, labels)
        features = self._scaler.fit_transform(features)
        targets = labels.astype(np.float64)
        n_features = features.shape[1]
        x0 = np.zeros(n_features + 1)
        result = minimize(
            self._loss_grad,
            x0,
            args=(features, targets),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.weights_ = result.x[:-1]
        self.bias_ = float(result.x[-1])
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        features = self._check_predict_inputs(features)
        if self.weights_ is None:
            raise RuntimeError("model is not fitted")
        features = self._scaler.transform(features)
        return features @ self.weights_ + self.bias_


class LogisticRegression(_LinearModel):
    """L2-regularised logistic regression; proba = sigmoid(margin)."""

    def _loss_grad(self, packed, features, targets):
        weights, bias = packed[:-1], packed[-1]
        margins = features @ weights + bias
        probabilities = _sigmoid(margins)
        # Numerically stable mean log-loss.
        log_loss = np.mean(
            np.logaddexp(0.0, margins) - targets * margins
        )
        penalty = 0.5 / self.C * np.dot(weights, weights) / len(targets)
        error = (probabilities - targets) / len(targets)
        grad_w = features.T @ error + weights / self.C / len(targets)
        grad_b = error.sum()
        return log_loss + penalty, np.concatenate([grad_w, [grad_b]])

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_function(features))


class LinearSVM(_LinearModel):
    """L2-regularised squared-hinge linear SVM.

    SVMs have no native probabilities; ``predict_proba`` squashes the
    margin through a sigmoid, which preserves the ranking — all the
    PR-curve machinery needs.
    """

    def _loss_grad(self, packed, features, targets):
        weights, bias = packed[:-1], packed[-1]
        signs = 2.0 * targets - 1.0
        margins = signs * (features @ weights + bias)
        slack = np.maximum(0.0, 1.0 - margins)
        loss = np.mean(slack**2)
        penalty = 0.5 / self.C * np.dot(weights, weights) / len(targets)
        # d/dm of slack^2 = -2 * slack where margin < 1.
        coeff = -2.0 * slack * signs / len(targets)
        grad_w = features.T @ coeff + weights / self.C / len(targets)
        grad_b = coeff.sum()
        return loss + penalty, np.concatenate([grad_w, [grad_b]])

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_function(features))
