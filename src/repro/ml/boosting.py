"""Gradient-boosted trees — a post-paper comparison learner.

The paper chose random forests partly for having "only two parameters
and [being] not very sensitive to them" (§4.4.1). Follow-up AIOps work
often reaches for gradient boosting instead; this implementation lets
the repository quantify that trade-off on the same features (see
``benchmarks/bench_ext_boosting.py``): boosting with logistic loss over
shallow histogram regression trees.

Algorithm (standard LogitBoost-style gradient boosting):

1. initialise with the log-odds of the base rate;
2. each round fits a depth-limited regression tree to the negative
   gradient of the logistic loss (``y - p``);
3. leaf values use the Newton step
   ``sum(residuals) / sum(p (1 - p))`` and are shrunk by the learning
   rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .base import Classifier
from .linear import _sigmoid
from .tree import Binner


@dataclass
class _RegressionNode:
    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class _RegressionTree:
    """Histogram least-squares tree with Newton leaf values."""

    def __init__(self, max_depth: int, min_samples_leaf: int, max_bins: int):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_bins = max_bins
        self.nodes_: List[_RegressionNode] = []

    def fit(
        self,
        binned: np.ndarray,
        residuals: np.ndarray,
        hessians: np.ndarray,
        binner: Binner,
    ) -> "_RegressionTree":
        self._binner = binner
        self.nodes_ = [_RegressionNode()]
        stack = [(np.arange(binned.shape[0]), 0, 0)]
        while stack:
            indices, depth, slot = stack.pop()
            node = self.nodes_[slot]
            node_residuals = residuals[indices]
            node_hessians = hessians[indices]
            hessian_sum = node_hessians.sum()
            node.value = (
                node_residuals.sum() / hessian_sum if hessian_sum > 0 else 0.0
            )
            if depth >= self.max_depth or len(indices) < 2 * self.min_samples_leaf:
                continue
            split = self._find_split(binned, residuals, indices)
            if split is None:
                continue
            feature, split_bin = split
            node.feature = feature
            node.threshold = binner.threshold_value(feature, split_bin)
            go_left = binned[indices, feature] <= split_bin
            node.left = len(self.nodes_)
            self.nodes_.append(_RegressionNode())
            node.right = len(self.nodes_)
            self.nodes_.append(_RegressionNode())
            stack.append((indices[go_left], depth + 1, node.left))
            stack.append((indices[~go_left], depth + 1, node.right))
        return self

    def _find_split(self, binned, residuals, indices):
        """Maximise the squared-error reduction proxy
        ``sum_l^2 / n_l + sum_r^2 / n_r`` over all features and bins."""
        node_residuals = residuals[indices]
        total_sum = node_residuals.sum()
        total_n = len(indices)
        best_gain, best = 0.0, None
        base = total_sum * total_sum / total_n
        for feature in range(binned.shape[1]):
            codes = binned[indices, feature].astype(np.int64)
            counts = np.bincount(codes, minlength=self.max_bins)
            sums = np.bincount(
                codes, weights=node_residuals, minlength=self.max_bins
            )
            left_n = np.cumsum(counts)[:-1]
            left_sum = np.cumsum(sums)[:-1]
            right_n = total_n - left_n
            right_sum = total_sum - left_sum
            valid = (
                (left_n >= self.min_samples_leaf)
                & (right_n >= self.min_samples_leaf)
            )
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gains = np.where(
                    valid,
                    left_sum**2 / left_n + right_sum**2 / right_n - base,
                    -np.inf,
                )
            bin_index = int(np.argmax(gains))
            if gains[bin_index] > best_gain + 1e-12:
                best_gain = float(gains[bin_index])
                best = (feature, bin_index)
        return best

    def predict(self, features: np.ndarray) -> np.ndarray:
        out = np.empty(features.shape[0])
        pending = [(0, np.arange(features.shape[0]))]
        while pending:
            slot, indices = pending.pop()
            node = self.nodes_[slot]
            if node.is_leaf:
                out[indices] = node.value
                continue
            go_left = features[indices, node.feature] <= node.threshold
            if go_left.any():
                pending.append((node.left, indices[go_left]))
            if (~go_left).any():
                pending.append((node.right, indices[~go_left]))
        return out


class GradientBoosting(Classifier):
    """Gradient-boosted shallow trees with logistic loss.

    Parameters follow the common defaults: 100 rounds of depth-3 trees
    with learning rate 0.1. ``subsample`` < 1 gives stochastic gradient
    boosting.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        seed: int = 0,
        max_bins: int = 128,
    ):
        super().__init__()
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.max_bins = max_bins
        self.trees_: List[_RegressionTree] = []
        self.base_score_: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GradientBoosting":
        features, labels = self._check_fit_inputs(features, labels)
        targets = labels.astype(np.float64)
        rate = float(np.clip(targets.mean(), 1e-6, 1 - 1e-6))
        self.base_score_ = float(np.log(rate / (1.0 - rate)))

        binner = Binner(self.max_bins).fit(features)
        binned = binner.transform(features)
        rng = np.random.default_rng(self.seed)
        raw = np.full(len(targets), self.base_score_)
        self.trees_ = []
        n = len(targets)
        for _ in range(self.n_estimators):
            probabilities = _sigmoid(raw)
            residuals = targets - probabilities
            hessians = probabilities * (1.0 - probabilities)
            if self.subsample < 1.0:
                sample = rng.random(n) < self.subsample
                if not sample.any():
                    continue
            else:
                sample = slice(None)
            tree = _RegressionTree(
                self.max_depth, self.min_samples_leaf, self.max_bins
            )
            tree.fit(binned[sample], residuals[sample], hessians[sample], binner)
            self.trees_.append(tree)
            raw += self.learning_rate * tree.predict(features)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        features = self._check_predict_inputs(features)
        raw = np.full(features.shape[0], self.base_score_)
        for tree in self.trees_:
            raw += self.learning_rate * tree.predict(features)
        return raw

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_function(features))
