"""CART decision trees with histogram-based split search (§4.4.2).

The paper's preliminaries: a decision tree is "greedily built top-down.
At each level, it determines the best feature and its split point to
separate the data into distinct classes as much as possible... A
goodness function, e.g., information gain and gini index, is used".
Trees here are grown fully (until every leaf is pure or unsplittable),
without pruning, exactly as the random forest requires.

For speed the split search is histogram-based: each feature is
discretised into up to 256 quantile bins once per training set, and a
node evaluates all candidate splits of a feature with one
``np.bincount``. Split thresholds are mapped back to real feature
values so prediction runs on raw (unbinned) features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .base import Classifier

#: Maximum number of histogram bins per feature.
MAX_BINS = 256


class Binner:
    """Quantile discretiser shared by all trees of a forest."""

    def __init__(self, max_bins: int = MAX_BINS):
        if not 2 <= max_bins <= 256:
            raise ValueError(f"max_bins must be in [2, 256], got {max_bins}")
        self.max_bins = max_bins
        self.edges_: Optional[List[np.ndarray]] = None

    def fit(self, features: np.ndarray) -> "Binner":
        """Compute per-feature bin edges from training quantiles."""
        edges = []
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        for column in features.T:
            cuts = np.unique(np.quantile(column, quantiles))
            edges.append(cuts)
        self.edges_ = edges
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Bin codes as uint8; code b means value <= edges[b] (last bin
        is everything above the top edge)."""
        if self.edges_ is None:
            raise RuntimeError("Binner is not fitted")
        binned = np.empty(features.shape, dtype=np.uint8)
        for j, cuts in enumerate(self.edges_):
            binned[:, j] = np.searchsorted(cuts, features[:, j], side="left")
        return binned

    def threshold_value(self, feature: int, bin_code: int) -> float:
        """The real-valued split threshold for "bin <= bin_code"."""
        if self.edges_ is None:
            raise RuntimeError("Binner is not fitted")
        return float(self.edges_[feature][bin_code])


@dataclass
class _Node:
    """Internal tree node (arrays-of-structs keeps traversal fast)."""

    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    #: Anomaly fraction of the training samples in the leaf.
    probability: float = 0.0
    #: Impurity decrease * node size (gini importance contribution).
    gain: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _gini_best_split(
    counts0: np.ndarray, counts1: np.ndarray
) -> tuple[float, int]:
    """Best split of one feature's class histograms by gini impurity.

    ``counts0[b]``/``counts1[b]`` are class counts in bin ``b``. A split
    at bin ``b`` sends bins ``<= b`` left. Returns (impurity_decrease,
    split_bin); split_bin = -1 if no valid split exists.
    """
    total0, total1 = counts0.sum(), counts1.sum()
    n = total0 + total1
    left0 = np.cumsum(counts0)[:-1].astype(np.float64)
    left1 = np.cumsum(counts1)[:-1].astype(np.float64)
    n_left = left0 + left1
    n_right = n - n_left
    valid = (n_left > 0) & (n_right > 0)
    if not valid.any():
        return 0.0, -1
    with np.errstate(divide="ignore", invalid="ignore"):
        gini_left = 1.0 - (left0 / n_left) ** 2 - (left1 / n_left) ** 2
        right0, right1 = total0 - left0, total1 - left1
        gini_right = 1.0 - (right0 / n_right) ** 2 - (right1 / n_right) ** 2
        weighted = (n_left * gini_left + n_right * gini_right) / n
    parent = 1.0 - (total0 / n) ** 2 - (total1 / n) ** 2
    decrease = np.where(valid, parent - weighted, -np.inf)
    best = int(np.argmax(decrease))
    if decrease[best] <= 1e-12:
        return 0.0, -1
    return float(decrease[best]), best


class DecisionTree(Classifier):
    """A single fully grown CART tree.

    Parameters
    ----------
    max_features:
        Features examined per split: None = all (plain decision tree),
        ``"sqrt"`` = random sqrt subset (inside a random forest).
    max_depth:
        Optional depth cap; None grows to purity (the paper's default).
    min_samples_leaf / min_samples_split:
        Standard CART stopping controls; the defaults (1 / 2) grow the
        tree fully.
    """

    def __init__(
        self,
        max_features: Optional[object] = None,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        seed: int = 0,
        max_bins: int = MAX_BINS,
    ):
        super().__init__()
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.seed = seed
        self.max_bins = max_bins
        self.nodes_: List[_Node] = []
        self._binner: Optional[Binner] = None

    # ------------------------------------------------------------------
    def _n_split_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        k = int(self.max_features)
        if not 1 <= k <= n_features:
            raise ValueError(
                f"max_features {k} out of range [1, {n_features}]"
            )
        return k

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTree":
        features, labels = self._check_fit_inputs(features, labels)
        binner = Binner(self.max_bins).fit(features)
        binned = binner.transform(features)
        self.fit_binned(binned, labels, binner)
        return self

    def fit_binned(
        self, binned: np.ndarray, labels: np.ndarray, binner: Binner
    ) -> "DecisionTree":
        """Fit on pre-binned features (a forest bins once, fits many)."""
        self.n_features_ = binned.shape[1]
        self._binner = binner
        rng = np.random.default_rng(self.seed)
        n_split_features = self._n_split_features(binned.shape[1])
        self.nodes_ = []
        # Explicit stack (sample indices, depth, node slot) avoids
        # recursion limits on deep fully-grown trees.
        root_indices = np.arange(binned.shape[0])
        self.nodes_.append(_Node())
        stack = [(root_indices, 0, 0)]
        while stack:
            indices, depth, slot = stack.pop()
            node = self.nodes_[slot]
            node_labels = labels[indices]
            n_anomalies = int(node_labels.sum())
            node.probability = n_anomalies / len(indices)
            if (
                n_anomalies == 0
                or n_anomalies == len(indices)
                or len(indices) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
            ):
                continue
            split = self._find_split(
                binned, labels, indices, rng, n_split_features
            )
            if split is None:
                continue
            feature, split_bin, decrease = split
            node.feature = feature
            node.gain = decrease * len(indices)
            node.threshold = self._binner.threshold_value(feature, split_bin)
            go_left = binned[indices, feature] <= split_bin
            left_indices = indices[go_left]
            right_indices = indices[~go_left]
            node.left = len(self.nodes_)
            self.nodes_.append(_Node())
            node.right = len(self.nodes_)
            self.nodes_.append(_Node())
            stack.append((left_indices, depth + 1, node.left))
            stack.append((right_indices, depth + 1, node.right))
        return self

    def _find_split(
        self,
        binned: np.ndarray,
        labels: np.ndarray,
        indices: np.ndarray,
        rng: np.random.Generator,
        n_split_features: int,
    ) -> Optional[tuple[int, int, float]]:
        """Best (feature, bin, impurity decrease) over a random feature
        subset, honouring min_samples_leaf."""
        n_features = binned.shape[1]
        if n_split_features < n_features:
            candidates = rng.choice(n_features, n_split_features, replace=False)
        else:
            candidates = np.arange(n_features)
        node_labels = labels[indices]
        best_decrease, best_feature, best_bin = 0.0, -1, -1
        for feature in candidates:
            codes = binned[indices, feature].astype(np.int64)
            counts = np.bincount(
                codes * 2 + node_labels, minlength=2 * self.max_bins
            ).reshape(-1, 2)
            counts0, counts1 = counts[:, 0], counts[:, 1]
            if self.min_samples_leaf > 1:
                # Mask splits that would create an undersized child.
                sizes_left = np.cumsum(counts0 + counts1)[:-1]
                total = sizes_left[-1] + counts0[-1] + counts1[-1]
                ok = (
                    (sizes_left >= self.min_samples_leaf)
                    & (total - sizes_left >= self.min_samples_leaf)
                )
                if not ok.any():
                    continue
                decrease, split_bin = _gini_best_split_masked(
                    counts0, counts1, ok
                )
            else:
                decrease, split_bin = _gini_best_split(counts0, counts1)
            if split_bin >= 0 and decrease > best_decrease:
                best_decrease, best_feature, best_bin = decrease, feature, split_bin
        if best_feature < 0:
            return None
        return int(best_feature), int(best_bin), float(best_decrease)

    # ------------------------------------------------------------------
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = self._check_predict_inputs(features)
        n = features.shape[0]
        probabilities = np.empty(n, dtype=np.float64)
        # Vectorised traversal: route index blocks level by level.
        pending = [(0, np.arange(n))]
        while pending:
            slot, indices = pending.pop()
            node = self.nodes_[slot]
            if node.is_leaf:
                probabilities[indices] = node.probability
                continue
            go_left = features[indices, node.feature] <= node.threshold
            left_indices = indices[go_left]
            right_indices = indices[~go_left]
            if len(left_indices):
                pending.append((node.left, left_indices))
            if len(right_indices):
                pending.append((node.right, right_indices))
        return probabilities

    def vote(self, features: np.ndarray) -> np.ndarray:
        """Hard per-tree classification (majority class of the leaf) —
        what each forest member contributes to the vote (§4.4.2)."""
        return (self.predict_proba(features) > 0.5).astype(np.int8)

    @property
    def depth(self) -> int:
        """Maximum depth of the fitted tree (root = 0)."""
        if not self.nodes_:
            raise RuntimeError("tree is not fitted")
        depths = [0] * len(self.nodes_)
        for slot, node in enumerate(self.nodes_):
            if not node.is_leaf:
                depths[node.left] = depths[slot] + 1
                depths[node.right] = depths[slot] + 1
        return max(depths)

    @property
    def n_leaves(self) -> int:
        if not self.nodes_:
            raise RuntimeError("tree is not fitted")
        return sum(node.is_leaf for node in self.nodes_)

    def decision_path_contributions(self, features: np.ndarray) -> np.ndarray:
        """Per-feature contributions to each prediction (Saabas method).

        Walking a sample's root-to-leaf path, every split changes the
        running node probability; that change is attributed to the split
        feature. The returned (n_samples, n_features + 1) matrix has one
        column per feature plus a trailing *bias* column (the root
        probability), and each row sums exactly to the tree's predicted
        probability for that sample — the invariant the tests enforce.
        """
        features = self._check_predict_inputs(features)
        n = features.shape[0]
        contributions = np.zeros((n, self.n_features_ + 1))
        contributions[:, -1] = self.nodes_[0].probability
        pending = [(0, np.arange(n))]
        while pending:
            slot, indices = pending.pop()
            node = self.nodes_[slot]
            if node.is_leaf:
                continue
            go_left = features[indices, node.feature] <= node.threshold
            for child_slot, child_indices in (
                (node.left, indices[go_left]),
                (node.right, indices[~go_left]),
            ):
                if len(child_indices) == 0:
                    continue
                child = self.nodes_[child_slot]
                contributions[child_indices, node.feature] += (
                    child.probability - node.probability
                )
                pending.append((child_slot, child_indices))
        return contributions

    # ------------------------------------------------------------------
    # Serialisation (portable dict-of-arrays; no pickle)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Portable representation of the fitted tree structure."""
        if not self.nodes_:
            raise RuntimeError("tree is not fitted")
        return {
            "n_features": self.n_features_,
            "feature": [n.feature for n in self.nodes_],
            "threshold": [n.threshold for n in self.nodes_],
            "left": [n.left for n in self.nodes_],
            "right": [n.right for n in self.nodes_],
            "probability": [n.probability for n in self.nodes_],
            "gain": [n.gain for n in self.nodes_],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DecisionTree":
        """Rebuild a prediction-ready tree from :meth:`to_dict` output."""
        tree = cls()
        tree.n_features_ = int(payload["n_features"])
        fields = ("feature", "threshold", "left", "right", "probability", "gain")
        lengths = {len(payload[field]) for field in fields}
        if len(lengths) != 1:
            raise ValueError("inconsistent node array lengths")
        tree.nodes_ = [
            _Node(
                feature=int(payload["feature"][i]),
                threshold=float(payload["threshold"][i]),
                left=int(payload["left"][i]),
                right=int(payload["right"][i]),
                probability=float(payload["probability"][i]),
                gain=float(payload["gain"][i]),
            )
            for i in range(lengths.pop())
        ]
        return tree

    def feature_importances(self) -> np.ndarray:
        """Gini importance: total (impurity decrease * node size) per
        feature, normalised to sum to 1."""
        if self.n_features_ is None:
            raise RuntimeError("tree is not fitted")
        importances = np.zeros(self.n_features_)
        for node in self.nodes_:
            if not node.is_leaf:
                importances[node.feature] += node.gain
        total = importances.sum()
        return importances / total if total else importances


def _gini_best_split_masked(
    counts0: np.ndarray, counts1: np.ndarray, ok: np.ndarray
) -> tuple[float, int]:
    """Gini split with an extra validity mask (min_samples_leaf)."""
    decrease, _ = _gini_best_split(counts0, counts1)
    # Recompute the decrease vector with the extra mask applied.
    total0, total1 = counts0.sum(), counts1.sum()
    n = total0 + total1
    left0 = np.cumsum(counts0)[:-1].astype(np.float64)
    left1 = np.cumsum(counts1)[:-1].astype(np.float64)
    n_left = left0 + left1
    n_right = n - n_left
    valid = (n_left > 0) & (n_right > 0) & ok
    if not valid.any():
        return 0.0, -1
    with np.errstate(divide="ignore", invalid="ignore"):
        gini_left = 1.0 - (left0 / n_left) ** 2 - (left1 / n_left) ** 2
        right0, right1 = total0 - left0, total1 - left1
        gini_right = 1.0 - (right0 / n_right) ** 2 - (right1 / n_right) ** 2
        weighted = (n_left * gini_left + n_right * gini_right) / n
    parent = 1.0 - (total0 / n) ** 2 - (total1 / n) ** 2
    decreases = np.where(valid, parent - weighted, -np.inf)
    best = int(np.argmax(decreases))
    if decreases[best] <= 1e-12:
        return 0.0, -1
    return float(decreases[best]), best
