"""Gaussian naive Bayes — the fourth Fig 10 comparison classifier.

Each feature is modelled as class-conditionally Gaussian and assumed
independent. Severity features from related detector configurations are
*highly* correlated, which is exactly why naive Bayes degrades as
redundant features are added (§5.3.2) — reproducing that behaviour is
the point of including it.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier


class GaussianNB(Classifier):
    """Class-conditional Gaussians with a shared variance floor."""

    def __init__(self, var_smoothing: float = 1e-9):
        super().__init__()
        if var_smoothing <= 0:
            raise ValueError(f"var_smoothing must be positive, got {var_smoothing}")
        self.var_smoothing = var_smoothing
        self.class_prior_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None
        self.var_: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GaussianNB":
        features, labels = self._check_fit_inputs(features, labels)
        if labels.min() == labels.max():
            raise ValueError("training set must contain both classes")
        n_features = features.shape[1]
        self.theta_ = np.zeros((2, n_features))
        self.var_ = np.zeros((2, n_features))
        counts = np.zeros(2)
        for cls in (0, 1):
            rows = features[labels == cls]
            counts[cls] = len(rows)
            self.theta_[cls] = rows.mean(axis=0)
            self.var_[cls] = rows.var(axis=0)
        floor = self.var_smoothing * float(features.var(axis=0).max() or 1.0)
        self.var_ = np.maximum(self.var_, floor)
        self.class_prior_ = counts / counts.sum()
        return self

    def _joint_log_likelihood(self, features: np.ndarray) -> np.ndarray:
        log_likelihood = np.empty((features.shape[0], 2))
        for cls in (0, 1):
            log_prob = -0.5 * (
                np.log(2.0 * np.pi * self.var_[cls])
                + (features - self.theta_[cls]) ** 2 / self.var_[cls]
            ).sum(axis=1)
            log_likelihood[:, cls] = np.log(self.class_prior_[cls]) + log_prob
        return log_likelihood

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = self._check_predict_inputs(features)
        if self.theta_ is None:
            raise RuntimeError("model is not fitted")
        joint = self._joint_log_likelihood(features)
        # Stable softmax over the two classes; return P(anomaly).
        joint -= joint.max(axis=1, keepdims=True)
        likelihood = np.exp(joint)
        return likelihood[:, 1] / likelihood.sum(axis=1)
