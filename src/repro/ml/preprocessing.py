"""Feature-matrix preprocessing: imputation and standardisation.

Detector severities are NaN during warm-up windows and at missing data
points (§4.3.2, §6). The classifiers require finite inputs, so the
feature pipeline imputes NaNs with per-column medians learned from the
training matrix. Standardisation is used by the linear models, and by
the cross-KPI transfer path (§6) where severities from different scales
must be comparable.
"""

from __future__ import annotations

import warnings

import numpy as np


class Imputer:
    """Replace NaN/inf with per-column training medians.

    Columns that are entirely NaN in training (e.g. a detector whose
    warm-up exceeds the training window) fall back to 0.0.
    """

    def __init__(self) -> None:
        self.fill_values_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "Imputer":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got {features.shape}")
        cleaned = np.where(np.isfinite(features), features, np.nan)
        with warnings.catch_warnings():
            # All-NaN columns (a detector whose warm-up exceeds the
            # training window) are expected; they fall back to 0 below.
            warnings.simplefilter("ignore", category=RuntimeWarning)
            medians = np.nanmedian(cleaned, axis=0)
        self.fill_values_ = np.where(np.isfinite(medians), medians, 0.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.fill_values_ is None:
            raise RuntimeError("Imputer is not fitted")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != len(self.fill_values_):
            raise ValueError(
                f"expected (n, {len(self.fill_values_)}) features, "
                f"got {features.shape}"
            )
        out = features.copy()
        bad = ~np.isfinite(out)
        if bad.any():
            out[bad] = np.broadcast_to(self.fill_values_, out.shape)[bad]
        return out

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


class StandardScaler:
    """Zero-mean unit-variance scaling with a variance floor."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got {features.shape}")
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != len(self.mean_):
            raise ValueError(
                f"expected (n, {len(self.mean_)}) features, got {features.shape}"
            )
        return (features - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
