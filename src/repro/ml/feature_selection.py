"""Mutual-information feature ranking (Fig 10) and mRMR selection.

§5.3.2 adds features to each learning algorithm "in the order of their
mutual information [51], a common metric of feature selection". MI is
estimated between a quantile-discretised feature and the 0/1 label.

§4.4.1 defers feature *selection* to future work ("we do not explore
feature selection in this paper ... because it could introduce extra
computation overhead, and the random forest works well by itself").
:func:`mrmr_select` implements that future work: the max-relevance
min-redundancy criterion of the paper's own reference [51] (Peng, Long
& Ding 2005), which penalises picking two near-duplicate detector
configurations. An ablation bench quantifies the trade-off.
"""

from __future__ import annotations

import numpy as np


def _quantile_codes(feature: np.ndarray, n_bins: int) -> np.ndarray:
    """Discretise a feature into quantile bins; NaN gets bin 0."""
    n = len(feature)
    finite = np.isfinite(feature)
    codes = np.zeros(n, dtype=np.int64)
    if finite.any():
        quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
        edges = np.unique(np.quantile(feature[finite], quantiles))
        codes[finite] = 1 + np.searchsorted(edges, feature[finite], side="left")
    return codes


def _discrete_mi(codes_a: np.ndarray, codes_b: np.ndarray) -> float:
    """MI (nats) between two discrete code arrays."""
    n = len(codes_a)
    n_b = int(codes_b.max()) + 1
    joint = np.bincount(
        codes_a * n_b + codes_b, minlength=(int(codes_a.max()) + 1) * n_b
    ).reshape(-1, n_b).astype(np.float64) / n
    marginal_a = joint.sum(axis=1, keepdims=True)
    marginal_b = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = joint * np.log(joint / (marginal_a * marginal_b))
    return float(np.nansum(terms))


def mutual_information_between(
    feature_a: np.ndarray, feature_b: np.ndarray, n_bins: int = 16
) -> float:
    """MI between two continuous features (both quantile-discretised).

    Used by mRMR's redundancy term: two configurations of the same
    detector with neighbouring parameters have high mutual information.
    """
    feature_a = np.asarray(feature_a, dtype=np.float64)
    feature_b = np.asarray(feature_b, dtype=np.float64)
    if feature_a.shape != feature_b.shape:
        raise ValueError(
            f"shapes differ: {feature_a.shape} vs {feature_b.shape}"
        )
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    return _discrete_mi(
        _quantile_codes(feature_a, n_bins), _quantile_codes(feature_b, n_bins)
    )


def mrmr_select(
    features: np.ndarray,
    labels: np.ndarray,
    k: int,
    *,
    n_bins: int = 16,
) -> np.ndarray:
    """Greedy max-relevance min-redundancy selection of ``k`` features.

    Iteratively picks the feature maximising
    ``MI(feature; labels) - mean(MI(feature; already-selected))`` —
    relevance to the anomaly labels minus redundancy with the chosen
    set [51]. Returns the selected column indices in pick order.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got {features.shape}")
    n_features = features.shape[1]
    if not 1 <= k <= n_features:
        raise ValueError(f"k must be in [1, {n_features}], got {k}")

    codes = [_quantile_codes(col, n_bins) for col in features.T]
    label_codes = labels
    relevance = np.array(
        [_discrete_mi(c, label_codes) for c in codes]
    )

    selected = [int(np.argmax(relevance))]
    redundancy_sum = np.zeros(n_features)
    while len(selected) < k:
        last = selected[-1]
        for j in range(n_features):
            if j not in selected:
                redundancy_sum[j] += _discrete_mi(codes[j], codes[last])
        score = relevance - redundancy_sum / len(selected)
        score[selected] = -np.inf
        selected.append(int(np.argmax(score)))
    return np.asarray(selected)


def mutual_information(
    feature: np.ndarray, labels: np.ndarray, n_bins: int = 16
) -> float:
    """MI (nats) between a continuous feature and binary labels.

    The feature is discretised into up to ``n_bins`` quantile bins; NaN
    values get their own bin (missing-ness itself can be informative).
    """
    feature = np.asarray(feature, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if feature.shape != labels.shape:
        raise ValueError(
            f"shapes differ: {feature.shape} vs {labels.shape}"
        )
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    n = len(feature)
    if n == 0:
        raise ValueError("empty input")

    finite = np.isfinite(feature)
    codes = np.full(n, 0, dtype=np.int64)  # bin 0 reserved for NaN
    if finite.any():
        quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
        edges = np.unique(np.quantile(feature[finite], quantiles))
        codes[finite] = 1 + np.searchsorted(edges, feature[finite], side="left")
    n_codes = int(codes.max()) + 1

    joint = np.bincount(codes * 2 + labels, minlength=2 * n_codes).reshape(-1, 2)
    joint = joint.astype(np.float64) / n
    marginal_x = joint.sum(axis=1, keepdims=True)
    marginal_y = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = joint * np.log(joint / (marginal_x * marginal_y))
    return float(np.nansum(terms))


def rank_features_by_mi(
    features: np.ndarray, labels: np.ndarray, n_bins: int = 16
) -> np.ndarray:
    """Feature indices sorted by decreasing mutual information with the
    labels — the order Fig 10 adds features in."""
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got {features.shape}")
    scores = np.array(
        [mutual_information(col, labels, n_bins) for col in features.T]
    )
    # Stable sort so ties keep registry order (reproducible rankings).
    return np.argsort(-scores, kind="stable")
