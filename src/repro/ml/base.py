"""Classifier interface for the learning substrate.

scikit-learn is not available in this environment, so the paper's
machine-learning block ([48] in the paper) is reimplemented from
scratch: a random forest (the algorithm Opprentice uses) and the four
comparison algorithms of Fig 10 (decision tree, logistic regression,
linear SVM, naive Bayes). All classifiers share this minimal interface:

* :meth:`fit(X, y)` — train on a float feature matrix and 0/1 labels;
* :meth:`predict_proba(X)` — anomaly probability (or a monotone score
  in [0, 1]) per row, which the cThld machinery thresholds;
* :meth:`predict(X, threshold)` — hard 0/1 classification.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when predicting with an unfitted classifier."""


class Classifier(abc.ABC):
    """A binary anomaly classifier over severity-feature rows."""

    def __init__(self) -> None:
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "Classifier":
        """Train on ``features`` (n_samples, n_features) and 0/1
        ``labels`` (n_samples,). Returns self."""

    @abc.abstractmethod
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Anomaly probability (or monotone score in [0, 1]) per row."""

    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard classification at a given cThld (default 0.5, §4.4.2)."""
        return (self.predict_proba(features) >= threshold).astype(np.int8)

    # ------------------------------------------------------------------
    # Shared validation
    # ------------------------------------------------------------------
    def _check_fit_inputs(
        self, features: np.ndarray, labels: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if labels.shape != (features.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} does not match "
                f"{features.shape[0]} samples"
            )
        if not np.isfinite(features).all():
            raise ValueError(
                "features contain NaN/inf; impute them first "
                "(see repro.ml.preprocessing.Imputer)"
            )
        unique = set(np.unique(labels))
        if not unique <= {0, 1}:
            raise ValueError(f"labels must be 0/1, got {sorted(unique)}")
        labels = labels.astype(np.int8)
        self.n_features_ = features.shape[1]
        return features, labels

    def _check_predict_inputs(self, features: np.ndarray) -> np.ndarray:
        if self.n_features_ is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.n_features_:
            raise ValueError(
                f"expected (n, {self.n_features_}) features, got {features.shape}"
            )
        if not np.isfinite(features).all():
            raise ValueError("features contain NaN/inf; impute them first")
        return features
