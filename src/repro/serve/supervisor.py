"""Process supervision for the sharded serve plane.

:class:`ShardSupervisor` promotes the fleet layer's
:class:`~repro.fleet.ConsistentHashRing` from in-process shard
*selection* to routing across N worker *processes*. Each shard process
hosts a disjoint :class:`~repro.fleet.FleetManager` sub-fleet (see
:mod:`repro.serve.shard`), is forked once at startup via the same
``fork`` context the persistent extraction pool of
:mod:`repro.core.execution` uses, and talks to the supervisor over a
private ``socketpair`` speaking the length-prefixed JSON protocol of
:mod:`repro.serve.protocol`.

Supervision contract:

* A shard that dies mid-request (``kill -9``, OOM, crash) surfaces as
  :class:`~repro.serve.protocol.ConnectionClosed`; the supervisor
  re-forks it immediately, the replacement restores from the shard's
  last atomic checkpoint, and the original request is retried once
  against the restored state. Work since the last checkpoint is the
  only loss window (bounded by the checkpoint cadence).
* :meth:`restart_shard` is the graceful path: the shard checkpoints
  everything — queued points included — before exiting, so the
  replacement resumes with **zero alert divergence** relative to an
  undisturbed fleet (pinned by the serve test suite).
* Restarts are observable: ``repro_serve_shard_restarts_total``
  (labels ``shard``, ``reason``: ``crash`` / ``graceful``) plus
  ``shard_started`` / ``shard_restarted`` events.

Aggregation: :meth:`status` merges per-shard fleet statuses into one
:class:`~repro.fleet.FleetStatus` — each KPI row re-tagged with the
*process* shard index so operators see the routing that actually
happened — and :meth:`metrics` merges per-shard observability
snapshots with every sample tagged ``shard=<index>``.
"""

from __future__ import annotations

import dataclasses
import socket
import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.execution import get_fork_context
from ..fleet.manager import FleetManager, ServiceFactory
from ..fleet.scheduler import ConsistentHashRing
from ..fleet.status import FleetStatus, merge_statuses
from ..obs import get_provider, merge_snapshots
from .protocol import ConnectionClosed, recv_message, send_message
from .shard import ShardSpec, shard_worker_main

#: Ring salt for KPI → *process* routing. Deliberately distinct from
#: the in-fleet default (``repro-fleet``) so the two layers of
#: consistent hashing are independent.
SUPERVISOR_SALT = "repro-serve"

#: A ``(shard_index, shard_kpi_ids) -> FleetManager`` factory; runs
#: inside the freshly forked shard on first start.
ShardFleetBuilder = Callable[[int, Sequence[str]], FleetManager]


class ShardError(RuntimeError):
    """A shard answered a request with ``ok: false``."""


class _ShardHandle:
    """Parent-side bookkeeping for one shard process.

    All mutable fields are read and written only under ``lock`` —
    requests to one shard serialize, while different shards proceed
    concurrently (the ingest plane fans batches out across handles).
    """

    def __init__(self, index: int, spec: ShardSpec):
        self.index = index
        self.spec = spec
        self.lock = threading.Lock()
        self.process = None
        self.conn: Optional[socket.socket] = None
        self.pid: Optional[int] = None
        self.restarts = 0
        self.stopped = False


class ShardSupervisor:
    """Fork, route to, monitor, and re-fork N shard processes."""

    def __init__(
        self,
        kpi_ids: Sequence[str],
        fleet_builder: ShardFleetBuilder,
        *,
        workdir: str,
        n_shards: int = 4,
        service_factory: Optional[ServiceFactory] = None,
        checkpoint_every_batches: int = 0,
        replicas: int = 64,
    ):
        if not kpi_ids:
            raise ValueError("a serve plane needs at least one KPI")
        self.n_shards = n_shards
        self.workdir = Path(workdir)
        self.ring = ConsistentHashRing(
            n_shards, replicas=replicas, salt=SUPERVISOR_SALT
        )
        self.assignment: Dict[int, List[str]] = {
            index: [] for index in range(n_shards)
        }
        self._route: Dict[str, int] = {}
        for kpi_id in kpi_ids:
            shard = self.ring.shard_for(kpi_id)
            self.assignment[shard].append(kpi_id)
            self._route[kpi_id] = shard
        self._handles: List[_ShardHandle] = []
        for index in range(n_shards):
            assigned = self.assignment[index]
            spec = ShardSpec(
                index=index,
                checkpoint_dir=str(self.workdir / f"shard-{index}"),
                # Bind the slice now; the closure crosses the fork by
                # memory inheritance, never by pickling.
                build_fleet=(
                    lambda idx=index, ids=tuple(assigned): fleet_builder(
                        idx, list(ids)
                    )
                ),
                service_factory=service_factory,
                checkpoint_every_batches=checkpoint_every_batches,
            )
            self._handles.append(_ShardHandle(index, spec))
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Fork every shard and block until each answers a ping
        (i.e. has built or restored its sub-fleet)."""
        if self._started:
            return
        for handle in self._handles:
            with handle.lock:
                self._fork_locked(handle)
            get_provider().emit(
                "shard_started", shard=handle.index, pid=handle.pid,
                kpis=len(self.assignment[handle.index]),
            )
        self._started = True

    def stop(self, *, checkpoint: bool = True) -> None:
        """Gracefully shut every shard down (checkpointing by default)."""
        for handle in self._handles:
            with handle.lock:
                if handle.stopped or handle.conn is None:
                    continue
                handle.stopped = True
                try:
                    send_message(
                        handle.conn,
                        {"op": "shutdown", "checkpoint": checkpoint},
                    )
                    recv_message(handle.conn)
                except ConnectionClosed:
                    pass  # already dead; nothing left to flush
                handle.conn.close()
                handle.conn = None
                if handle.process is not None:
                    handle.process.join(timeout=30)

    def __enter__(self) -> "ShardSupervisor":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def restart_shard(self, index: int) -> int:
        """Gracefully restart one shard mid-stream.

        The shard checkpoints its entire state (queues included) before
        exiting, so the replacement diverges from an undisturbed fleet
        by exactly nothing. Returns the new pid.
        """
        handle = self._handles[index]
        with handle.lock:
            if handle.conn is not None:
                try:
                    send_message(
                        handle.conn, {"op": "shutdown", "checkpoint": True}
                    )
                    recv_message(handle.conn)
                except ConnectionClosed:
                    pass  # fell over before the ack; checkpoint still has the last durable state
                handle.conn.close()
                handle.conn = None
            if handle.process is not None:
                handle.process.join(timeout=30)
            self._refork_locked(handle, reason="graceful")
            return handle.pid

    # ------------------------------------------------------------------
    # Forking
    # ------------------------------------------------------------------
    def _fork_locked(self, handle: _ShardHandle) -> None:
        """Fork one shard (caller holds ``handle.lock``)."""
        context = get_fork_context()
        parent_end, child_end = socket.socketpair()
        process = context.Process(
            target=shard_worker_main,
            args=(child_end, parent_end, handle.spec),
            daemon=True,
            name=f"repro-serve-shard-{handle.index}",
        )
        process.start()
        child_end.close()
        handle.process = process
        handle.conn = parent_end
        handle.stopped = False
        try:
            send_message(parent_end, {"op": "ping"})
            reply = recv_message(parent_end)
        except ConnectionClosed as error:
            raise RuntimeError(
                f"shard {handle.index} died during startup "
                f"(build/restore failed; see its stderr)"
            ) from error
        handle.pid = reply.get("pid", process.pid)

    def _refork_locked(self, handle: _ShardHandle, *, reason: str) -> None:
        """Replace a dead/stopped shard (caller holds ``handle.lock``).

        The replacement restores from the shard's last atomic
        checkpoint — :func:`repro.serve.shard.load_or_build` prefers it
        over the builder whenever one exists.
        """
        if handle.conn is not None:
            handle.conn.close()
            handle.conn = None
        if handle.process is not None:
            handle.process.join(timeout=30)
        self._fork_locked(handle)
        handle.restarts += 1
        provider = get_provider()
        provider.counter(
            "repro_serve_shard_restarts_total",
            "Shard processes re-forked by the supervisor",
            shard=str(handle.index), reason=reason,
        ).inc()
        provider.emit(
            "shard_restarted", shard=handle.index, pid=handle.pid,
            reason=reason, restarts=handle.restarts,
        )

    # ------------------------------------------------------------------
    # Routing + request plumbing
    # ------------------------------------------------------------------
    @property
    def kpi_ids(self) -> List[str]:
        return sorted(self._route)

    def shard_for(self, kpi_id: str) -> Optional[int]:
        """The process shard serving ``kpi_id`` (None if unknown)."""
        return self._route.get(kpi_id)

    def request(self, index: int, op: str, **payload) -> dict:
        """Send one op to shard ``index`` and return its reply payload.

        On :class:`ConnectionClosed` (the shard died) the shard is
        re-forked from its checkpoint and the request retried exactly
        once; a second failure propagates. Replies with ``ok: false``
        raise :class:`ShardError`.
        """
        handle = self._handles[index]
        with handle.lock:
            try:
                send_message(handle.conn, {"op": op, **payload})
                reply = recv_message(handle.conn)
            except ConnectionClosed:
                self._refork_locked(handle, reason="crash")
                send_message(handle.conn, {"op": op, **payload})
                reply = recv_message(handle.conn)
        if not reply.get("ok"):
            raise ShardError(
                f"shard {index} failed op {op!r}: "
                f"{reply.get('error', 'unknown error')}"
            )
        return reply

    # ------------------------------------------------------------------
    # Data plane helpers
    # ------------------------------------------------------------------
    def offer_batch(
        self, index: int, points: Sequence[Tuple[str, float]]
    ) -> dict:
        """Forward a pre-routed batch to one shard (enqueue + pump)."""
        return self.request(
            index, "offer_batch", points=[list(point) for point in points]
        )

    def submit_labels(
        self, kpi_id: str, windows: Sequence[Tuple[int, int]]
    ) -> dict:
        shard = self._route[kpi_id]
        return self.request(
            shard, "submit_labels", kpi=kpi_id,
            windows=[list(window) for window in windows],
        )

    def retrain(self, kpi_ids: Optional[Sequence[str]] = None) -> dict:
        """Retrain everywhere (or route the named KPIs to their shards)."""
        results: Dict[str, Optional[float]] = {}
        if kpi_ids is None:
            for index in range(self.n_shards):
                results.update(self.request(index, "retrain")["results"])
            return results
        by_shard: Dict[int, List[str]] = {}
        for kpi_id in kpi_ids:
            by_shard.setdefault(self._route[kpi_id], []).append(kpi_id)
        for index, ids in by_shard.items():
            results.update(
                self.request(index, "retrain", kpis=ids)["results"]
            )
        return results

    def revive(self, kpi_id: str) -> None:
        self.request(self._route[kpi_id], "revive", kpi=kpi_id)

    def checkpoint_all(self) -> List[str]:
        return [
            self.request(index, "checkpoint")["path"]
            for index in range(self.n_shards)
        ]

    # ------------------------------------------------------------------
    # Rollups
    # ------------------------------------------------------------------
    def shard_table(self) -> List[dict]:
        """The supervision table for status documents (no shard I/O)."""
        table = []
        for handle in self._handles:
            with handle.lock:
                alive = (
                    handle.process is not None and handle.process.is_alive()
                )
                table.append(
                    {
                        "shard": handle.index,
                        "pid": handle.pid,
                        "alive": alive,
                        "restarts": handle.restarts,
                        "kpis": len(self.assignment[handle.index]),
                    }
                )
        return table

    def status(self) -> Tuple[FleetStatus, List[dict]]:
        """One merged fleet status plus the per-process shard table.

        Each KPI row's ``shard`` is re-tagged from the sub-fleet's
        internal index to the *process* shard that served it — the
        number an operator can actually act on (kill, restart).
        """
        statuses = []
        for index in range(self.n_shards):
            raw = FleetStatus.from_dict(self.request(index, "status")["status"])
            statuses.append(
                dataclasses.replace(
                    raw,
                    kpis=tuple(
                        dataclasses.replace(kpi, shard=index)
                        for kpi in raw.kpis
                    ),
                )
            )
        return merge_statuses(statuses), self.shard_table()

    def metrics(self) -> dict:
        """All shards' snapshots merged, samples tagged ``shard=<i>``."""
        return merge_snapshots(
            {
                str(index): self.request(index, "metrics")["snapshot"]
                for index in range(self.n_shards)
            },
            label="shard",
        )


__all__ = [
    "SUPERVISOR_SALT",
    "ShardError",
    "ShardFleetBuilder",
    "ShardSupervisor",
]
