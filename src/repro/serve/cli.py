"""``repro-serve`` — the sharded fleet behind a networked ingest plane.

Two ways to populate the shards::

    repro-serve --kpis 8 --shards 4 --workdir serve/
        # scenario mode: the Table 1 synthetic scenario (same spec
        # language as repro-loadgen). Each forked shard generates and
        # bootstraps only its consistent-hash slice, so startup cost
        # parallelizes across shards; every shard then writes its
        # initial checkpoint before serving.

    repro-serve --fleet fleet-dir/ --shards 4 --workdir serve/
        # fleet mode: shards restore disjoint slices of one saved
        # fleet checkpoint directory (repro-fleet run --save).

Either way the plane prints a ready line::

    repro-serve: listening on http://127.0.0.1:8123 (4 shards, 8 KPIs)

and serves until SIGINT/SIGTERM, shutting the shards down gracefully
(final checkpoints included). ``--checkpoint-every-batches 1`` makes
every acknowledged batch durable — the setting kill-recovery drills
run with; larger cadences trade durability lag for throughput.

Observability is always on (a serve plane without metrics cannot be
SLO-gated); ``GET /metrics`` serves the cross-process rollup.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from pathlib import Path
from typing import List, Optional

from ..core import MonitoringService
from ..fleet.banks import small_bank
from ..fleet.manager import FleetManager
from ..loadgen.scenario import SECONDS_PER_WEEK, ScenarioSpec, build_scenario
from ..ml import RandomForest
from .server import ReproServer
from .supervisor import ShardSupervisor


def _scenario_spec(args) -> ScenarioSpec:
    return ScenarioSpec(
        n_kpis=args.kpis,
        weeks=args.weeks,
        bootstrap_weeks=args.bootstrap_weeks,
        profiles=tuple(args.profiles),
        seed_offset=args.seed_offset,
        dataset=args.dataset,
    )


def _diagnoser(args):
    """Fit the shared diagnoser once, in the parent, before any shard
    forks — the children inherit the fitted object by memory, so the
    (seeded, deterministic) training cost is paid exactly once."""
    if not args.diagnose:
        return None
    from ..diagnosis import default_diagnoser

    return default_diagnoser()


def _scenario_service_factory(spec: ScenarioSpec, args):
    """Rebuild a bare service for one scenario KPI (the restore path
    after a shard re-fork; bank sized from the profile's interval)."""
    intervals = spec.intervals()
    diagnoser = _diagnoser(args)

    def build(kpi_id: str) -> MonitoringService:
        points_per_week = SECONDS_PER_WEEK // intervals[kpi_id]
        return MonitoringService(
            configs=small_bank(points_per_week),
            classifier_factory=lambda: RandomForest(
                n_estimators=args.trees, seed=0
            ),
            min_duration_points=args.min_duration,
            diagnoser=diagnoser,
        )

    return build


def _fleet_service_factory(args):
    points_per_week = SECONDS_PER_WEEK // args.interval
    diagnoser = _diagnoser(args)

    def build(kpi_id: str) -> MonitoringService:
        return MonitoringService(
            configs=small_bank(points_per_week),
            classifier_factory=lambda: RandomForest(
                n_estimators=args.trees, seed=0
            ),
            min_duration_points=args.min_duration,
            diagnoser=diagnoser,
        )

    return build


def build_supervisor(args) -> ShardSupervisor:
    """Compose the supervisor for either population mode."""
    if args.fleet:
        manifest_path = Path(args.fleet) / "fleet.json"
        if not manifest_path.exists():
            raise ValueError(f"{args.fleet}: no fleet.json manifest")
        manifest = json.loads(manifest_path.read_text())
        kpi_ids = [entry["kpi_id"] for entry in manifest.get("kpis", [])]
        if not kpi_ids:
            raise ValueError(f"{args.fleet}: fleet has no KPIs")
        service_factory = _fleet_service_factory(args)
        fleet_dir = args.fleet

        def build_fleet(index: int, ids: List[str]) -> FleetManager:
            return FleetManager.restore(
                fleet_dir, kpi_ids=ids, service_factory=service_factory
            )

    else:
        spec = _scenario_spec(args)
        spec.validate()
        kpi_ids = spec.kpi_ids()
        service_factory = _scenario_service_factory(spec, args)
        queue_depth = args.queue_depth
        batch_points = args.batch_points

        def build_fleet(index: int, ids: List[str]) -> FleetManager:
            fleet = FleetManager(
                n_shards=1,
                queue_depth=queue_depth,
                batch_points=batch_points,
                service_factory=service_factory,
            )
            for kpi in build_scenario(spec, kpi_ids=ids):
                fleet.add_kpi(kpi.kpi_id, bootstrap=kpi.bootstrap)
            return fleet

    return ShardSupervisor(
        kpi_ids,
        build_fleet,
        workdir=args.workdir,
        n_shards=args.shards,
        service_factory=service_factory,
        checkpoint_every_batches=args.checkpoint_every_batches,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve a sharded multi-process fleet behind an HTTP/JSON "
            "ingest plane with supervised checkpoint-restore shards."
        ),
    )
    source = parser.add_argument_group("fleet population")
    source.add_argument(
        "--fleet", default=None,
        help="restore shards from this saved fleet directory "
             "(otherwise a synthetic scenario is generated)",
    )
    source.add_argument("--kpis", type=int, default=8,
                        help="scenario mode: KPIs to serve (default 8)")
    source.add_argument("--weeks", type=float, default=0.25,
                        help="scenario mode: live span after bootstrap")
    source.add_argument("--bootstrap-weeks", type=float, default=1.0,
                        help="scenario mode: bootstrap history per KPI")
    source.add_argument("--profiles", nargs="+",
                        default=["PV", "#SR", "SRT"],
                        help="scenario mode: Table 1 profiles to cycle")
    source.add_argument("--dataset", default=None,
                        help="scenario mode: draw KPIs from this "
                             "repro-corpus dataset instead of profiles")
    source.add_argument("--seed-offset", type=int, default=0,
                        help="scenario mode: shift every generation seed")
    source.add_argument("--interval", type=int, default=3600,
                        help="fleet mode: sampling interval seconds")

    plane = parser.add_argument_group("serving")
    plane.add_argument("--host", default="127.0.0.1")
    plane.add_argument("--port", type=int, default=0,
                       help="0 binds an ephemeral port (printed)")
    plane.add_argument("--shards", type=int, default=4,
                       help="shard processes to fork (default 4)")
    plane.add_argument("--workdir", required=True,
                       help="per-shard checkpoint directories live here")
    plane.add_argument("--checkpoint-every-batches", type=int, default=1,
                       help="shard checkpoint cadence in acknowledged "
                            "batches (default 1: every batch durable; "
                            "0: only startup/shutdown/on-demand)")

    service = parser.add_argument_group("per-KPI services")
    service.add_argument("--trees", type=int, default=10)
    service.add_argument("--min-duration", type=int, default=2)
    service.add_argument(
        "--no-diagnose", dest="diagnose", action="store_false",
        help="skip fitting the anomaly-kind diagnoser (closed alerts "
             "then carry diagnosis=null)",
    )
    service.add_argument("--queue-depth", type=int, default=256)
    service.add_argument("--batch-points", type=int, default=64)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        supervisor = build_supervisor(args)
    except ValueError as error:
        print(f"repro-serve: {error}", file=sys.stderr)
        return 2
    server = ReproServer(supervisor, host=args.host, port=args.port)
    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    signal.signal(signal.SIGINT, _on_signal)
    signal.signal(signal.SIGTERM, _on_signal)
    server.start()
    try:
        print(
            f"repro-serve: listening on {server.url} "
            f"({supervisor.n_shards} shards, "
            f"{len(supervisor.kpi_ids)} KPIs)",
            flush=True,
        )
        stop.wait()
    finally:
        print("repro-serve: shutting down", flush=True)
        server.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = ["build_parser", "build_supervisor", "main"]
