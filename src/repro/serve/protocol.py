"""Length-prefixed JSON framing for the supervisor↔shard links.

The serve plane's control and data traffic crosses process boundaries
over plain stream sockets (``socket.socketpair`` between the ingest
plane and its forked shards). Every message is one JSON document framed
as a 4-byte big-endian length prefix followed by the UTF-8 payload —
self-delimiting over a byte stream, no sentinel bytes to escape, and
cheap to parse incrementally.

Requests are ``{"op": <name>, ...payload}``; replies are ``{"ok": true,
...result}`` or ``{"ok": false, "error": <repr>}``. The framing layer
itself is shape-agnostic — it moves any JSON object — so the same two
functions serve both directions of the conversation.

A peer that disappears mid-frame (a ``kill -9``'d shard) surfaces as
:class:`ConnectionClosed`, which the supervisor treats as the death
signal that triggers a checkpoint-restore re-fork.
"""

from __future__ import annotations

import json
import socket
import struct

#: Frame-size ceiling. Large enough for a 10k-KPI status rollup or a
#: fat ingest batch, small enough that a corrupted length prefix cannot
#: ask the receiver to allocate gigabytes.
MAX_MESSAGE_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed frame: oversized, truncated, or not a JSON object."""


class ConnectionClosed(ConnectionError):
    """The peer closed the stream (cleanly or by dying)."""


def send_message(sock: socket.socket, message: dict) -> None:
    """Frame and send one JSON message (blocking until fully sent)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame ceiling"
        )
    try:
        sock.sendall(_LENGTH.pack(len(payload)) + payload)
    except (BrokenPipeError, ConnectionResetError) as error:
        raise ConnectionClosed(f"peer went away mid-send: {error}") from error


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    """Read exactly ``n_bytes`` or raise :class:`ConnectionClosed`."""
    chunks = []
    remaining = n_bytes
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except ConnectionResetError as error:
            raise ConnectionClosed(
                f"peer reset mid-frame: {error}"
            ) from error
        if not chunk:
            raise ConnectionClosed(
                f"peer closed with {remaining} of {n_bytes} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict:
    """Receive one framed JSON message (blocking).

    Raises :class:`ConnectionClosed` on EOF and :class:`ProtocolError`
    on frames that cannot be a valid message.
    """
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte ceiling (corrupt prefix?)"
        )
    payload = _recv_exact(sock, length)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame is not JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


__all__ = [
    "MAX_MESSAGE_BYTES",
    "ConnectionClosed",
    "ProtocolError",
    "send_message",
    "recv_message",
]
