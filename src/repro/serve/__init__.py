"""The distributed serve plane: sharded fleet processes behind HTTP.

Opprentice's deployment story (§5.8) is one detection service per KPI;
the fleet layer scaled that to many KPIs in one process, and this
package scales it across *processes* on one machine:

* :mod:`~repro.serve.protocol` — length-prefixed JSON framing over the
  supervisor↔shard socketpairs.
* :mod:`~repro.serve.shard` — the forked worker: a
  :class:`~repro.fleet.FleetManager` sub-fleet behind a request loop,
  with atomic fleet checkpoints for crash recovery.
* :class:`ShardSupervisor` — consistent-hash KPI→process routing,
  fork-once startup, re-fork-on-death with checkpoint restore,
  graceful zero-divergence restarts, cross-shard status/metrics
  rollups.
* :class:`ReproServer` / :class:`IngestPlane` — the asyncio HTTP/JSON
  front: single-point and NDJSON batch ingest with 429 backpressure,
  ``/status`` and ``/metrics`` aggregation, and the operator control
  plane (labels, retrain, checkpoint, shard restart).

The ``repro-serve`` CLI (``python -m repro.serve``) wires the stack up
from a synthetic scenario or a saved fleet directory; ``repro-loadgen
--target`` replays deterministic traffic at it so the same SLO gate
that judges in-process soaks judges a real networked run.
"""

from .protocol import (
    MAX_MESSAGE_BYTES,
    ConnectionClosed,
    ProtocolError,
    recv_message,
    send_message,
)
from .server import MAX_BODY_BYTES, IngestPlane, ReproServer
from .shard import ShardSpec, atomic_checkpoint, find_checkpoint
from .supervisor import (
    SUPERVISOR_SALT,
    ShardError,
    ShardFleetBuilder,
    ShardSupervisor,
)

__all__ = [
    "MAX_MESSAGE_BYTES",
    "MAX_BODY_BYTES",
    "ConnectionClosed",
    "ProtocolError",
    "recv_message",
    "send_message",
    "IngestPlane",
    "ReproServer",
    "ShardSpec",
    "atomic_checkpoint",
    "find_checkpoint",
    "SUPERVISOR_SALT",
    "ShardError",
    "ShardFleetBuilder",
    "ShardSupervisor",
]
