"""The shard worker: one forked process hosting a sub-fleet.

A shard process owns a :class:`~repro.fleet.FleetManager` holding the
KPIs its consistent-hash slice assigned (see
:class:`~repro.serve.supervisor.ShardSupervisor`) and serves a
request/reply loop over the socketpair it was forked with: ``ping``,
``offer_batch`` (enqueue + pump, returning alert events and drop
counts), ``status``, ``metrics``, ``submit_labels``, ``retrain``,
``revive``, ``checkpoint`` and ``shutdown``.

Durability model: the shard checkpoints its whole sub-fleet (the PR 5
bit-identical fleet directory format) into ``<checkpoint_dir>/live``
via an atomic directory swap — first at startup, then every
``checkpoint_every_batches`` acknowledged batches (and on demand / at
graceful shutdown). A checkpoint is taken *before* the batch that
triggered it is acknowledged, so an acknowledged batch at cadence 1 is
always durable; at larger cadences durability lags by at most
``cadence - 1`` batches, which is the window a ``kill -9`` can lose.
A re-forked shard finds the ``live`` directory (or ``old``, if the
kill landed mid-swap) and resumes from it — queued points, quarantine
backoffs and open alert runs included.

Unlike the stateless extraction workers of
:mod:`repro.core.execution`, a shard is a long-lived stateful server:
it deliberately owns mutable state (its fleet), so it is *not* listed
under the ``worker-reachability`` lint entry points — nothing it
mutates is ever expected to be visible to the parent except through
explicit replies and checkpoints.
"""

from __future__ import annotations

import os
import shutil
import socket
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from ..core.service import AlertEvent
from ..fleet.manager import FleetManager, ServiceFactory
from ..obs import combine_snapshots, get_provider
from ..obs.provider import ObservabilityProvider, enable
from ..timeseries.windows import AnomalyWindow
from .protocol import ConnectionClosed, recv_message, send_message

#: Subdirectory names of a shard's checkpoint rotation.
LIVE_DIR = "live"
TMP_DIR = "live.tmp"
OLD_DIR = "live.old"

FleetBuilder = Callable[[], FleetManager]


@dataclass
class ShardSpec:
    """Everything one shard process needs, composed by the supervisor.

    ``build_fleet`` constructs the shard's sub-fleet on *first* start
    (bootstrap a scenario slice, or restore a slice of a shared fleet
    directory); it is carried across the fork by memory inheritance,
    so any callable works. On re-fork after a crash the builder is
    skipped: the shard restores from its own last checkpoint instead,
    using ``service_factory`` to rebuild services with the right
    detector bank.
    """

    index: int
    checkpoint_dir: str
    build_fleet: FleetBuilder
    service_factory: Optional[ServiceFactory] = None
    #: Checkpoint after every Nth acknowledged batch (0 = only at
    #: startup, on demand, and at graceful shutdown).
    checkpoint_every_batches: int = 0


def find_checkpoint(checkpoint_dir: Path) -> Optional[Path]:
    """The restorable fleet directory under ``checkpoint_dir``, if any.

    Prefers ``live``; falls back to ``old`` when a kill landed between
    the two renames of the atomic swap (at that instant ``old`` holds
    the last complete checkpoint).
    """
    for name in (LIVE_DIR, OLD_DIR):
        candidate = checkpoint_dir / name
        if (candidate / "fleet.json").exists():
            return candidate
    return None


def atomic_checkpoint(fleet: FleetManager, checkpoint_dir: Path) -> Path:
    """Write ``fleet`` under ``checkpoint_dir`` with an atomic swap.

    Save into ``live.tmp``, rotate ``live`` → ``live.old``, rename the
    tmp into place, then drop the old generation. A crash at any point
    leaves either the previous ``live`` or a complete ``live.old`` for
    :func:`find_checkpoint` — never a half-written checkpoint in the
    restore path.
    """
    root = Path(checkpoint_dir)
    root.mkdir(parents=True, exist_ok=True)
    live, tmp, old = root / LIVE_DIR, root / TMP_DIR, root / OLD_DIR
    if tmp.exists():
        shutil.rmtree(tmp)
    fleet.save(tmp)
    if old.exists():
        shutil.rmtree(old)
    if live.exists():
        os.rename(live, old)
    os.rename(tmp, live)
    if old.exists():
        shutil.rmtree(old)
    return live


def load_or_build(spec: ShardSpec) -> FleetManager:
    """Restore the shard's last checkpoint, or build + checkpoint it.

    The initial checkpoint is written before the shard serves anything,
    so a re-fork after even an immediate crash has a restore point.
    """
    root = Path(spec.checkpoint_dir)
    existing = find_checkpoint(root)
    if existing is not None:
        return FleetManager.restore(
            existing, service_factory=spec.service_factory
        )
    fleet = spec.build_fleet()
    atomic_checkpoint(fleet, root)
    return fleet


def _serialize_events(events: Sequence[AlertEvent]) -> List[dict]:
    return [
        {
            "kind": event.kind,
            "kpi": event.kpi,
            "begin_index": event.begin_index,
            "end_index": event.end_index,
            "peak_score": event.peak_score,
            "diagnosis": event.diagnosis,
        }
        for event in events
    ]


class _ShardServer:
    """The request/reply loop around one shard's fleet."""

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        self.fleet = load_or_build(spec)
        self.batches = 0
        self._since_checkpoint = 0

    # ------------------------------------------------------------------
    # Ops (each returns the reply payload; "ok" is added by the loop)
    # ------------------------------------------------------------------
    def op_ping(self, payload: dict) -> dict:
        return {
            "pid": os.getpid(),
            "shard": self.spec.index,
            "kpis": self.fleet.kpi_ids,
            "batches": self.batches,
        }

    def op_offer_batch(self, payload: dict) -> dict:
        """Enqueue ``points`` (``[[kpi, value], ...]``), pump, reply.

        ``accepted`` counts points that entered a queue without
        displacing another; ``rejected`` is the backpressure signal the
        ingest plane turns into 429s. When the checkpoint cadence comes
        due, the checkpoint is taken before this reply is sent — an
        acknowledged batch at cadence 1 is durable.
        """
        accepted = 0
        rejected = 0
        unknown: List[str] = []
        for kpi_id, value in payload["points"]:
            if kpi_id not in self.fleet:
                unknown.append(kpi_id)
                continue
            if self.fleet.offer(kpi_id, float(value)):
                accepted += 1
            else:
                rejected += 1
        events = self.fleet.drain_all() if payload.get("pump", True) else []
        self.batches += 1
        self._since_checkpoint += 1
        cadence = self.spec.checkpoint_every_batches
        if cadence and self._since_checkpoint >= cadence:
            self._since_checkpoint = 0
            atomic_checkpoint(self.fleet, Path(self.spec.checkpoint_dir))
        return {
            "accepted": accepted,
            "rejected": rejected,
            "unknown": unknown,
            "events": _serialize_events(events),
            "batches": self.batches,
        }

    def op_status(self, payload: dict) -> dict:
        return {
            "status": self.fleet.status().as_dict(),
            "pid": os.getpid(),
            "batches": self.batches,
        }

    def op_metrics(self, payload: dict) -> dict:
        """This process's provider snapshot merged with the per-KPI
        registry rollup — the same combination the in-process soak
        checkpoints record."""
        return {
            "snapshot": combine_snapshots(
                [get_provider().snapshot(), self.fleet.metrics_snapshot()]
            )
        }

    def op_submit_labels(self, payload: dict) -> dict:
        """Label windows for one KPI, clipped to the points its service
        has actually ingested (the operator cannot label the future)."""
        kpi_id = payload["kpi"]
        horizon = self.fleet.service(kpi_id).history_length
        windows = [
            AnomalyWindow(int(begin), int(end))
            for begin, end in payload["windows"]
            if int(end) <= horizon
        ]
        if windows:
            self.fleet.submit_labels(kpi_id, windows)
        return {"submitted": len(windows)}

    def op_retrain(self, payload: dict) -> dict:
        results = self.fleet.retrain(payload.get("kpis"))
        return {"results": results}

    def op_revive(self, payload: dict) -> dict:
        self.fleet.revive(payload["kpi"])
        return {}

    def op_checkpoint(self, payload: dict) -> dict:
        path = atomic_checkpoint(self.fleet, Path(self.spec.checkpoint_dir))
        self._since_checkpoint = 0
        return {"path": str(path)}

    # ------------------------------------------------------------------
    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, f"op_{op}", None)
        if handler is None or not str(op).isidentifier():
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            reply = handler(request)
        except Exception as error:  # repro: disable=api-hygiene — request containment: one bad request must answer with an error frame, not kill the shard and lose its queued points
            return {"ok": False, "error": repr(error)}
        reply["ok"] = True
        return reply


def shard_worker_main(
    conn: socket.socket,
    parent_end: Optional[socket.socket],
    spec: ShardSpec,
) -> None:
    """Entry point of a forked shard process.

    Installs a *fresh* observability provider (the fork inherited the
    parent's counters; shard metrics must start from zero or the
    ``/metrics`` rollup would double-count the parent), closes the
    parent's socket end, builds or restores the fleet, and serves until
    the ``shutdown`` op or until the supervisor end of the socket
    closes (parent death — the shard must not outlive it).
    """
    if parent_end is not None:
        parent_end.close()
    enable(ObservabilityProvider())
    try:
        server = _ShardServer(spec)
        while True:
            try:
                request = recv_message(conn)
            except ConnectionClosed:
                return  # supervisor is gone; exit quietly
            if request.get("op") == "shutdown":
                if request.get("checkpoint", True):
                    atomic_checkpoint(
                        server.fleet, Path(spec.checkpoint_dir)
                    )
                send_message(conn, {"ok": True, "pid": os.getpid()})
                return
            send_message(conn, server.dispatch(request))
    finally:
        conn.close()


__all__ = [
    "LIVE_DIR",
    "OLD_DIR",
    "TMP_DIR",
    "FleetBuilder",
    "ShardSpec",
    "atomic_checkpoint",
    "find_checkpoint",
    "load_or_build",
    "shard_worker_main",
]
