"""The networked ingest plane: HTTP/JSON in front of the shard fleet.

A deliberately small asyncio HTTP/1.1 server (stdlib only — the repo
bakes in no web framework) that fronts a
:class:`~repro.serve.supervisor.ShardSupervisor`:

* ``POST /ingest`` — one ``{"kpi": ..., "value": ...}`` point, routed
  to its shard, pumped, alert events in the reply. A point the shard's
  bounded queue rejected comes back as **429** with ``Retry-After`` —
  the fleet layer's backpressure made visible to the network client.
* ``POST /ingest/batch`` — newline-delimited JSON points, grouped per
  shard in arrival order and fanned out concurrently (shards are
  disjoint, so cross-shard concurrency cannot reorder any one KPI's
  stream). 429 when everything offered was rejected.
* ``GET /status`` — the shared :func:`~repro.fleet.status_document`
  (``source="serve"``) with the supervision table: the same schema
  ``repro-fleet run --json`` and ``repro-fleet status --json`` emit.
* ``GET /metrics`` — the cross-process rollup: every shard's snapshot
  (samples tagged ``shard=<i>``) combined with this process's own
  serve-plane metrics; ``?format=prom`` renders Prometheus text.
* ``POST /labels``, ``POST /retrain``, ``POST /checkpoint``,
  ``POST /shards/<i>/restart`` — the operator control plane, including
  graceful mid-stream shard restart (zero alert divergence).
* ``GET /healthz`` — liveness.

Serve-plane observability (this process; the shard-side taxonomy rides
in via the metrics rollup): ``repro_serve_requests_total{endpoint,
status}``, ``repro_serve_request_seconds{endpoint}`` and the
supervisor's restart counter/events.

Blocking supervisor requests run in a thread pool sized to the shard
count; per-shard locks serialize traffic to one shard while different
shards proceed in parallel.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..fleet.status import status_document
from ..obs import combine_snapshots, enable, get_provider, render_prometheus
from .supervisor import ShardError, ShardSupervisor

#: Upper bound on request bodies (matches the framing ceiling's intent:
#: a corrupt or hostile Content-Length must not allocate gigabytes).
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class _HttpError(Exception):
    """Short-circuit a handler with a specific HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class IngestPlane:
    """The asyncio server; owns no fleet state, only the supervisor."""

    def __init__(
        self,
        supervisor: ShardSupervisor,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, supervisor.n_shards + 2),
            thread_name_prefix="repro-serve",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown cancelled this connection mid-read
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return False
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            await self._respond(
                writer, 400, {"error": "malformed request line"},
                endpoint="<bad>", close=True,
            )
            return False
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            await self._respond(
                writer, 413,
                {"error": f"body of {length} bytes exceeds "
                          f"{MAX_BODY_BYTES}"},
                endpoint="<bad>", close=True,
            )
            return False
        body = await reader.readexactly(length) if length else b""
        keep_alive = headers.get("connection", "").lower() != "close"

        parts = urlsplit(target)
        path = parts.path
        query = parse_qs(parts.query)
        endpoint = self._endpoint_label(path)
        started = time.perf_counter()
        try:
            status, payload, raw = await self._dispatch(
                method, path, query, body
            )
        except _HttpError as error:
            status, payload, raw = error.status, {"error": error.message}, None
        except ShardError as error:
            status, payload, raw = 500, {"error": str(error)}, None
        except Exception as error:  # repro: disable=api-hygiene — request containment: a handler bug must answer this request with a 500, not tear down the listener mid-soak
            status, payload, raw = 500, {"error": repr(error)}, None
        provider = get_provider()
        provider.histogram(
            "repro_serve_request_seconds",
            "Ingest-plane request latency",
            endpoint=endpoint,
        ).observe(time.perf_counter() - started)
        provider.counter(
            "repro_serve_requests_total",
            "Ingest-plane requests served",
            endpoint=endpoint, status=str(status),
        ).inc()
        await self._respond(
            writer, status, payload, endpoint=endpoint,
            close=not keep_alive, raw=raw,
        )
        return keep_alive

    @staticmethod
    def _endpoint_label(path: str) -> str:
        """Collapse parameterized paths to bounded label values."""
        if path.startswith("/shards/"):
            return "/shards/restart"
        return path

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        endpoint: str,
        close: bool,
        raw: Optional[Tuple[str, bytes]] = None,
    ) -> None:
        if raw is not None:
            content_type, body = raw
        else:
            content_type = "application/json"
            body = (json.dumps(payload) + "\n").encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        if status == 429:
            head.append("Retry-After: 1")
        if close:
            head.append("Connection: close")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, query: dict, body: bytes
    ) -> Tuple[int, dict, Optional[Tuple[str, bytes]]]:
        if path == "/healthz":
            return 200, {"ok": True}, None
        if path == "/status":
            self._require(method, "GET")
            return 200, await self._status_document(), None
        if path == "/metrics":
            self._require(method, "GET")
            return await self._metrics(query)
        if path == "/ingest":
            self._require(method, "POST")
            return await self._ingest_single(body)
        if path == "/ingest/batch":
            self._require(method, "POST")
            return await self._ingest_batch(body)
        if path == "/labels":
            self._require(method, "POST")
            return await self._labels(body)
        if path == "/retrain":
            self._require(method, "POST")
            return await self._retrain(body)
        if path == "/checkpoint":
            self._require(method, "POST")
            paths = await self._call(self.supervisor.checkpoint_all)
            return 200, {"checkpoints": paths}, None
        if path.startswith("/shards/") and path.endswith("/restart"):
            self._require(method, "POST")
            return await self._restart_shard(path)
        raise _HttpError(404, f"no route for {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    async def _call(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    @staticmethod
    def _parse_json(body: bytes) -> dict:
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, f"body is not JSON: {error}") from error
        if not isinstance(parsed, dict):
            raise _HttpError(400, "body must be a JSON object")
        return parsed

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _status_document(self) -> dict:
        merged, table = await self._call(self.supervisor.status)
        return status_document(merged, source="serve", shards=table)

    async def _metrics(self, query: dict):
        shard_rollup = await self._call(self.supervisor.metrics)
        snapshot = combine_snapshots(
            [get_provider().snapshot(), shard_rollup]
        )
        if query.get("format", [""])[0] == "prom":
            text = render_prometheus(snapshot)
            return 200, {}, ("text/plain; version=0.0.4", text.encode("utf-8"))
        return 200, snapshot, None

    def _point(self, record: dict) -> Tuple[str, float, int]:
        kpi = record.get("kpi")
        if not isinstance(kpi, str):
            raise _HttpError(400, "point needs a string 'kpi'")
        try:
            value = float(record["value"])
        except (KeyError, TypeError, ValueError) as error:
            raise _HttpError(
                400, f"point for {kpi!r} needs a numeric 'value'"
            ) from error
        shard = self.supervisor.shard_for(kpi)
        return kpi, value, -1 if shard is None else shard

    async def _ingest_single(self, body: bytes):
        kpi, value, shard = self._point(self._parse_json(body))
        if shard < 0:
            raise _HttpError(404, f"unknown KPI {kpi!r}")
        reply = await self._call(
            self.supervisor.offer_batch, shard, [(kpi, value)]
        )
        result = {
            "accepted": reply["accepted"],
            "rejected": reply["rejected"],
            "events": reply["events"],
        }
        if reply["accepted"] == 0:
            return 429, result, None
        return 200, result, None

    async def _ingest_batch(self, body: bytes):
        """NDJSON points, grouped per shard in arrival order, offered
        to all shards concurrently."""
        by_shard: Dict[int, List[Tuple[str, float]]] = {}
        unknown: List[str] = []
        for line_no, line in enumerate(body.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise _HttpError(
                    400, f"batch line {line_no} is not JSON: {error}"
                ) from error
            if not isinstance(record, dict):
                raise _HttpError(
                    400, f"batch line {line_no} must be a JSON object"
                )
            kpi, value, shard = self._point(record)
            if shard < 0:
                unknown.append(kpi)
                continue
            by_shard.setdefault(shard, []).append((kpi, value))
        if not by_shard and not unknown:
            raise _HttpError(400, "empty batch")
        replies = await asyncio.gather(
            *(
                self._call(self.supervisor.offer_batch, shard, points)
                for shard, points in by_shard.items()
            )
        )
        accepted = sum(reply["accepted"] for reply in replies)
        rejected = sum(reply["rejected"] for reply in replies)
        events: List[dict] = []
        for reply in replies:
            events.extend(reply["events"])
            unknown.extend(reply["unknown"])
        result = {
            "accepted": accepted,
            "rejected": rejected,
            "unknown": unknown,
            "events": events,
        }
        if accepted == 0 and rejected > 0:
            return 429, result, None
        if accepted == 0 and unknown:
            return 404, result, None
        return 200, result, None

    async def _labels(self, body: bytes):
        parsed = self._parse_json(body)
        kpi = parsed.get("kpi")
        if self.supervisor.shard_for(kpi) is None:
            raise _HttpError(404, f"unknown KPI {kpi!r}")
        windows = parsed.get("windows", [])
        reply = await self._call(
            lambda: self.supervisor.submit_labels(
                kpi, [tuple(window) for window in windows]
            )
        )
        return 200, {"submitted": reply["submitted"]}, None

    async def _retrain(self, body: bytes):
        parsed = self._parse_json(body) if body.strip() else {}
        kpis = parsed.get("kpis")
        if kpis is not None:
            missing = [
                kpi for kpi in kpis
                if self.supervisor.shard_for(kpi) is None
            ]
            if missing:
                raise _HttpError(404, f"unknown KPIs: {missing}")
        results = await self._call(self.supervisor.retrain, kpis)
        return 200, {"results": results}, None

    async def _restart_shard(self, path: str):
        fragment = path[len("/shards/"):-len("/restart")]
        try:
            index = int(fragment)
        except ValueError as error:
            raise _HttpError(
                400, f"bad shard index {fragment!r}"
            ) from error
        if not 0 <= index < self.supervisor.n_shards:
            raise _HttpError(404, f"no shard {index}")
        pid = await self._call(self.supervisor.restart_shard, index)
        return 200, {"shard": index, "pid": pid}, None


class ReproServer:
    """Synchronous wrapper: the plane on a background event loop.

    What the CLI and the tests use — ``start()`` returns once the port
    is bound, ``close()`` tears down the loop and (by default) the
    supervisor's shards.
    """

    def __init__(
        self,
        supervisor: ShardSupervisor,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        stop_supervisor: bool = True,
    ):
        self.plane = IngestPlane(supervisor, host=host, port=port)
        self.supervisor = supervisor
        self._stop_supervisor = stop_supervisor
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._started = threading.Event()
        self._shutdown: Optional[asyncio.Event] = None  # created in-loop

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.plane.start())
        self._shutdown = asyncio.Event()
        self._started.set()
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        """Serve until :meth:`close` sets the shutdown event, then tear
        everything down *inside* the loop (no cross-thread races)."""
        serve_task = asyncio.ensure_future(self.plane.serve_forever())
        await self._shutdown.wait()
        serve_task.cancel()
        try:
            await serve_task
        except asyncio.CancelledError:
            pass
        await self.plane.stop()
        pending = [
            task for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)

    def start(self) -> "ReproServer":
        # A serve plane without metrics cannot be SLO-gated; turn the
        # process-global provider on (idempotent — an already-enabled
        # provider is kept).
        enable()
        self.supervisor.start()
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("serve plane failed to bind within 30s")
        return self

    @property
    def port(self) -> int:
        return self.plane.port

    @property
    def url(self) -> str:
        return f"http://{self.plane.host}:{self.plane.port}"

    def close(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._shutdown.set)
            self._thread.join(timeout=30)
        if self._stop_supervisor:
            self.supervisor.stop()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = ["MAX_BODY_BYTES", "IngestPlane", "ReproServer"]
