"""Brutlag's aberrant-behaviour detector [13] (LISA 2000).

Brutlag extends Holt-Winters with a *confidence band*: alongside the
forecast, an exponentially weighted estimate of the seasonal absolute
deviation ``d`` is maintained,

.. math::

    d_t = \\gamma |v_t - \\hat v_t| + (1 - \\gamma) d_{t-m}

and a point is aberrant when it leaves ``[forecast - delta * d,
forecast + delta * d]``. In the unified severity model (§4.3.1) the
severity is the *band-relative deviation* ``|v - forecast| / d`` — the
sThld then plays the role of Brutlag's scaling factor delta (classically
2-3).

This detector is not part of the Table 3 bank; it is registered through
:func:`repro.detectors.registry.extended_detectors` as a demonstration
of §5.2's claim that "emerging detectors ... can be easily plugged into
Opprentice".
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from ..timeseries import TimeSeries
from .base import Detector, DetectorError, ParamValue, SeverityStream

#: Sampled parameter grid used by ``extended_detectors``.
BRUTLAG_GRID = (0.3, 0.5, 0.7)


class Brutlag(Detector):
    """Holt-Winters forecasting with confidence-band severities."""

    kind = "brutlag"

    def __init__(
        self,
        alpha: float,
        beta: float,
        gamma: float,
        season_points: int,
    ):
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0.0 < value < 1.0:
                raise DetectorError(f"{name} must be in (0, 1), got {value}")
        if season_points <= 1:
            raise DetectorError(f"season_points must be > 1, got {season_points}")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.season_points = season_points

    def params(self) -> Dict[str, ParamValue]:
        return {"alpha": self.alpha, "beta": self.beta, "gamma": self.gamma}

    def warmup(self) -> int:
        # One season to initialise the state + one to seed deviations.
        return 2 * self.season_points

    def stream_memory(self) -> None:
        # Exponentially smoothed level/trend/seasonals/deviations carry
        # the whole prefix; no finite replay buffer reproduces them.
        return None

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        stream = self.stream()
        return np.fromiter(
            (stream.update(v) for v in values), dtype=np.float64, count=len(values)
        )

    def stream(self) -> SeverityStream:
        return _BrutlagStream(
            self.alpha, self.beta, self.gamma, self.season_points
        )


class _BrutlagStream(SeverityStream):
    """Online Holt-Winters + seasonal deviation band."""

    def __init__(self, alpha: float, beta: float, gamma: float, season: int):
        self._alpha = alpha
        self._beta = beta
        self._gamma = gamma
        self._season = season
        self._init_buffer: list = []
        self._seasonals: list = []
        self._deviations: list = []
        self._level = 0.0
        self._trend = 0.0
        self._t = 0

    def _initialise(self) -> None:
        finite = [v for v in self._init_buffer if not math.isnan(v)]
        mean = sum(finite) / len(finite) if finite else 0.0
        self._level = mean
        self._trend = 0.0
        self._seasonals = [
            (v - mean) if not math.isnan(v) else 0.0 for v in self._init_buffer
        ]
        # Seed the deviation band with the mean absolute seasonal
        # residual of the first season (a neutral, scale-matched start).
        spread = (
            sum(abs(v - mean) for v in finite) / len(finite) if finite else 1.0
        )
        self._deviations = [max(spread, 1e-12)] * self._season

    def update(self, value: float) -> float:
        value = float(value)
        season = self._season
        if self._t < season:
            self._init_buffer.append(value)
            self._t += 1
            if self._t == season:
                self._initialise()
            return float("nan")

        phase = self._t % season
        seasonal = self._seasonals[phase]
        deviation = self._deviations[phase]
        forecast = self._level + self._trend + seasonal
        in_warmup = self._t < 2 * season
        self._t += 1
        if math.isnan(value):
            return float("nan")

        severity = abs(value - forecast) / max(deviation, 1e-12)
        last_level = self._level
        self._level = (
            self._alpha * (value - seasonal)
            + (1.0 - self._alpha) * (last_level + self._trend)
        )
        self._trend = (
            self._beta * (self._level - last_level)
            + (1.0 - self._beta) * self._trend
        )
        self._seasonals[phase] = (
            self._gamma * (value - self._level) + (1.0 - self._gamma) * seasonal
        )
        self._deviations[phase] = (
            self._gamma * abs(value - forecast)
            + (1.0 - self._gamma) * deviation
        )
        return float("nan") if in_warmup else severity
