"""Two-sided CUSUM change detector.

The cumulative-sum control chart is the classic sequential
change-detection scheme used across the anomaly-detection literature
the paper builds on (e.g. the sketch-based change detection of
Krishnamurthy et al. [11] runs CUSUM-style forecruns over sketch
buckets). The two-sided form tracks

.. math::

    S^+_t = \\max(0, S^+_{t-1} + z_t - k) \\qquad
    S^-_t = \\max(0, S^-_{t-1} - z_t - k)

where ``z`` is the standardised innovation of the series against a
trailing-window baseline and ``k`` is the slack (drift) parameter. The
severity is ``max(S+, S-)`` — small isolated wiggles decay, sustained
shifts accumulate.

Not part of the Table 3 bank; registered via ``extended_detectors``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

import numpy as np

from ..timeseries import TimeSeries
from .base import Detector, DetectorError, ParamValue, SeverityStream

#: Sampled grids used by ``extended_detectors``.
CUSUM_WINDOWS = (20, 50)
CUSUM_SLACKS = (0.25, 0.5, 1.0)


class CUSUM(Detector):
    """Two-sided standardised CUSUM over a trailing baseline window."""

    kind = "cusum"

    def __init__(self, window: int, slack: float):
        if window <= 1:
            raise DetectorError(f"window must be > 1, got {window}")
        if slack < 0:
            raise DetectorError(f"slack must be >= 0, got {slack}")
        self.window = window
        self.slack = slack

    def params(self) -> Dict[str, ParamValue]:
        return {"win": self.window, "k": self.slack}

    def warmup(self) -> int:
        return self.window

    def stream_memory(self) -> None:
        # The cumulative sums accumulate over the whole run and the std
        # floor is fixed from the original warm-up prefix, so no finite
        # buffer reproduces the batch severities.
        return None

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        n = len(values)
        out = np.full(n, np.nan)
        if n <= self.window:
            return out
        # Trailing-window statistics via explicit windows (exactly what
        # the stream computes, so the two modes agree bit-for-bit).
        windows = np.lib.stride_tricks.sliding_window_view(values, self.window)
        mean = np.full(n, np.nan)
        std = np.full(n, np.nan)
        with np.errstate(invalid="ignore"):
            mean[self.window:] = windows[:-1].mean(axis=1)
            std[self.window:] = windows[:-1].std(axis=1)
        # The std floor must be causal: it uses only warm-up data.
        prefix = values[: self.window]
        prefix_finite = prefix[np.isfinite(prefix)]
        floor = (
            1e-6 * float(np.abs(prefix_finite).mean())
            if len(prefix_finite) and np.abs(prefix_finite).mean() > 0
            else 1e-12
        )
        with np.errstate(invalid="ignore"):
            z = (values - mean) / np.maximum(std, floor)
        positive = 0.0
        negative = 0.0
        for t in range(self.window, n):
            zt = z[t]
            if np.isnan(zt):
                out[t] = np.nan
                continue
            positive = max(0.0, positive + zt - self.slack)
            negative = max(0.0, negative - zt - self.slack)
            out[t] = max(positive, negative)
        return out

    def stream(self) -> SeverityStream:
        return _CUSUMStream(self)


class _CUSUMStream(SeverityStream):
    def __init__(self, detector: CUSUM):
        self._detector = detector
        self._window: deque = deque(maxlen=detector.window)
        self._positive = 0.0
        self._negative = 0.0
        self._prefix_abs_sum = 0.0
        self._prefix_n = 0
        self._floor: float | None = None

    def update(self, value: float) -> float:
        value = float(value)
        detector = self._detector
        if len(self._window) < detector.window:
            if np.isfinite(value):
                self._prefix_abs_sum += abs(value)
                self._prefix_n += 1
            self._window.append(value)
            return float("nan")
        if self._floor is None:
            self._floor = (
                1e-6 * self._prefix_abs_sum / self._prefix_n
                if self._prefix_n and self._prefix_abs_sum > 0.0
                else 1e-12
            )
        window = np.asarray(self._window)
        finite = window[np.isfinite(window)]
        if len(finite) == 0 or np.isnan(value):
            severity = float("nan")
        else:
            # Match the batch rolling mean/std semantics: statistics over
            # the full window positions, NaN-poisoned like numpy's
            # non-nan-aware rolling helpers.
            if np.isfinite(window).all():
                mean = float(window.mean())
                std = float(window.std())
                z = (value - mean) / max(std, self._floor)
                self._positive = max(0.0, self._positive + z - detector.slack)
                self._negative = max(0.0, self._negative - z - detector.slack)
                severity = max(self._positive, self._negative)
            else:
                severity = float("nan")
        self._window.append(value)
        return severity
