"""Historical average / historical MAD detectors [5].

"Historical average assumes the data follow Gaussian distribution, and
uses how many times of standard deviation the point is away from the
mean as the severity" (§4.3.1). The Gaussian is fitted per *time of
day*: for point *t* the sample is the values at the same time-of-day on
each of the previous ``win * 7`` days (Table 3: ``win = 1..5`` weeks).

The MAD variant replaces (mean, std) with (median, 1.4826 * MAD), the
standard robust scale estimate, improving robustness to dirty data
(§5.2, §6).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..timeseries import TimeSeries
from .base import Detector, DetectorError, ParamValue, SeverityStream

#: Table 3 window grid, in weeks.
HISTORICAL_WINDOWS_WEEKS = (1, 2, 3, 4, 5)

#: Consistency constant making MAD estimate the Gaussian sigma.
MAD_TO_SIGMA = 1.4826


class _HistoricalBase(Detector):
    """Same-time-of-day history matrix shared by both variants."""

    def __init__(self, window_weeks: int, points_per_day: int):
        if window_weeks <= 0:
            raise DetectorError(
                f"window_weeks must be positive, got {window_weeks}"
            )
        if points_per_day <= 0:
            raise DetectorError(
                f"points_per_day must be positive, got {points_per_day}"
            )
        self.window_weeks = window_weeks
        self.points_per_day = points_per_day
        self.window_days = 7 * window_weeks

    def params(self) -> Dict[str, ParamValue]:
        return {"win": f"{self.window_weeks}w"}

    def warmup(self) -> int:
        return self.window_days * self.points_per_day

    def stream_memory(self) -> None:
        # The scale floor is fixed from the *original* warm-up prefix
        # (see _scale_floor); a truncated buffer would recompute it from
        # a different prefix. The ring-buffer stream carries it instead.
        return None

    def _history(self, values: np.ndarray) -> np.ndarray:
        """history[i, k] = value at the same time-of-day, k+1 days before
        point ``warmup + i``."""
        n = len(values)
        start = self.warmup()
        indices = np.arange(start, n)
        offsets = (np.arange(1, self.window_days + 1) * self.points_per_day)
        return values[indices[:, np.newaxis] - offsets[np.newaxis, :]]

    def _scale_floor(self, values: np.ndarray) -> float:
        """Floor for the scale estimate so constant histories do not
        yield infinite severities. Computed from the warm-up prefix only
        so severities stay causal (appending future data must never
        change past severities)."""
        prefix = values[: self.warmup()]
        magnitude = np.nanmean(np.abs(prefix)) if len(prefix) else np.nan
        if not np.isfinite(magnitude) or magnitude == 0.0:
            return 1e-12
        return 1e-6 * float(magnitude)


class _HistoricalStream(SeverityStream):
    """Ring-buffer stream over the same-time-of-day history.

    The scale floor matches the batch mode: 1e-6 of the mean magnitude
    of the warm-up prefix (fixed once the warm-up completes).
    """

    def __init__(self, detector: "_HistoricalBase"):
        self._detector = detector
        size = detector.warmup()
        self._ring = np.full(size, np.nan)
        self._count = 0
        self._prefix_abs_sum = 0.0
        self._prefix_n = 0
        self._floor: float | None = None

    def update(self, value: float) -> float:
        value = float(value)
        detector = self._detector
        size = len(self._ring)
        position = self._count % size
        if self._count < size:
            # Warm-up: accumulate the floor statistic over finite
            # prefix values (matching the batch nanmean semantics).
            if np.isfinite(value):
                self._prefix_abs_sum += abs(value)
                self._prefix_n += 1
            severity = float("nan")
        else:
            if self._floor is None:
                if self._prefix_n and self._prefix_abs_sum > 0.0:
                    self._floor = 1e-6 * (
                        self._prefix_abs_sum / self._prefix_n
                    )
                else:
                    self._floor = 1e-12
            offsets = (
                position
                - np.arange(1, detector.window_days + 1) * detector.points_per_day
            ) % size
            history = self._ring[offsets]
            severity = detector._score_one(value, history, self._floor)
        self._ring[position] = value
        self._count += 1
        return severity


class HistoricalAverage(_HistoricalBase):
    """Severity = |v - mean| / std over the same-time-of-day history."""

    kind = "historical average"

    def stream(self) -> SeverityStream:
        return _HistoricalStream(self)

    def _score_one(
        self, value: float, history: np.ndarray, floor: float
    ) -> float:
        finite = history[np.isfinite(history)]
        if len(finite) == 0:
            return float("nan")
        mean = float(finite.mean())
        std = float(finite.std())
        return abs(value - mean) / max(std, floor)

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        n = len(values)
        out = np.full(n, np.nan)
        start = self.warmup()
        if n <= start:
            return out
        history = self._history(values)
        with np.errstate(invalid="ignore"):
            mean = np.nanmean(history, axis=1)
            std = np.nanstd(history, axis=1)
        floor = self._scale_floor(values)
        out[start:] = np.abs(values[start:] - mean) / np.maximum(std, floor)
        return out


class HistoricalMad(_HistoricalBase):
    """Severity = |v - median| / (1.4826 * MAD) over the history."""

    kind = "historical MAD"

    def stream(self) -> SeverityStream:
        return _HistoricalStream(self)

    def _score_one(
        self, value: float, history: np.ndarray, floor: float
    ) -> float:
        finite = history[np.isfinite(history)]
        if len(finite) == 0:
            return float("nan")
        median = float(np.median(finite))
        mad = float(np.median(np.abs(finite - median)))
        return abs(value - median) / max(MAD_TO_SIGMA * mad, floor)

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        n = len(values)
        out = np.full(n, np.nan)
        start = self.warmup()
        if n <= start:
            return out
        history = self._history(values)
        with np.errstate(invalid="ignore"):
            median = np.nanmedian(history, axis=1)
            mad = np.nanmedian(
                np.abs(history - median[:, np.newaxis]), axis=1
            )
        floor = self._scale_floor(values)
        scale = np.maximum(MAD_TO_SIGMA * mad, floor)
        out[start:] = np.abs(values[start:] - median) / scale
        return out
