"""Historical average / historical MAD detectors [5].

"Historical average assumes the data follow Gaussian distribution, and
uses how many times of standard deviation the point is away from the
mean as the severity" (§4.3.1). The Gaussian is fitted per *time of
day*: for point *t* the sample is the values at the same time-of-day on
each of the previous ``win * 7`` days (Table 3: ``win = 1..5`` weeks).

The MAD variant replaces (mean, std) with (median, 1.4826 * MAD), the
standard robust scale estimate, improving robustness to dirty data
(§5.2, §6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..timeseries import TimeSeries
from .base import (
    Detector,
    DetectorConfig,
    DetectorError,
    FamilyEvaluator,
    FamilyKey,
    ParamValue,
    SeverityStream,
    register_family_builder,
)

#: Table 3 window grid, in weeks.
HISTORICAL_WINDOWS_WEEKS = (1, 2, 3, 4, 5)

#: Consistency constant making MAD estimate the Gaussian sigma.
MAD_TO_SIGMA = 1.4826


class _HistoricalBase(Detector):
    """Same-time-of-day history matrix shared by both variants."""

    def __init__(self, window_weeks: int, points_per_day: int):
        if window_weeks <= 0:
            raise DetectorError(
                f"window_weeks must be positive, got {window_weeks}"
            )
        if points_per_day <= 0:
            raise DetectorError(
                f"points_per_day must be positive, got {points_per_day}"
            )
        self.window_weeks = window_weeks
        self.points_per_day = points_per_day
        self.window_days = 7 * window_weeks

    def params(self) -> Dict[str, ParamValue]:
        return {"win": f"{self.window_weeks}w"}

    def warmup(self) -> int:
        return self.window_days * self.points_per_day

    def family(self) -> Optional[FamilyKey]:
        # Average and MAD configs of one grid share the history gather
        # and scale floor (one per window size).
        return ("historical", self.points_per_day)

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        n = len(values)
        out = np.full(n, np.nan)
        start = self.warmup()
        if n <= start:
            return out
        history = self._history(values)
        floor = self._scale_floor(values)
        out[start:] = self._score_columns(values[start:], history, floor)
        return out

    def _score_columns(
        self, tail: np.ndarray, history: np.ndarray, floor: float
    ) -> np.ndarray:
        """Severity of each post-warm-up point given its same-time-of-day
        ``history`` rows and the fixed scale ``floor``."""
        raise NotImplementedError

    def stream_memory(self) -> None:
        # The scale floor is fixed from the *original* warm-up prefix
        # (see _scale_floor); a truncated buffer would recompute it from
        # a different prefix. The ring-buffer stream carries it instead.
        return None

    def _history(self, values: np.ndarray) -> np.ndarray:
        """history[i, k] = value at the same time-of-day, k+1 days before
        point ``warmup + i``."""
        n = len(values)
        start = self.warmup()
        indices = np.arange(start, n)
        offsets = (np.arange(1, self.window_days + 1) * self.points_per_day)
        return values[indices[:, np.newaxis] - offsets[np.newaxis, :]]

    def _scale_floor(self, values: np.ndarray) -> float:
        """Floor for the scale estimate so constant histories do not
        yield infinite severities. Computed from the warm-up prefix only
        so severities stay causal (appending future data must never
        change past severities)."""
        prefix = values[: self.warmup()]
        magnitude = np.nanmean(np.abs(prefix)) if len(prefix) else np.nan
        if not np.isfinite(magnitude) or magnitude == 0.0:
            return 1e-12
        return 1e-6 * float(magnitude)


class _HistoricalStream(SeverityStream):
    """Ring-buffer stream over the same-time-of-day history.

    The scale floor matches the batch mode: 1e-6 of the mean magnitude
    of the warm-up prefix (fixed once the warm-up completes).
    """

    def __init__(self, detector: "_HistoricalBase"):
        self._detector = detector
        size = detector.warmup()
        self._ring = np.full(size, np.nan)
        self._count = 0
        self._prefix_abs_sum = 0.0
        self._prefix_n = 0
        self._floor: float | None = None

    def update(self, value: float) -> float:
        value = float(value)
        detector = self._detector
        size = len(self._ring)
        position = self._count % size
        if self._count < size:
            # Warm-up: accumulate the floor statistic over finite
            # prefix values (matching the batch nanmean semantics).
            if np.isfinite(value):
                self._prefix_abs_sum += abs(value)
                self._prefix_n += 1
            severity = float("nan")
        else:
            if self._floor is None:
                if self._prefix_n and self._prefix_abs_sum > 0.0:
                    self._floor = 1e-6 * (
                        self._prefix_abs_sum / self._prefix_n
                    )
                else:
                    self._floor = 1e-12
            offsets = (
                position
                - np.arange(1, detector.window_days + 1) * detector.points_per_day
            ) % size
            history = self._ring[offsets]
            severity = detector._score_one(value, history, self._floor)
        self._ring[position] = value
        self._count += 1
        return severity


class HistoricalAverage(_HistoricalBase):
    """Severity = |v - mean| / std over the same-time-of-day history."""

    kind = "historical average"

    def stream(self) -> SeverityStream:
        return _HistoricalStream(self)

    def _score_one(
        self, value: float, history: np.ndarray, floor: float
    ) -> float:
        finite = history[np.isfinite(history)]
        if len(finite) == 0:
            return float("nan")
        mean = float(finite.mean())
        std = float(finite.std())
        return abs(value - mean) / max(std, floor)

    def _score_columns(
        self, tail: np.ndarray, history: np.ndarray, floor: float
    ) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            mean = np.nanmean(history, axis=1)
            std = np.nanstd(history, axis=1)
        return np.abs(tail - mean) / np.maximum(std, floor)


class HistoricalMad(_HistoricalBase):
    """Severity = |v - median| / (1.4826 * MAD) over the history."""

    kind = "historical MAD"

    def stream(self) -> SeverityStream:
        return _HistoricalStream(self)

    def _score_one(
        self, value: float, history: np.ndarray, floor: float
    ) -> float:
        finite = history[np.isfinite(history)]
        if len(finite) == 0:
            return float("nan")
        median = float(np.median(finite))
        mad = float(np.median(np.abs(finite - median)))
        return abs(value - median) / max(MAD_TO_SIGMA * mad, floor)

    def _score_columns(
        self, tail: np.ndarray, history: np.ndarray, floor: float
    ) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            median = np.nanmedian(history, axis=1)
            mad = np.nanmedian(
                np.abs(history - median[:, np.newaxis]), axis=1
            )
        scale = np.maximum(MAD_TO_SIGMA * mad, floor)
        return np.abs(tail - median) / scale


@register_family_builder("historical")
class HistoricalBankEvaluator(FamilyEvaluator):
    """Fused pass over historical average + historical MAD: one
    same-time-of-day history gather and one scale floor per window size
    feed both variants' statistics."""

    kind = "historical"

    def __init__(self, configs):
        super().__init__(configs)
        grids = {config.detector.points_per_day for config in self.configs}
        if len(grids) != 1:
            raise DetectorError(
                f"historical family spans several day grids: {sorted(grids)}"
            )
        self.points_per_day = grids.pop()

    def evaluate(self, series: TimeSeries) -> np.ndarray:
        values = Detector._validate(series)
        n = len(values)
        out = np.full((n, len(self.configs)), np.nan)
        by_window: Dict[int, List[Tuple[int, DetectorConfig]]] = {}
        for j, config in enumerate(self.configs):
            by_window.setdefault(config.detector.window_weeks, []).append(
                (j, config)
            )
        for _, items in sorted(by_window.items()):
            lead = items[0][1].detector
            start = lead.warmup()
            if n <= start:
                continue
            history = lead._history(values)
            floor = lead._scale_floor(values)
            tail = values[start:]
            for j, config in items:
                out[start:, j] = config.detector._score_columns(
                    tail, history, floor
                )
        return out
