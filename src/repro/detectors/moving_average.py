"""Moving-average family: simple MA [4], weighted MA [11], MA of diff,
and EWMA [11].

All four are *prediction-based* detectors: they forecast the current
point from a trailing window (or exponentially weighted history) and use
the absolute residual ``|actual - forecast|`` as the severity (§4.3.1).
"MA of diff" is the search engine's in-house jitter detector: it averages
recent one-slot differences, so sustained jitter accumulates severity.

Table 3 samples ``win = 10, 20, 30, 40, 50`` points for the window
detectors and ``alpha = 0.1, 0.3, 0.5, 0.7, 0.9`` for EWMA.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

import numpy as np

from ..timeseries import TimeSeries
from .base import (
    Detector,
    DetectorError,
    FamilyEvaluator,
    FamilyKey,
    ParamValue,
    SeverityStream,
    prefix_sums,
    register_family_builder,
    rolling_mean,
)
from .threshold import SimpleThreshold

#: Table 3 window grid (points).
MA_WINDOWS = (10, 20, 30, 40, 50)
#: Table 3 EWMA weight grid.
EWMA_ALPHAS = (0.1, 0.3, 0.5, 0.7, 0.9)


class SimpleMA(Detector):
    """Severity = |v[t] - mean(v[t-win : t])|."""

    kind = "simple MA"

    def __init__(self, window: int):
        if window <= 0:
            raise DetectorError(f"window must be positive, got {window}")
        self.window = window

    def params(self) -> Dict[str, ParamValue]:
        return {"win": self.window}

    def warmup(self) -> int:
        return self.window

    def family(self) -> Optional[FamilyKey]:
        return ("window-bank", None)

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        return np.abs(values - rolling_mean(values, self.window))

    def stream(self) -> SeverityStream:
        return _WindowStream(self.window, _mean_forecast)


class WeightedMA(Detector):
    """Linearly weighted MA: recent points weigh more.

    The forecast is ``sum(w_i * v[t-win+i]) / sum(w_i)`` with weights
    ``w_i = i + 1`` (the most recent previous point gets weight ``win``).
    """

    kind = "weighted MA"

    def __init__(self, window: int):
        if window <= 0:
            raise DetectorError(f"window must be positive, got {window}")
        self.window = window
        self._weights = np.arange(1, window + 1, dtype=np.float64)
        self._weights /= self._weights.sum()

    def params(self) -> Dict[str, ParamValue]:
        return {"win": self.window}

    def warmup(self) -> int:
        return self.window

    def family(self) -> Optional[FamilyKey]:
        return ("window-bank", None)

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        n = len(values)
        out = np.full(n, np.nan)
        if n <= self.window:
            return out
        # Forecast for t is the weighted sum of the window ending at t-1.
        forecast = np.convolve(values, self._weights[::-1], mode="valid")
        out[self.window:] = np.abs(values[self.window:] - forecast[:-1])
        return out

    def stream(self) -> SeverityStream:
        weights = self._weights

        def forecast(window_values: np.ndarray) -> float:
            return float(np.dot(window_values, weights))

        return _WindowStream(self.window, forecast)


class MAOfDiff(Detector):
    """Moving average of one-slot absolute differences — the search
    engine's detector for continuous jitters (§5.2). Severity at t is
    the mean of ``|v[i] - v[i-1]|`` over the ``win`` differences ending
    at t (inclusive), so a jittery run keeps severity high."""

    kind = "MA of diff"

    def __init__(self, window: int):
        if window <= 0:
            raise DetectorError(f"window must be positive, got {window}")
        self.window = window

    def params(self) -> Dict[str, ParamValue]:
        return {"win": self.window}

    def warmup(self) -> int:
        return self.window

    def family(self) -> Optional[FamilyKey]:
        return ("window-bank", None)

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        n = len(values)
        out = np.full(n, np.nan)
        if n <= self.window:
            return out
        diffs = np.abs(np.diff(values))
        # Mean of the `window` diffs ending at index t (diff t-1 -> t).
        # Sliding windows (not cumulative sums) so a missing point only
        # invalidates the windows containing it.
        windows = np.lib.stride_tricks.sliding_window_view(diffs, self.window)
        out[self.window:] = windows.mean(axis=1)
        return out

    def stream(self) -> SeverityStream:
        return _MAOfDiffStream(self.window)


class EWMA(Detector):
    """Exponentially weighted moving average predictor [11].

    ``pred[t] = alpha * v[t-1] + (1 - alpha) * pred[t-1]`` seeded with
    the first observation; severity = |v[t] - pred[t]|. Larger ``alpha``
    leans on recent data (§4.3.3).
    """

    kind = "ewma"

    def __init__(self, alpha: float):
        if not 0.0 < alpha <= 1.0:
            raise DetectorError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha

    def params(self) -> Dict[str, ParamValue]:
        return {"alpha": self.alpha}

    def warmup(self) -> int:
        return 1

    def stream_memory(self) -> None:
        # The exponential recursion remembers the whole prefix; no
        # finite buffer reproduces it (the stream is O(1) regardless).
        return None

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        n = len(values)
        out = np.full(n, np.nan)
        if n < 2:
            return out
        from scipy.signal import lfilter

        # Missing points would poison the IIR recursion forever, so the
        # filter runs on a causally forward-filled copy; the severities
        # at missing points themselves stay NaN.
        filled = values
        missing = ~np.isfinite(values)
        if missing.any():
            filled = values.copy()
            idx = np.where(missing, 0, np.arange(n))
            np.maximum.accumulate(idx, out=idx)
            filled = filled[idx]
            leading = np.isnan(filled)
            if leading.all():
                return out
            if leading.any():
                filled[leading] = filled[~leading][0]
        # The EWMA of v[0..t] as an IIR filter, then shift by one so the
        # prediction for t uses only points up to t-1.
        zi = np.array([(1.0 - self.alpha) * filled[0]])
        smoothed, _ = lfilter([self.alpha], [1.0, -(1.0 - self.alpha)], filled, zi=zi)
        out[1:] = np.abs(values[1:] - smoothed[:-1])
        if missing.any():
            # No severity exists before (and at) the first observation.
            first_finite = int(np.flatnonzero(~missing)[0])
            out[: first_finite + 1] = np.nan
        return out

    def stream(self) -> SeverityStream:
        return _EWMAStream(self.alpha)


# ----------------------------------------------------------------------
# Fused family evaluation
# ----------------------------------------------------------------------
@register_family_builder("window-bank")
class WindowBankEvaluator(FamilyEvaluator):
    """Fused pass over the trailing-window prediction detectors (plus
    the parameterless static threshold, which rides along for free).

    The clean-data prefix-sum array is computed once and shared by
    every simple-MA window size; the one-slot absolute differences are
    computed once and shared by every MA-of-diff window. Each column is
    bit-identical to the solo detector: the same :func:`rolling_mean`
    branch runs with the same cumulative sums, and the MA-of-diff
    sliding windows see the same ``diffs`` array.
    """

    kind = "window-bank"

    def evaluate(self, series: TimeSeries) -> np.ndarray:
        values = Detector._validate(series)
        n = len(values)
        out = np.full((n, len(self.configs)), np.nan)
        clean = bool(np.isfinite(values).all())
        shared_cumsum = prefix_sums(values) if clean else None
        diffs: Optional[np.ndarray] = None
        for j, config in enumerate(self.configs):
            detector = config.detector
            if isinstance(detector, SimpleMA):
                out[:, j] = np.abs(
                    values
                    - rolling_mean(values, detector.window, cumsum=shared_cumsum)
                )
            elif isinstance(detector, MAOfDiff):
                if n > detector.window:
                    if diffs is None:
                        diffs = np.abs(np.diff(values))
                    windows = np.lib.stride_tricks.sliding_window_view(
                        diffs, detector.window
                    )
                    out[detector.window:, j] = windows.mean(axis=1)
            elif isinstance(detector, SimpleThreshold):
                out[:, j] = values
            else:
                out[:, j] = detector.severities(series)
        return out


# ----------------------------------------------------------------------
# Streams
# ----------------------------------------------------------------------
def _mean_forecast(window_values: np.ndarray) -> float:
    return float(window_values.mean())


class _WindowStream(SeverityStream):
    """Stream for forecast-from-trailing-window detectors."""

    def __init__(self, window: int, forecast):
        self._window = window
        self._history: deque = deque(maxlen=window)
        self._forecast = forecast

    def update(self, value: float) -> float:
        value = float(value)
        if len(self._history) < self._window:
            self._history.append(value)
            return float("nan")
        severity = abs(value - self._forecast(np.asarray(self._history)))
        self._history.append(value)
        return severity


class _MAOfDiffStream(SeverityStream):
    def __init__(self, window: int):
        self._window = window
        self._diffs: deque = deque(maxlen=window)
        self._last: float | None = None

    def update(self, value: float) -> float:
        value = float(value)
        if self._last is not None:
            self._diffs.append(abs(value - self._last))
        self._last = value
        if len(self._diffs) < self._window:
            return float("nan")
        return float(np.mean(self._diffs))


class _EWMAStream(SeverityStream):
    def __init__(self, alpha: float):
        self._alpha = alpha
        self._prediction: float | None = None
        self._last_filled: float | None = None

    def update(self, value: float) -> float:
        value = float(value)
        if self._prediction is None:
            if np.isnan(value):
                # Leading missing points: wait for the first observation
                # (batch backfills them, which changes nothing because
                # the first severity is NaN anyway).
                return float("nan")
            self._prediction = value
            self._last_filled = value
            return float("nan")
        # Missing points are forward-filled into the recursion, matching
        # the batch mode; their own severity is NaN.
        filled = self._last_filled if np.isnan(value) else value
        severity = abs(value - self._prediction)
        self._prediction = (
            self._alpha * filled + (1.0 - self._alpha) * self._prediction
        )
        self._last_filled = filled
        return severity
