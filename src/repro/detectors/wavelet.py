"""Wavelet detector [12] (Barford et al., IMW 2002).

Barford et al. decompose traffic into low/mid/high frequency bands with
wavelets and flag deviations in band energy. We implement the causal
Haar flavour of that idea:

* The *detail signal* at scale ``s`` is the difference between the mean
  of the last ``s`` points and the mean of the ``s`` points before them
  — an (unnormalised) Haar wavelet coefficient.
* The chosen ``freq`` selects the scale: ``high`` reacts to point-level
  shocks (s = 2), ``mid`` to tens-of-minutes structure (s = 8), ``low``
  to hour-scale drifts (s = 32).
* The severity is the |detail| normalised by the rolling standard
  deviation of the detail signal over a ``win``-day window, so a band
  that is normally quiet alarms on small absolute deviations.

Table 3 samples ``win = 3, 5, 7`` days and the three bands — 9
configurations.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..timeseries import TimeSeries
from .base import (
    Detector,
    DetectorConfig,
    DetectorError,
    FamilyEvaluator,
    FamilyKey,
    ParamValue,
    SeverityStream,
    register_family_builder,
    rolling_std,
)

#: Table 3 grids.
WAVELET_WINDOWS_DAYS = (3, 5, 7)
WAVELET_BANDS = ("high", "mid", "low")

#: Haar scale (points) per band.
BAND_SCALES = {"high": 2, "mid": 8, "low": 32}


class WaveletDetector(Detector):
    """Severity = |Haar detail| / rolling std of the detail signal."""

    kind = "wavelet"

    def __init__(self, window_days: int, band: str, points_per_day: int):
        if window_days <= 0:
            raise DetectorError(f"window_days must be positive, got {window_days}")
        if band not in BAND_SCALES:
            raise DetectorError(
                f"band must be one of {tuple(BAND_SCALES)}, got {band!r}"
            )
        if points_per_day <= 0:
            raise DetectorError(
                f"points_per_day must be positive, got {points_per_day}"
            )
        self.window_days = window_days
        self.band = band
        self.points_per_day = points_per_day
        self.scale = BAND_SCALES[band]

    def params(self) -> Dict[str, ParamValue]:
        return {"win": f"{self.window_days}d", "freq": self.band}

    def warmup(self) -> int:
        return 2 * self.scale + self.window_days * self.points_per_day

    def stream_memory(self) -> None:
        # The detail-scale floor is fixed from the original warm-up
        # prefix; a truncated buffer would recompute it differently.
        return None

    def _details(self, values: np.ndarray) -> np.ndarray:
        """Causal Haar detail: mean(last s) - mean(previous s).

        Sliding-window means (not cumulative sums) so a missing point
        only invalidates the details whose windows contain it, instead
        of poisoning everything after it.
        """
        s = self.scale
        n = len(values)
        details = np.full(n, np.nan)
        if n < 2 * s:
            return details
        means = np.lib.stride_tricks.sliding_window_view(values, s).mean(axis=1)
        details[2 * s - 1:] = means[s:] - means[: n - 2 * s + 1]
        return details

    def family(self) -> Optional[FamilyKey]:
        # All windows of one grid share the per-band detail signals.
        return ("wavelet", self.points_per_day)

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        details = self._details(values)
        return self._column(values, details, np.nan_to_num(details, nan=0.0))

    def _column(
        self,
        values: np.ndarray,
        details: np.ndarray,
        nan_details: np.ndarray,
    ) -> np.ndarray:
        """Severity column given this band's (shared) detail signal and
        its NaN-zeroed copy (the rolling-std input)."""
        n = len(values)
        out = np.full(n, np.nan)
        start = self.warmup()
        if n <= start:
            return out
        norm_window = self.window_days * self.points_per_day
        scale = rolling_std(nan_details, norm_window)
        # Floor from the warm-up prefix only, so severities stay causal.
        prefix = details[: start]
        prefix_finite = prefix[np.isfinite(prefix)]
        magnitude = (
            float(np.abs(prefix_finite).mean()) if len(prefix_finite) else 0.0
        )
        floor = 1e-6 * magnitude if magnitude > 0 else 1e-12
        with np.errstate(invalid="ignore"):
            out[start:] = np.abs(details[start:]) / np.maximum(scale[start:], floor)
        return out

    def stream(self) -> SeverityStream:
        return _WaveletStream(self)


@register_family_builder("wavelet")
class WaveletBankEvaluator(FamilyEvaluator):
    """Fused pass over the wavelet grid: the Haar detail signal (and
    its NaN-zeroed copy) is computed once per band and shared by every
    normalisation window of that band."""

    kind = "wavelet"

    def __init__(self, configs):
        super().__init__(configs)
        grids = {config.detector.points_per_day for config in self.configs}
        if len(grids) != 1:
            raise DetectorError(
                f"wavelet family spans several day grids: {sorted(grids)}"
            )

    def evaluate(self, series: TimeSeries) -> np.ndarray:
        values = Detector._validate(series)
        out = np.full((len(values), len(self.configs)), np.nan)
        by_band: Dict[str, List[Tuple[int, DetectorConfig]]] = {}
        for j, config in enumerate(self.configs):
            by_band.setdefault(config.detector.band, []).append((j, config))
        for _, items in sorted(by_band.items()):
            details = items[0][1].detector._details(values)
            nan_details = np.nan_to_num(details, nan=0.0)
            for j, config in items:
                out[:, j] = config.detector._column(
                    values, details, nan_details
                )
        return out


class _WaveletStream(SeverityStream):
    """Online Haar details with a rolling normalisation window,
    point-for-point equal to the batch mode."""

    def __init__(self, detector: WaveletDetector):
        self._detector = detector
        self._values: deque = deque(maxlen=2 * detector.scale)
        norm_window = detector.window_days * detector.points_per_day
        self._details: deque = deque(maxlen=norm_window)
        self._count = 0
        self._floor_sum = 0.0
        self._floor_n = 0
        self._floor: float | None = None

    def _detail(self) -> float:
        if len(self._values) < self._values.maxlen:
            return float("nan")
        window = np.asarray(self._values)
        s = self._detector.scale
        return float(window[s:].mean() - window[:s].mean())

    def update(self, value: float) -> float:
        detector = self._detector
        start = detector.warmup()
        self._values.append(float(value))
        detail = self._detail()

        severity = float("nan")
        if self._count >= start:
            if self._floor is None:
                floor_ok = self._floor_n and self._floor_sum > 0.0
                self._floor = (
                    1e-6 * self._floor_sum / self._floor_n
                    if floor_ok else 1e-12
                )
            scale = float(np.std(np.asarray(self._details)))
            with np.errstate(invalid="ignore"):
                severity = abs(detail) / max(scale, self._floor)
        elif np.isfinite(detail):
            # Warm-up: accumulate the floor statistic (batch:
            # nanmean(|details[:warmup]|)).
            self._floor_sum += abs(detail)
            self._floor_n += 1

        # The normalisation window stores nan_to_num(detail), matching
        # the batch rolling_std input, and excludes the current detail.
        self._details.append(0.0 if np.isnan(detail) else detail)
        self._count += 1
        return severity
