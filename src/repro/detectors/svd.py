"""SVD-based detector [7] (Mahimkar et al., CoNEXT 2011).

The trailing ``row * column`` points are arranged into a matrix whose
``column`` rows are consecutive segments of length ``row``. Normal
behaviour is low-rank (segments resemble each other); the rank-1
truncated SVD captures it, and the reconstruction residual at the
current (newest) point is the severity.

Table 3 samples ``row = 10, 20, 30, 40, 50`` points and ``column = 3,
5, 7`` — 15 configurations. §6 notes SVD "can generate anomaly features
only using recent data. Thus, they can quickly get rid of the
contamination of dirty data": the memory is exactly ``row * column``
points.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

import numpy as np

from ..timeseries import TimeSeries
from .base import Detector, DetectorError, ParamValue, SeverityStream

#: Table 3 grids.
SVD_ROWS = (10, 20, 30, 40, 50)
SVD_COLUMNS = (3, 5, 7)


def _rank1_residuals(matrices: np.ndarray) -> np.ndarray:
    """|newest element − rank-1 reconstruction| for a stack of window
    matrices, via the (tiny) column-space Gram matrix.

    For a window matrix M (column × row) with top singular triple
    (s1, u1, v1), the rank-1 reconstruction of the last element is
    ``s1 * u1[-1] * v1[-1]``. Since ``s1 * v1 = Mᵀ u1``, that equals
    ``u1[-1] * (u1 · M[:, -1])`` — so the residual needs only the top
    eigenvector of ``G = M Mᵀ`` (column × column, ≤ 7×7 here) instead
    of a full row-sized SVD. No square root is taken and the sign
    ambiguity of u1 cancels in the product. On the Table 3 grid this is
    ~3x faster than batched ``np.linalg.svd`` and agrees to ~1e-14
    relative (the eigh of M Mᵀ squares the condition number, which is
    harmless at rank-1-dominated traffic windows).
    """
    gram = matrices @ matrices.transpose(0, 2, 1)
    _, vectors = np.linalg.eigh(gram)
    u1 = vectors[:, :, -1]
    approx = u1[:, -1] * np.einsum("ij,ij->i", u1, matrices[:, :, -1])
    return np.abs(matrices[:, -1, -1] - approx)


class SVDDetector(Detector):
    """Severity = |current value - its rank-1 SVD reconstruction|."""

    kind = "svd"

    def __init__(self, row: int, column: int):
        if row <= 1:
            raise DetectorError(f"row must be > 1, got {row}")
        if column <= 1:
            raise DetectorError(f"column must be > 1, got {column}")
        self.row = row
        self.column = column

    def params(self) -> Dict[str, ParamValue]:
        return {"row": self.row, "column": self.column}

    def warmup(self) -> int:
        return self.row * self.column - 1

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        n = len(values)
        span = self.row * self.column
        out = np.full(n, np.nan)
        if n < span:
            return out

        windows = np.lib.stride_tricks.sliding_window_view(values, span)
        matrices = windows.reshape(-1, self.column, self.row)
        finite = np.isfinite(matrices).all(axis=(1, 2))
        out_idx = np.arange(span - 1, n)

        if finite.any():
            try:
                out[out_idx[finite]] = _rank1_residuals(matrices[finite])
            except np.linalg.LinAlgError:
                # Extremely rare non-convergence: fall back per-window.
                return self._severities_slow(values)
        return out

    def stream(self) -> SeverityStream:
        return _SVDStream(self.row, self.column)

    def _severities_slow(self, values: np.ndarray) -> np.ndarray:
        """Per-window fallback used if the batched eigh fails to converge."""
        n = len(values)
        span = self.row * self.column
        out = np.full(n, np.nan)
        for t in range(span - 1, n):
            window = values[t - span + 1: t + 1]
            if not np.isfinite(window).all():
                continue
            matrix = window.reshape(self.column, self.row)
            try:
                out[t] = _rank1_residuals(matrix[np.newaxis])[0]
            except np.linalg.LinAlgError:
                continue
        return out


class _SVDStream(SeverityStream):
    """One small SVD per point over the trailing row*column window —
    exactly the §6 property that SVD "can generate anomaly features
    only using recent data"."""

    def __init__(self, row: int, column: int):
        self._row = row
        self._column = column
        self._window: deque = deque(maxlen=row * column)

    def update(self, value: float) -> float:
        self._window.append(float(value))
        if len(self._window) < self._window.maxlen:
            return float("nan")
        window = np.asarray(self._window)
        if not np.isfinite(window).all():
            return float("nan")
        matrix = window.reshape(self._column, self._row)
        try:
            # Same Gram-eigh kernel as the batch mode (one-matrix
            # stack), so stream and batch stay bit-identical.
            return float(_rank1_residuals(matrix[np.newaxis])[0])
        except np.linalg.LinAlgError:
            return float("nan")
