"""SVD-based detector [7] (Mahimkar et al., CoNEXT 2011).

The trailing ``row * column`` points are arranged into a matrix whose
``column`` rows are consecutive segments of length ``row``. Normal
behaviour is low-rank (segments resemble each other); the rank-1
truncated SVD captures it, and the reconstruction residual at the
current (newest) point is the severity.

Table 3 samples ``row = 10, 20, 30, 40, 50`` points and ``column = 3,
5, 7`` — 15 configurations. §6 notes SVD "can generate anomaly features
only using recent data. Thus, they can quickly get rid of the
contamination of dirty data": the memory is exactly ``row * column``
points.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

import numpy as np

from ..timeseries import TimeSeries
from .base import Detector, DetectorError, ParamValue, SeverityStream

#: Table 3 grids.
SVD_ROWS = (10, 20, 30, 40, 50)
SVD_COLUMNS = (3, 5, 7)


class SVDDetector(Detector):
    """Severity = |current value - its rank-1 SVD reconstruction|."""

    kind = "svd"

    def __init__(self, row: int, column: int):
        if row <= 1:
            raise DetectorError(f"row must be > 1, got {row}")
        if column <= 1:
            raise DetectorError(f"column must be > 1, got {column}")
        self.row = row
        self.column = column

    def params(self) -> Dict[str, ParamValue]:
        return {"row": self.row, "column": self.column}

    def warmup(self) -> int:
        return self.row * self.column - 1

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        n = len(values)
        span = self.row * self.column
        out = np.full(n, np.nan)
        if n < span:
            return out

        windows = np.lib.stride_tricks.sliding_window_view(values, span)
        matrices = windows.reshape(-1, self.column, self.row)
        finite = np.isfinite(matrices).all(axis=(1, 2))
        out_idx = np.arange(span - 1, n)

        if finite.any():
            try:
                u, s, vt = np.linalg.svd(matrices[finite], full_matrices=False)
            except np.linalg.LinAlgError:
                # Extremely rare non-convergence: fall back per-window.
                return self._severities_slow(values)
            # Rank-1 reconstruction of the newest element (last row, last
            # column of each window matrix).
            approx = s[:, 0] * u[:, -1, 0] * vt[:, 0, -1]
            out[out_idx[finite]] = np.abs(matrices[finite][:, -1, -1] - approx)
        return out

    def stream(self) -> SeverityStream:
        return _SVDStream(self.row, self.column)

    def _severities_slow(self, values: np.ndarray) -> np.ndarray:
        """Per-window fallback used if the batched SVD fails to converge."""
        n = len(values)
        span = self.row * self.column
        out = np.full(n, np.nan)
        for t in range(span - 1, n):
            window = values[t - span + 1: t + 1]
            if not np.isfinite(window).all():
                continue
            matrix = window.reshape(self.column, self.row)
            try:
                u, s, vt = np.linalg.svd(matrix, full_matrices=False)
            except np.linalg.LinAlgError:
                continue
            approx = s[0] * u[-1, 0] * vt[0, -1]
            out[t] = abs(matrix[-1, -1] - approx)
        return out


class _SVDStream(SeverityStream):
    """One small SVD per point over the trailing row*column window —
    exactly the §6 property that SVD "can generate anomaly features
    only using recent data"."""

    def __init__(self, row: int, column: int):
        self._row = row
        self._column = column
        self._window: deque = deque(maxlen=row * column)

    def update(self, value: float) -> float:
        self._window.append(float(value))
        if len(self._window) < self._window.maxlen:
            return float("nan")
        window = np.asarray(self._window)
        if not np.isfinite(window).all():
            return float("nan")
        matrix = window.reshape(self._column, self._row)
        try:
            u, s, vt = np.linalg.svd(matrix, full_matrices=False)
        except np.linalg.LinAlgError:
            return float("nan")
        approx = s[0] * u[-1, 0] * vt[0, -1]
        return abs(matrix[-1, -1] - approx)
