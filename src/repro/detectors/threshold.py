"""Simple static threshold detector (Amazon CloudWatch alarms [24]).

The classic operator fallback: alarm whenever the KPI value crosses a
static threshold. In the unified severity model the severity *is* the
value itself, so sweeping the sThld reproduces exactly the family of
static-threshold alarms. This detector has no parameters — one
configuration (Table 3).

The paper finds it is the single best basic detector for #SR (whose
anomalies are upward spikes of a low-volume count) and nearly useless
for the strongly seasonal PV.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..timeseries import TimeSeries
from .base import Detector, FamilyKey, ParamValue, SeverityStream


class SimpleThreshold(Detector):
    """Severity = the raw KPI value."""

    kind = "simple threshold"

    def params(self) -> Dict[str, ParamValue]:
        return {}

    def warmup(self) -> int:
        return 0

    def family(self) -> Optional[FamilyKey]:
        # Rides in the moving-average window bank: its severity column
        # is the raw series, free once that pass has validated it.
        return ("window-bank", None)

    def severities(self, series: TimeSeries) -> np.ndarray:
        return self._validate(series).copy()

    def stream(self) -> SeverityStream:
        return _ThresholdStream()


class _ThresholdStream(SeverityStream):
    def update(self, value: float) -> float:
        return float(value)
