"""Time series decomposition (TSD) detectors [1] and their MAD variant.

TSD "usually uses a window of weeks to capture long-term violations"
(§4.3.3): the seasonal baseline for point *t* is estimated from the
values at the *same time-of-week phase* in the previous ``win`` weeks,
and the severity is the absolute residual from that baseline.

Two variants, as in Table 3 (``win = 1..5`` weeks each):

* **TSD** — baseline is the *mean* of the same-phase history.
* **TSD MAD** — baseline is the *median*; §5.2 explains the MAD/median
  patch "can improve the robustness to missing data and outliers", i.e.
  a past anomaly or missing point in the window does not drag the
  baseline (dirty-data handling, §6).

Missing (NaN) points in the history are ignored by both variants via
nan-aware statistics.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..timeseries import TimeSeries
from .base import (
    Detector,
    DetectorConfig,
    DetectorError,
    FamilyEvaluator,
    FamilyKey,
    ParamValue,
    SeverityStream,
    register_family_builder,
)

#: Table 3 window grid, in weeks.
TSD_WINDOWS_WEEKS = (1, 2, 3, 4, 5)


def _history_matrix(
    values: np.ndarray, window_periods: int, period_points: int
) -> np.ndarray:
    """``history[t, k]`` = value at the same phase, k+1 periods before
    point ``window * period + t``. Shared by TSD and TSD MAD configs of
    one window size — the gather depends only on the geometry, not the
    baseline statistic."""
    n = len(values)
    indices = np.arange(window_periods * period_points, n)
    offsets = (np.arange(1, window_periods + 1) * period_points)[np.newaxis, :]
    return values[indices[:, np.newaxis] - offsets]


class _SeasonalResidual(Detector):
    """Shared machinery: residual from a same-phase seasonal baseline."""

    def __init__(self, window_periods: int, period_points: int):
        if window_periods <= 0:
            raise DetectorError(
                f"window_periods must be positive, got {window_periods}"
            )
        if period_points <= 0:
            raise DetectorError(
                f"period_points must be positive, got {period_points}"
            )
        self.window_periods = window_periods
        self.period_points = period_points

    def warmup(self) -> int:
        return self.window_periods * self.period_points

    def family(self) -> Optional[FamilyKey]:
        # TSD and TSD MAD configs of one period share the same-phase
        # history gathers (one per window size).
        return ("seasonal-residual", self.period_points)

    def _baseline(self, history: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        n = len(values)
        period = self.period_points
        w = self.window_periods
        out = np.full(n, np.nan)
        if n <= w * period:
            return out
        history = _history_matrix(values, w, period)
        with np.errstate(invalid="ignore"), warnings.catch_warnings():
            # Rows whose entire same-phase history is missing produce a
            # NaN baseline, which is the intended output.
            warnings.simplefilter("ignore", category=RuntimeWarning)
            baseline = self._baseline(history)
        out[w * period:] = np.abs(values[w * period:] - baseline)
        return out

    def stream(self) -> SeverityStream:
        return _SeasonalStream(
            self.window_periods, self.period_points, self._baseline
        )


class _SeasonalStream(SeverityStream):
    """O(1)-memory-indexed stream: a ring buffer of the last
    ``window * period`` values gives the same-phase history directly
    (the slot about to be overwritten *is* the value one full window
    ago)."""

    def __init__(
        self,
        window_periods: int,
        period_points: int,
        baseline: Callable[[np.ndarray], np.ndarray],
    ):
        self._window = window_periods
        self._period = period_points
        self._baseline = baseline
        size = window_periods * period_points
        self._ring = np.full(size, np.nan)
        self._count = 0

    def update(self, value: float) -> float:
        value = float(value)
        size = len(self._ring)
        position = self._count % size
        severity = float("nan")
        if self._count >= size:
            offsets = (
                position - np.arange(1, self._window + 1) * self._period
            ) % size
            history = self._ring[offsets]
            with np.errstate(invalid="ignore"), warnings.catch_warnings():
                # An all-NaN history (every same-phase point missing)
                # legitimately yields a NaN baseline.
                warnings.simplefilter("ignore", category=RuntimeWarning)
                baseline = self._baseline(history[np.newaxis, :])[0]
            severity = abs(value - baseline)
        self._ring[position] = value
        self._count += 1
        return severity


class TSD(_SeasonalResidual):
    """Severity = |v[t] - mean(same phase, previous ``win`` weeks)|."""

    kind = "tsd"

    def __init__(self, window_weeks: int, points_per_week: int):
        if points_per_week <= 0:
            raise DetectorError(
                f"points_per_week must be positive, got {points_per_week}"
            )
        super().__init__(window_weeks, points_per_week)
        self.window_weeks = window_weeks

    def params(self) -> Dict[str, ParamValue]:
        return {"win": f"{self.window_weeks}w"}

    def _baseline(self, history: np.ndarray) -> np.ndarray:
        return np.nanmean(history, axis=1)


class TSDMad(_SeasonalResidual):
    """Severity = |v[t] - median(same phase, previous ``win`` weeks)|.

    The median baseline shrugs off a past anomaly (or missing point)
    that would contaminate TSD's mean baseline.
    """

    kind = "tsd MAD"

    def __init__(self, window_weeks: int, points_per_week: int):
        if points_per_week <= 0:
            raise DetectorError(
                f"points_per_week must be positive, got {points_per_week}"
            )
        super().__init__(window_weeks, points_per_week)
        self.window_weeks = window_weeks

    def params(self) -> Dict[str, ParamValue]:
        return {"win": f"{self.window_weeks}w"}

    def _baseline(self, history: np.ndarray) -> np.ndarray:
        return np.nanmedian(history, axis=1)


@register_family_builder("seasonal-residual")
class SeasonalResidualEvaluator(FamilyEvaluator):
    """Fused pass over TSD + TSD MAD: one same-phase history gather per
    window size feeds both the mean and median baselines. Columns are
    bit-identical to the solo detectors — the gather, error-state guard
    and residual arithmetic are the same code path."""

    kind = "seasonal-residual"

    def __init__(self, configs):
        super().__init__(configs)
        periods = {config.detector.period_points for config in self.configs}
        if len(periods) != 1:
            raise DetectorError(
                f"seasonal-residual family spans several periods: {sorted(periods)}"
            )
        self.period_points = periods.pop()

    def evaluate(self, series: TimeSeries) -> np.ndarray:
        values = Detector._validate(series)
        n = len(values)
        out = np.full((n, len(self.configs)), np.nan)
        period = self.period_points
        by_window: Dict[int, List[Tuple[int, DetectorConfig]]] = {}
        for j, config in enumerate(self.configs):
            by_window.setdefault(config.detector.window_periods, []).append(
                (j, config)
            )
        for w, items in sorted(by_window.items()):
            start = w * period
            if n <= start:
                continue
            history = _history_matrix(values, w, period)
            tail = values[start:]
            with np.errstate(invalid="ignore"), warnings.catch_warnings():
                warnings.simplefilter("ignore", category=RuntimeWarning)
                for j, config in items:
                    baseline = config.detector._baseline(history)
                    out[start:, j] = np.abs(tail - baseline)
        return out
