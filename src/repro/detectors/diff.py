"""The "Diff" detector used by the studied search engine (§5.2).

Diff "simply measures anomaly severities using the differences between
the current point and the point of last slot, the point of last day,
and the point of last week" — three configurations (Table 3), one per
lag.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

import numpy as np

from ..timeseries import TimeSeries
from .base import Detector, DetectorError, ParamValue, SeverityStream

#: The three Table 3 lags, expressed as (name, days) pairs; last-slot is
#: a one-point lag regardless of interval.
LAG_NAMES = ("last-slot", "last-day", "last-week")


class Diff(Detector):
    """Severity = |v[t] - v[t - lag]|.

    Parameters
    ----------
    lag_name:
        One of ``"last-slot"``, ``"last-day"``, ``"last-week"``.
    lag_points:
        The lag expressed in grid points (1 for last-slot; the registry
        computes day/week lags from the KPI interval).
    """

    kind = "diff"

    def __init__(self, lag_name: str, lag_points: int):
        if lag_name not in LAG_NAMES:
            raise DetectorError(
                f"lag_name must be one of {LAG_NAMES}, got {lag_name!r}"
            )
        if lag_points <= 0:
            raise DetectorError(f"lag_points must be positive, got {lag_points}")
        self.lag_name = lag_name
        self.lag_points = lag_points

    def params(self) -> Dict[str, ParamValue]:
        return {"lag": self.lag_name}

    def warmup(self) -> int:
        return self.lag_points

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        out = np.full(len(values), np.nan)
        if len(values) > self.lag_points:
            out[self.lag_points:] = np.abs(
                values[self.lag_points:] - values[:-self.lag_points]
            )
        return out

    def stream(self) -> SeverityStream:
        return _DiffStream(self.lag_points)


class _DiffStream(SeverityStream):
    def __init__(self, lag_points: int):
        self._history: deque = deque(maxlen=lag_points + 1)

    def update(self, value: float) -> float:
        self._history.append(float(value))
        if len(self._history) < self._history.maxlen:
            return float("nan")
        return abs(self._history[-1] - self._history[0])
