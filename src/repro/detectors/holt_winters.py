"""Holt-Winters (triple exponential smoothing) detector [6].

"Holt-Winters uses the residual error (i.e., the absolute difference
between the actual value and the forecast value of each data point) to
measure the severity" (§4.3.1). We use the additive seasonal form with a
daily season:

.. math::

    \\hat v_t &= \\ell_{t-1} + b_{t-1} + s_{t-m} \\\\
    \\ell_t &= \\alpha (v_t - s_{t-m}) + (1-\\alpha)(\\ell_{t-1} + b_{t-1}) \\\\
    b_t &= \\beta (\\ell_t - \\ell_{t-1}) + (1-\\beta) b_{t-1} \\\\
    s_t &= \\gamma (v_t - \\ell_t) + (1-\\gamma) s_{t-m}

Table 3 samples ``alpha, beta, gamma in {0.2, 0.4, 0.6, 0.8}``, giving
4^3 = 64 configurations. The first season (one day) initialises the
state and is the warm-up window. Missing points keep the state frozen
and get NaN severity.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from ..timeseries import TimeSeries
from .base import Detector, DetectorError, ParamValue, SeverityStream

#: Table 3 smoothing-parameter grid.
HW_GRID = (0.2, 0.4, 0.6, 0.8)


class HoltWinters(Detector):
    """Additive Holt-Winters forecaster; severity = |residual|."""

    kind = "holt-winters"

    def __init__(self, alpha: float, beta: float, gamma: float, season_points: int):
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0.0 < value < 1.0:
                raise DetectorError(f"{name} must be in (0, 1), got {value}")
        if season_points <= 1:
            raise DetectorError(
                f"season_points must be > 1, got {season_points}"
            )
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.season_points = season_points

    def params(self) -> Dict[str, ParamValue]:
        return {"alpha": self.alpha, "beta": self.beta, "gamma": self.gamma}

    def warmup(self) -> int:
        return self.season_points

    def stream_memory(self) -> None:
        # Triple exponential smoothing remembers the whole prefix; the
        # stream's own state is one season of smoothed components.
        return None

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        stream = self.stream()
        return np.fromiter(
            (stream.update(v) for v in values), dtype=np.float64, count=len(values)
        )

    def stream(self) -> SeverityStream:
        return _HoltWintersStream(
            self.alpha, self.beta, self.gamma, self.season_points
        )


def batch_severities(
    values: np.ndarray,
    alphas: np.ndarray,
    betas: np.ndarray,
    gammas: np.ndarray,
    season: int,
) -> np.ndarray:
    """Run many Holt-Winters configurations in one time loop.

    The 64 Table 3 configurations share everything but (alpha, beta,
    gamma), so the state update vectorises across configurations: one
    pass over the series updates a (n_configs,) level/trend vector and a
    (n_configs, season) seasonal matrix. Point-for-point identical to
    running each configuration's stream (the tests assert this); ~50x
    faster than 64 scalar loops.

    Returns an (n_points, n_configs) severity matrix.
    """
    values = np.asarray(values, dtype=np.float64)
    alphas = np.asarray(alphas, dtype=np.float64)
    betas = np.asarray(betas, dtype=np.float64)
    gammas = np.asarray(gammas, dtype=np.float64)
    if not alphas.shape == betas.shape == gammas.shape:
        raise DetectorError("parameter arrays must share one shape")
    n, m = len(values), len(alphas)
    out = np.full((n, m), np.nan)
    if n <= season:
        return out

    init = values[:season]
    finite = init[np.isfinite(init)]
    mean = finite.mean() if len(finite) else 0.0
    level = np.full(m, mean)
    trend = np.zeros(m)
    seasonals = np.tile(
        np.where(np.isfinite(init), init - mean, 0.0), (m, 1)
    )

    for t in range(season, n):
        value = values[t]
        phase = t % season
        seasonal = seasonals[:, phase]
        if math.isnan(value):
            continue
        forecast = level + trend + seasonal
        out[t] = np.abs(value - forecast)
        new_level = alphas * (value - seasonal) + (1.0 - alphas) * (level + trend)
        trend = betas * (new_level - level) + (1.0 - betas) * trend
        seasonals[:, phase] = (
            gammas * (value - new_level) + (1.0 - gammas) * seasonal
        )
        level = new_level
    return out


class _HoltWintersStream(SeverityStream):
    """Online Holt-Winters; the batch mode reuses this loop so the two
    agree trivially."""

    def __init__(self, alpha: float, beta: float, gamma: float, season: int):
        self._alpha = alpha
        self._beta = beta
        self._gamma = gamma
        self._season = season
        self._init_buffer: list = []
        self._seasonals: list = []
        self._level = 0.0
        self._trend = 0.0
        self._t = 0

    def _initialise(self) -> None:
        buffer = [v for v in self._init_buffer if not math.isnan(v)]
        mean = sum(buffer) / len(buffer) if buffer else 0.0
        self._level = mean
        self._trend = 0.0
        self._seasonals = [
            (v - mean) if not math.isnan(v) else 0.0 for v in self._init_buffer
        ]

    def update(self, value: float) -> float:
        value = float(value)
        season = self._season
        if self._t < season:
            # Warm-up: collect the first season to initialise the state.
            self._init_buffer.append(value)
            self._t += 1
            if self._t == season:
                self._initialise()
            return float("nan")

        phase = self._t % season
        seasonal = self._seasonals[phase]
        forecast = self._level + self._trend + seasonal
        self._t += 1
        if math.isnan(value):
            # Missing point: freeze the state, no severity.
            return float("nan")
        severity = abs(value - forecast)
        last_level = self._level
        self._level = (
            self._alpha * (value - seasonal)
            + (1.0 - self._alpha) * (last_level + self._trend)
        )
        self._trend = (
            self._beta * (self._level - last_level)
            + (1.0 - self._beta) * self._trend
        )
        self._seasonals[phase] = (
            self._gamma * (value - self._level) + (1.0 - self._gamma) * seasonal
        )
        return severity
