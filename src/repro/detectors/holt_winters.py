"""Holt-Winters (triple exponential smoothing) detector [6].

"Holt-Winters uses the residual error (i.e., the absolute difference
between the actual value and the forecast value of each data point) to
measure the severity" (§4.3.1). We use the additive seasonal form with a
daily season:

.. math::

    \\hat v_t &= \\ell_{t-1} + b_{t-1} + s_{t-m} \\\\
    \\ell_t &= \\alpha (v_t - s_{t-m}) + (1-\\alpha)(\\ell_{t-1} + b_{t-1}) \\\\
    b_t &= \\beta (\\ell_t - \\ell_{t-1}) + (1-\\beta) b_{t-1} \\\\
    s_t &= \\gamma (v_t - \\ell_t) + (1-\\gamma) s_{t-m}

Table 3 samples ``alpha, beta, gamma in {0.2, 0.4, 0.6, 0.8}``, giving
4^3 = 64 configurations. The first season (one day) initialises the
state and is the warm-up window. Missing points keep the state frozen
and get NaN severity.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..timeseries import TimeSeries
from .base import (
    Detector,
    DetectorConfig,
    DetectorError,
    FamilyEvaluator,
    FamilyKey,
    FamilyStream,
    ParamValue,
    SeverityStream,
    register_family_builder,
)

#: Table 3 smoothing-parameter grid.
HW_GRID = (0.2, 0.4, 0.6, 0.8)


class HoltWinters(Detector):
    """Additive Holt-Winters forecaster; severity = |residual|."""

    kind = "holt-winters"

    def __init__(self, alpha: float, beta: float, gamma: float, season_points: int):
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0.0 < value < 1.0:
                raise DetectorError(f"{name} must be in (0, 1), got {value}")
        if season_points <= 1:
            raise DetectorError(
                f"season_points must be > 1, got {season_points}"
            )
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.season_points = season_points

    def params(self) -> Dict[str, ParamValue]:
        return {"alpha": self.alpha, "beta": self.beta, "gamma": self.gamma}

    def warmup(self) -> int:
        return self.season_points

    def family(self) -> Optional[FamilyKey]:
        # All configs of one season share the state sweep: one fused
        # time loop emits every (alpha, beta, gamma) combination.
        return ("holt-winters", self.season_points)

    def stream_memory(self) -> None:
        # Triple exponential smoothing remembers the whole prefix; the
        # stream's own state is one season of smoothed components.
        return None

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        stream = self.stream()
        return np.fromiter(
            (stream.update(v) for v in values), dtype=np.float64, count=len(values)
        )

    def stream(self) -> SeverityStream:
        return _HoltWintersStream(
            self.alpha, self.beta, self.gamma, self.season_points
        )


def batch_severities(
    values: np.ndarray,
    alphas: np.ndarray,
    betas: np.ndarray,
    gammas: np.ndarray,
    season: int,
) -> np.ndarray:
    """Run many Holt-Winters configurations in one time loop.

    The 64 Table 3 configurations share everything but (alpha, beta,
    gamma), so the state update vectorises across configurations: one
    pass over the series updates a (n_configs,) level/trend vector and a
    (n_configs, season) seasonal matrix. Point-for-point identical to
    running each configuration's stream (the tests assert this); ~50x
    faster than 64 scalar loops.

    Returns an (n_points, n_configs) severity matrix.
    """
    values = np.asarray(values, dtype=np.float64)
    alphas = np.asarray(alphas, dtype=np.float64)
    betas = np.asarray(betas, dtype=np.float64)
    gammas = np.asarray(gammas, dtype=np.float64)
    if not alphas.shape == betas.shape == gammas.shape:
        raise DetectorError("parameter arrays must share one shape")
    n, m = len(values), len(alphas)
    out = np.full((n, m), np.nan)
    if n <= season:
        return out

    init = values[:season]
    finite = init[np.isfinite(init)]
    mean = finite.mean() if len(finite) else 0.0
    level = np.full(m, mean)
    trend = np.zeros(m)
    seasonals = np.tile(
        np.where(np.isfinite(init), init - mean, 0.0), (m, 1)
    )

    for t in range(season, n):
        value = values[t]
        phase = t % season
        seasonal = seasonals[:, phase]
        if math.isnan(value):
            continue
        forecast = level + trend + seasonal
        out[t] = np.abs(value - forecast)
        new_level = alphas * (value - seasonal) + (1.0 - alphas) * (level + trend)
        trend = betas * (new_level - level) + (1.0 - betas) * trend
        seasonals[:, phase] = (
            gammas * (value - new_level) + (1.0 - gammas) * seasonal
        )
        level = new_level
    return out


class _HoltWintersStream(SeverityStream):
    """Online Holt-Winters; the batch mode reuses this loop so the two
    agree trivially."""

    def __init__(self, alpha: float, beta: float, gamma: float, season: int):
        self._alpha = alpha
        self._beta = beta
        self._gamma = gamma
        self._season = season
        self._init_buffer: list = []
        self._seasonals: list = []
        self._level = 0.0
        self._trend = 0.0
        self._t = 0

    def _initialise(self) -> None:
        init = np.asarray(self._init_buffer, dtype=np.float64)
        finite = init[np.isfinite(init)]
        # numpy's pairwise-summation mean, so the initial level is
        # bit-identical to the fused batch sweep's.
        mean = float(finite.mean()) if len(finite) else 0.0
        self._level = mean
        self._trend = 0.0
        self._seasonals = [
            (v - mean) if not math.isnan(v) else 0.0 for v in self._init_buffer
        ]

    def update(self, value: float) -> float:
        value = float(value)
        season = self._season
        if self._t < season:
            # Warm-up: collect the first season to initialise the state.
            self._init_buffer.append(value)
            self._t += 1
            if self._t == season:
                self._initialise()
            return float("nan")

        phase = self._t % season
        seasonal = self._seasonals[phase]
        forecast = self._level + self._trend + seasonal
        self._t += 1
        if math.isnan(value):
            # Missing point: freeze the state, no severity.
            return float("nan")
        severity = abs(value - forecast)
        last_level = self._level
        self._level = (
            self._alpha * (value - seasonal)
            + (1.0 - self._alpha) * (last_level + self._trend)
        )
        self._trend = (
            self._beta * (self._level - last_level)
            + (1.0 - self._beta) * self._trend
        )
        self._seasonals[phase] = (
            self._gamma * (value - self._level) + (1.0 - self._gamma) * seasonal
        )
        return severity


# ----------------------------------------------------------------------
# Fused family evaluation
# ----------------------------------------------------------------------
@register_family_builder("holt-winters")
class HoltWintersBankEvaluator(FamilyEvaluator):
    """All (alpha, beta, gamma) configurations of one season in a
    single :func:`batch_severities` state sweep."""

    kind = "holt-winters"

    def __init__(self, configs: Sequence[DetectorConfig]):
        super().__init__(configs)
        seasons = {config.detector.season_points for config in self.configs}
        if len(seasons) != 1:
            raise DetectorError(
                f"holt-winters family spans several seasons: {sorted(seasons)}"
            )
        self.season = seasons.pop()
        self.alphas = np.array(
            [config.detector.alpha for config in self.configs], dtype=np.float64
        )
        self.betas = np.array(
            [config.detector.beta for config in self.configs], dtype=np.float64
        )
        self.gammas = np.array(
            [config.detector.gamma for config in self.configs], dtype=np.float64
        )

    def evaluate(self, series: TimeSeries) -> np.ndarray:
        values = Detector._validate(series)
        return batch_severities(
            values, self.alphas, self.betas, self.gammas, self.season
        )

    def make_stream(self) -> FamilyStream:
        return _HoltWintersBankStream(
            self.alphas, self.betas, self.gammas, self.season
        )


class _HoltWintersBankStream(FamilyStream):
    """Online counterpart of :func:`batch_severities`: one vectorised
    state update per point covers every configuration of the family.
    Checkpoints decompose into the exact per-config dicts
    :class:`_HoltWintersStream` snapshots produce, so bank checkpoints
    stay interchangeable with solo-stream checkpoints."""

    def __init__(
        self,
        alphas: np.ndarray,
        betas: np.ndarray,
        gammas: np.ndarray,
        season: int,
    ):
        self._alphas = np.asarray(alphas, dtype=np.float64)
        self._betas = np.asarray(betas, dtype=np.float64)
        self._gammas = np.asarray(gammas, dtype=np.float64)
        self._season = int(season)
        self._k = len(self._alphas)
        self._init_buffer: List[float] = []
        self._level = np.zeros(self._k)
        self._trend = np.zeros(self._k)
        self._seasonals = np.zeros((self._k, self._season))
        self._t = 0

    def _initialise(self) -> None:
        init = np.asarray(self._init_buffer, dtype=np.float64)
        finite = init[np.isfinite(init)]
        mean = finite.mean() if len(finite) else 0.0
        self._level = np.full(self._k, mean)
        self._trend = np.zeros(self._k)
        self._seasonals = np.tile(
            np.where(np.isfinite(init), init - mean, 0.0), (self._k, 1)
        )

    def update(self, value: float) -> np.ndarray:
        value = float(value)
        season = self._season
        if self._t < season:
            self._init_buffer.append(value)
            self._t += 1
            if self._t == season:
                self._initialise()
            return np.full(self._k, np.nan)

        phase = self._t % season
        seasonal = self._seasonals[:, phase]
        self._t += 1
        if math.isnan(value):
            # Missing point: freeze the state, no severity.
            return np.full(self._k, np.nan)
        forecast = self._level + self._trend + seasonal
        severity = np.abs(value - forecast)
        new_level = self._alphas * (value - seasonal) + (
            1.0 - self._alphas
        ) * (self._level + self._trend)
        self._trend = (
            self._betas * (new_level - self._level)
            + (1.0 - self._betas) * self._trend
        )
        self._seasonals[:, phase] = (
            self._gammas * (value - new_level) + (1.0 - self._gammas) * seasonal
        )
        self._level = new_level
        return severity

    def snapshots(self) -> List[Dict[str, Any]]:
        warmed = self._t >= self._season
        states: List[Dict[str, Any]] = []
        for j in range(self._k):
            states.append(
                {
                    "_alpha": float(self._alphas[j]),
                    "_beta": float(self._betas[j]),
                    "_gamma": float(self._gammas[j]),
                    "_season": self._season,
                    "_init_buffer": [float(v) for v in self._init_buffer],
                    "_seasonals": (
                        [float(v) for v in self._seasonals[j]] if warmed else []
                    ),
                    "_level": float(self._level[j]),
                    "_trend": float(self._trend[j]),
                    "_t": self._t,
                }
            )
        return states

    def restore(
        self, states: Sequence[Mapping[str, Any]]
    ) -> "_HoltWintersBankStream":
        if len(states) != self._k:
            raise DetectorError(
                f"expected {self._k} holt-winters states, got {len(states)}"
            )
        ticks = {int(state["_t"]) for state in states}
        if len(ticks) != 1:
            raise DetectorError(
                f"holt-winters family states out of sync: t={sorted(ticks)}"
            )
        self._t = ticks.pop()
        self._init_buffer = [float(v) for v in states[0]["_init_buffer"]]
        if self._t >= self._season:
            self._level = np.array(
                [state["_level"] for state in states], dtype=np.float64
            )
            self._trend = np.array(
                [state["_trend"] for state in states], dtype=np.float64
            )
            self._seasonals = np.array(
                [state["_seasonals"] for state in states], dtype=np.float64
            )
        return self

    def buffered_points(self) -> int:
        return len(self._init_buffer) + int(self._seasonals.size)
