"""The 14 basic detectors of Table 3, modelled as feature extractors."""

from .arima import ARIMA, ARIMAOrder
from .brutlag import Brutlag
from .cusum import CUSUM
from .base import (
    STREAM_BUFFER_SLACK,
    Detector,
    DetectorConfig,
    DetectorError,
    FamilyEvaluator,
    FamilyKey,
    FamilyStream,
    PerConfigStreams,
    SeverityStream,
    SoloEvaluator,
    StreamBank,
    build_configs,
    build_family_evaluators,
    phase_view,
    prefix_sums,
    register_family_builder,
    rolling_mean,
    rolling_std,
)
from .diff import Diff
from .historical import HistoricalAverage, HistoricalMad
from .holt_winters import HoltWinters
from .moving_average import EWMA, MAOfDiff, SimpleMA, WeightedMA
from .registry import (
    EXPECTED_CONFIGURATIONS,
    extended_detectors,
    EXPECTED_DETECTORS,
    configs_for,
    default_configs,
    default_detectors,
    registry_table,
)
from .shesd import SHESD
from .svd import SVDDetector
from .threshold import SimpleThreshold
from .tsd import TSD, TSDMad
from .wavelet import WaveletDetector

__all__ = [
    "Detector",
    "DetectorConfig",
    "DetectorError",
    "SeverityStream",
    "FamilyEvaluator",
    "FamilyKey",
    "FamilyStream",
    "PerConfigStreams",
    "SoloEvaluator",
    "StreamBank",
    "STREAM_BUFFER_SLACK",
    "build_configs",
    "build_family_evaluators",
    "register_family_builder",
    "prefix_sums",
    "rolling_mean",
    "rolling_std",
    "phase_view",
    "SimpleThreshold",
    "Diff",
    "SimpleMA",
    "WeightedMA",
    "MAOfDiff",
    "EWMA",
    "TSD",
    "TSDMad",
    "HistoricalAverage",
    "HistoricalMad",
    "HoltWinters",
    "SVDDetector",
    "WaveletDetector",
    "ARIMA",
    "ARIMAOrder",
    "Brutlag",
    "CUSUM",
    "SHESD",
    "extended_detectors",
    "default_detectors",
    "default_configs",
    "configs_for",
    "registry_table",
    "EXPECTED_CONFIGURATIONS",
    "EXPECTED_DETECTORS",
]
