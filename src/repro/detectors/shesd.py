"""Seasonal Hybrid ESD (S-H-ESD) severity detector.

Twitter's AnomalyDetection package (Vallis, Hochenbaum & Kejariwal,
2014 — contemporary with the paper) combines a robust seasonal
decomposition with Rosner's generalized ESD test. In the unified
severity model (§4.3.1) we keep the *hybrid* part — residuals against a
same-phase **median** baseline, scaled by the **MAD** of the residuals
in a trailing window — and let the sThld play the role of the ESD
critical value:

1. baseline: median of the same weekly phase over ``window`` weeks
   (as TSD MAD);
2. residual: ``v - baseline``;
3. severity: ``|residual| / (1.4826 * MAD(recent residuals))`` where
   the MAD is taken over the trailing ``window`` weeks of residuals —
   the "hybrid" robust studentisation that makes ESD insensitive to
   other anomalies inside the window.

Registered through ``extended_detectors`` alongside Brutlag and CUSUM.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

import numpy as np

from ..timeseries import TimeSeries
from .base import Detector, DetectorError, ParamValue, SeverityStream
from .historical import MAD_TO_SIGMA

#: Sampled window grid (weeks) used by ``extended_detectors``.
SHESD_WINDOWS_WEEKS = (2, 3)


class SHESD(Detector):
    """Robust seasonal studentised residual (S-H-ESD severity)."""

    kind = "s-h-esd"

    def __init__(self, window_weeks: int, points_per_week: int):
        if window_weeks <= 0:
            raise DetectorError(
                f"window_weeks must be positive, got {window_weeks}"
            )
        if points_per_week <= 0:
            raise DetectorError(
                f"points_per_week must be positive, got {points_per_week}"
            )
        self.window_weeks = window_weeks
        self.points_per_week = points_per_week

    def params(self) -> Dict[str, ParamValue]:
        return {"win": f"{self.window_weeks}w"}

    def warmup(self) -> int:
        # One window of weeks for the baseline + one for the residual MAD.
        return 2 * self.window_weeks * self.points_per_week

    def stream_memory(self) -> None:
        # The MAD floor is fixed from the original warm-up prefix; a
        # truncated buffer would recompute it from a different prefix.
        return None

    def _residuals(self, values: np.ndarray) -> np.ndarray:
        """Residual from the same-phase median baseline (NaN during the
        baseline warm-up)."""
        period = self.points_per_week
        w = self.window_weeks
        n = len(values)
        residuals = np.full(n, np.nan)
        if n <= w * period:
            return residuals
        indices = np.arange(w * period, n)
        offsets = (np.arange(1, w + 1) * period)[np.newaxis, :]
        history = values[indices[:, np.newaxis] - offsets]
        import warnings

        with np.errstate(invalid="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore", category=RuntimeWarning)
            baseline = np.nanmedian(history, axis=1)
        residuals[w * period:] = values[w * period:] - baseline
        return residuals

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        n = len(values)
        out = np.full(n, np.nan)
        start = self.warmup()
        if n <= start:
            return out
        residuals = self._residuals(values)
        mad_window = self.window_weeks * self.points_per_week
        # Trailing MAD of residuals (previous window, current excluded).
        windows = np.lib.stride_tricks.sliding_window_view(
            residuals, mad_window
        )
        import warnings

        with np.errstate(invalid="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore", category=RuntimeWarning)
            medians = np.nanmedian(windows, axis=1)
            mads = np.nanmedian(
                np.abs(windows - medians[:, np.newaxis]), axis=1
            )
        # mads[j] covers residuals[j : j + mad_window]; for point t we
        # need residuals[t - mad_window : t] -> index t - mad_window.
        scale = np.full(n, np.nan)
        scale[mad_window:] = MAD_TO_SIGMA * mads[:-1]
        floor = self._floor(residuals, start)
        with np.errstate(invalid="ignore"):
            out[start:] = np.abs(residuals[start:]) / np.maximum(
                scale[start:], floor
            )
        return out

    @staticmethod
    def _floor(residuals: np.ndarray, start: int) -> float:
        prefix = residuals[:start]
        finite = prefix[np.isfinite(prefix)]
        if len(finite) == 0:
            return 1e-12
        magnitude = float(np.abs(finite).mean())
        return 1e-6 * magnitude if magnitude > 0 else 1e-12

    def stream(self) -> SeverityStream:
        return _SHESDStream(self)


class _SHESDStream(SeverityStream):
    """Ring buffer for the phase baseline + residual deque for the MAD."""

    def __init__(self, detector: SHESD):
        self._detector = detector
        period = detector.points_per_week
        w = detector.window_weeks
        self._ring = np.full(w * period, np.nan)
        self._residuals: deque = deque(maxlen=w * period)
        self._count = 0
        self._floor_sum = 0.0
        self._floor_n = 0
        self._floor: float | None = None

    def update(self, value: float) -> float:
        value = float(value)
        detector = self._detector
        period = detector.points_per_week
        w = detector.window_weeks
        size = len(self._ring)
        position = self._count % size
        start = detector.warmup()

        residual = float("nan")
        if self._count >= size:
            offsets = (
                position - np.arange(1, w + 1) * period
            ) % size
            history = self._ring[offsets]
            finite = history[np.isfinite(history)]
            if len(finite):
                residual = value - float(np.median(finite))

        severity = float("nan")
        if self._count >= start:
            if self._floor is None:
                self._floor = (
                    1e-6 * self._floor_sum / self._floor_n
                    if self._floor_n and self._floor_sum > 0.0
                    else 1e-12
                )
            window = np.asarray(self._residuals)
            finite = window[np.isfinite(window)]
            if len(finite):
                median = float(np.median(finite))
                mad = float(np.median(np.abs(finite - median)))
                scale = MAD_TO_SIGMA * mad
                with np.errstate(invalid="ignore"):
                    severity = abs(residual) / max(scale, self._floor)
        elif np.isfinite(residual):
            self._floor_sum += abs(residual)
            self._floor_n += 1

        self._ring[position] = value
        self._residuals.append(residual)
        self._count += 1
        return severity
