"""The unified detector model of §4.3.1.

Every basic detector follows::

    data point --(detector with parameters)--> severity --(sThld)--> {1, 0}

In Opprentice detectors never apply the sThld themselves — a *detector
configuration* (detector + sampled parameters) is a feature extractor
whose output severity becomes one column of the learning feature matrix.

Two execution modes are provided:

* :meth:`Detector.severities` — vectorised batch computation over a whole
  series. This is what training and the moving-window evaluation use.
* :meth:`Detector.stream` — an online stream processing one point at a
  time, as required by §4.3.2 ("once a data point arrives, its severity
  should be calculated by the detectors without waiting for any
  subsequent data"). Batch and stream must agree point-for-point; the
  test suite enforces this for every registered configuration.

Both modes are **causal**: the severity of point *t* depends only on
points ``0..t``. Points inside a detector's warm-up window (§4.3.2) get
``NaN`` severity and are skipped during detection.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..timeseries import TimeSeries

ParamValue = Union[int, float, str]

#: A detector's family membership: ``(builder name, subgroup key)``.
#: Configurations sharing the same family key are fused into one
#: :class:`FamilyEvaluator` pass; ``None`` means "no family" (the
#: configuration runs solo).
FamilyKey = Tuple[str, Hashable]

#: Extra points kept beyond the warm-up window by the generic bounded
#: buffer, so boundary effects (e.g. a window that straddles the oldest
#: retained point) never reach the newest severity.
STREAM_BUFFER_SLACK = 16


class DetectorError(ValueError):
    """Raised for invalid detector parameters or inputs."""


def _encode_state(value: Any) -> Any:
    """Encode one stream attribute into JSON-serializable form.

    Numpy arrays and deques carry a kind tag so :func:`_decode_state`
    can rebuild them exactly (including a deque's ``maxlen``); plain
    scalars, strings, None and lists pass through. NaN is a legal float
    here — severity buffers legitimately contain NaN — and survives the
    round trip via JSON's (non-strict) NaN token.
    """
    if isinstance(value, np.ndarray):
        return {"__kind__": "ndarray", "values": value.tolist()}
    if isinstance(value, deque):
        return {
            "__kind__": "deque",
            "maxlen": value.maxlen,
            "values": [_encode_state(item) for item in value],
        }
    if isinstance(value, tuple):
        return {
            "__kind__": "tuple",
            "values": [_encode_state(item) for item in value],
        }
    if isinstance(value, list):
        return [_encode_state(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot checkpoint attribute of type {type(value).__name__}; "
        "the stream must override snapshot()/restore()"
    )


def _decode_state(value: Any) -> Any:
    """Inverse of :func:`_encode_state`."""
    if isinstance(value, dict):
        kind = value.get("__kind__")
        if kind == "ndarray":
            return np.asarray(value["values"], dtype=np.float64)
        if kind == "deque":
            return deque(
                (_decode_state(item) for item in value["values"]),
                maxlen=value["maxlen"],
            )
        if kind == "tuple":
            return tuple(_decode_state(item) for item in value["values"])
        raise ValueError(f"unknown checkpoint state kind {kind!r}")
    if isinstance(value, list):
        return [_decode_state(item) for item in value]
    return value


class SeverityStream(abc.ABC):
    """Online severity computation: one :meth:`update` per data point.

    Streams are *checkpointable*: :meth:`snapshot` captures the mutable
    state as a JSON-serializable dict and :meth:`restore` rebuilds it on
    a fresh stream of the same configuration, so a long-running service
    can resume warm streams without replaying history. The generic
    implementations walk ``__dict__``, skipping wiring (the owning
    :class:`Detector`, bound methods/closures) and anything listed in
    ``_snapshot_skip``; streams holding state the encoder cannot handle
    override both methods (see ``_ARIMAStream``).
    """

    #: Attribute names the generic snapshot must not serialize.
    _snapshot_skip: Tuple[str, ...] = ()

    @abc.abstractmethod
    def update(self, value: float) -> float:
        """Consume the next point and return its severity (NaN while the
        detector is warming up or the value is missing)."""

    def snapshot(self) -> Dict[str, Any]:
        """The stream's mutable state as a JSON-serializable dict."""
        state: Dict[str, Any] = {}
        for key, value in self.__dict__.items():
            if key in self._snapshot_skip:
                continue
            if isinstance(value, Detector) or callable(value):
                continue
            state[key] = _encode_state(value)
        return state

    def restore(self, state: Mapping[str, Any]) -> "SeverityStream":
        """Load a :meth:`snapshot` into this (fresh) stream and return it.

        The stream must have been built by the *same* detector
        configuration that produced the snapshot; this is enforced at
        the :class:`~repro.core.StreamingDetector` level via feature
        names, not per stream.
        """
        for key, value in state.items():
            setattr(self, key, _decode_state(value))
        return self

    def buffered_points(self) -> int:
        """Number of buffered points held in container state — the
        quantity the ``repro_stream_buffer_points`` gauge aggregates.
        Bounded streams keep this flat no matter how long they run."""
        total = 0
        for value in self.__dict__.values():
            if isinstance(value, (list, deque, np.ndarray)):
                total += len(value)
        return total


class Detector(abc.ABC):
    """A basic anomaly detector acting as a severity (feature) extractor.

    Subclasses set :attr:`kind` (the Table 3 detector name) and define
    the parameters in their constructor. ``params()`` must return the
    constructor arguments so a configuration has a stable feature name.
    """

    #: Human-readable detector family name (e.g. "simple MA").
    kind: str = "detector"

    @abc.abstractmethod
    def params(self) -> Dict[str, ParamValue]:
        """The sampled parameter values identifying this configuration."""

    @abc.abstractmethod
    def warmup(self) -> int:
        """Number of leading points whose severity is undefined (NaN)."""

    @abc.abstractmethod
    def severities(self, series: TimeSeries) -> np.ndarray:
        """Severity of every point of ``series`` (vectorised, causal)."""

    def stream(self) -> SeverityStream:
        """An online stream for this configuration.

        The default implementation re-runs the batch computation on a
        buffer bounded by :meth:`stream_memory`, so the per-point cost
        is O(memory), not O(points seen). Detectors with cheap
        recurrences override this with a true O(1)-per-point stream.
        """
        return _BufferedStream(self)

    def stream_memory(self) -> Optional[int]:
        """Trailing points sufficient to reproduce the batch severity of
        the newest point, or ``None`` when no finite window suffices.

        The default — the warm-up window plus slack — is correct for
        every *window-bounded* detector (the severity of point ``t``
        depends only on points ``t - warmup() .. t``). Detectors whose
        severity depends on the whole prefix (exponential smoothing,
        cumulative statistics, models fitted on the prefix) must either
        override :meth:`stream` with a true recurrence (all registered
        ones do) or return ``None``, which makes :class:`_BufferedStream`
        fall back to an unbounded buffer rather than silently break the
        stream == batch invariant.
        """
        return self.warmup() + max(self.warmup(), STREAM_BUFFER_SLACK)

    def family(self) -> Optional[FamilyKey]:
        """Fusion family of this detector, or ``None`` to run solo.

        Configurations whose detectors report the same ``(builder,
        subgroup)`` key are handed together to the registered
        :class:`FamilyEvaluator` builder (see
        :func:`register_family_builder`), which computes all their
        severity columns in one fused pass sharing window sums,
        seasonal gathers, or smoothing sweeps. The contract is strict:
        the fused columns must be bit-identical to calling each
        config's :meth:`severities` on its own.
        """
        return None

    # ------------------------------------------------------------------
    @property
    def feature_name(self) -> str:
        """Stable identifier, e.g. ``"ewma(alpha=0.3)"``."""
        params = self.params()
        if not params:
            return self.kind
        inner = ",".join(f"{k}={params[k]}" for k in sorted(params))
        return f"{self.kind}({inner})"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.feature_name}>"

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _validate(series: TimeSeries) -> np.ndarray:
        values = np.asarray(series.values, dtype=np.float64)
        if values.ndim != 1:
            raise DetectorError(f"expected 1-D values, got {values.shape}")
        return values


class _BufferedStream(SeverityStream):
    """Generic stream: recompute the batch severities on a buffer.

    A ``max_history`` cap — ``detector.stream_memory()``, floored at
    ``warmup() + 1`` so the newest point is always past the warm-up —
    bounds the buffer, making the per-point cost O(max_history) instead
    of O(points seen). Results match the batch mode for every detector
    whose memory is window-bounded; detectors with unbounded memory
    report ``stream_memory() is None`` and keep the full buffer.
    """

    def __init__(self, detector: Detector, interval: int = 60):
        self._detector = detector
        self._interval = interval
        cap = detector.stream_memory()
        if cap is not None:
            cap = max(int(cap), detector.warmup() + 1)
        self._max_history = cap
        self._values: Union[List[float], deque] = (
            deque(maxlen=cap) if cap is not None else []
        )

    @property
    def max_history(self) -> Optional[int]:
        """The buffer cap (``None`` = unbounded)."""
        return self._max_history

    def update(self, value: float) -> float:
        self._values.append(float(value))
        series = TimeSeries(
            values=np.asarray(self._values), interval=self._interval
        )
        return float(self._detector.severities(series)[-1])


@dataclass(frozen=True)
class DetectorConfig:
    """One of the 133 configurations: a detector bound to its feature
    column index in the feature matrix."""

    index: int
    detector: Detector

    @property
    def name(self) -> str:
        return self.detector.feature_name


def prefix_sums(values: np.ndarray) -> np.ndarray:
    """Zero-prefixed cumulative sum, the shared building block of the
    clean-data :func:`rolling_mean` path. A family evaluator computes
    this once per series and hands it to every window size."""
    return np.cumsum(np.concatenate([[0.0], values]))


def rolling_mean(
    values: np.ndarray,
    window: int,
    *,
    cumsum: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Causal rolling mean of the *previous* ``window`` points.

    ``out[t]`` is the mean of ``values[t-window : t]`` — the current
    point is excluded, so prediction-based detectors stay causal. The
    first ``window`` entries are NaN. A missing (NaN) point makes only
    the windows that contain it NaN; it does not poison the rest of the
    series (dirty-data handling, §6).

    ``cumsum`` may carry :func:`prefix_sums` of ``values`` precomputed
    by a fused family pass; it is only consulted on the clean-data
    branch, where it is bit-identical to recomputing it here.
    """
    if window <= 0:
        raise DetectorError(f"window must be positive, got {window}")
    n = len(values)
    out = np.full(n, np.nan)
    if n <= window:
        return out
    if np.isfinite(values).all():
        # Fast cumulative-sum path for clean data.
        if cumsum is None:
            cumsum = prefix_sums(values)
        out[window:] = (cumsum[window:-1] - cumsum[:-window - 1]) / window
    else:
        windows = np.lib.stride_tricks.sliding_window_view(values, window)
        out[window:] = windows[:-1].mean(axis=1)
    return out


def rolling_std(values: np.ndarray, window: int) -> np.ndarray:
    """Causal rolling standard deviation of the previous ``window``
    points (current point excluded), NaN during warm-up. NaN points
    invalidate only the windows containing them.

    The clean-data fast path centres the series on its global mean
    before taking cumulative sums: ``sum(x**2)`` of raw values near 1e8
    reaches 1e16 per point, where float64 spacing (~1) wipes out the
    entire variance of a modest-spread window — the uncentred formula
    returned stds that were wrong or clamped to zero. Variance is
    shift-invariant, so centring changes nothing mathematically while
    keeping the summed squares on the order of the spread, not the
    offset.
    """
    if window <= 1:
        raise DetectorError(f"window must be > 1 for std, got {window}")
    n = len(values)
    out = np.full(n, np.nan)
    if n <= window:
        return out
    if np.isfinite(values).all():
        centered = values - values.mean()
        cumsum = np.cumsum(np.concatenate([[0.0], centered]))
        cumsq = np.cumsum(np.concatenate([[0.0], centered * centered]))
        total = cumsum[window:-1] - cumsum[:-window - 1]
        total_sq = cumsq[window:-1] - cumsq[:-window - 1]
        variance = np.maximum(total_sq / window - (total / window) ** 2, 0.0)
        out[window:] = np.sqrt(variance)
    else:
        windows = np.lib.stride_tricks.sliding_window_view(values, window)
        out[window:] = windows[:-1].std(axis=1)
    return out


def phase_view(values: np.ndarray, period: int) -> np.ndarray:
    """Reshape a series into an (occurrence, phase) matrix, padding the
    final partial period with NaN. Used by seasonal detectors that
    compare each point with the same phase in previous periods."""
    if period <= 0:
        raise DetectorError(f"period must be positive, got {period}")
    n = len(values)
    n_rows = -(-n // period)
    padded = np.full(n_rows * period, np.nan)
    padded[:n] = values
    return padded.reshape(n_rows, period)


def build_configs(detectors: Iterable[Detector]) -> List[DetectorConfig]:
    """Assign stable feature-column indices to a detector list."""
    return [DetectorConfig(i, d) for i, d in enumerate(detectors)]


# ----------------------------------------------------------------------
# Family-fused evaluation (the §5.8 hot-path contract)
# ----------------------------------------------------------------------
class FamilyStream(abc.ABC):
    """Online counterpart of :class:`FamilyEvaluator`: one
    :meth:`update` per point returns the severity of *every* config in
    the family, and checkpoints decompose into the same per-config
    dicts the individual :class:`SeverityStream` classes produce, so
    the :class:`~repro.core.StreamingDetector` checkpoint format is
    unchanged."""

    @abc.abstractmethod
    def update(self, value: float) -> np.ndarray:
        """Severity of the new point for each config, in family order."""

    @abc.abstractmethod
    def snapshots(self) -> List[Dict[str, Any]]:
        """Per-config checkpoint dicts, in family order. Each dict must
        be loadable by the config's own solo stream (and vice versa)."""

    @abc.abstractmethod
    def restore(self, states: Sequence[Mapping[str, Any]]) -> "FamilyStream":
        """Load per-config snapshots (family order) into this fresh
        stream and return it."""

    def buffered_points(self) -> int:
        """Buffered container state, aggregated across the family."""
        total = 0
        for value in self.__dict__.values():
            if isinstance(value, (list, deque, np.ndarray)):
                total += len(value)
        return total


class PerConfigStreams(FamilyStream):
    """Default family stream: one solo :class:`SeverityStream` per
    config, advanced in lockstep. Used whenever a family has no fused
    streaming recurrence."""

    def __init__(self, streams: Sequence[SeverityStream]):
        self._streams = list(streams)

    def update(self, value: float) -> np.ndarray:
        return np.array(
            [stream.update(value) for stream in self._streams],
            dtype=np.float64,
        )

    def snapshots(self) -> List[Dict[str, Any]]:
        return [stream.snapshot() for stream in self._streams]

    def restore(self, states: Sequence[Mapping[str, Any]]) -> "PerConfigStreams":
        if len(states) != len(self._streams):
            raise DetectorError(
                f"expected {len(self._streams)} stream states, got {len(states)}"
            )
        for stream, state in zip(self._streams, states):
            stream.restore(state)
        return self

    def buffered_points(self) -> int:
        return sum(stream.buffered_points() for stream in self._streams)


class FamilyEvaluator(abc.ABC):
    """Fused severity computation for a group of sibling configs.

    One :meth:`evaluate` call produces the severity columns of every
    config in the family from a single pass over the series, sharing
    whatever intermediate the family's detectors recompute per config
    in solo mode (window prefix sums, seasonal history gathers, the
    Holt-Winters state sweep). Instances must be picklable — the
    process backend ships them to pool workers.
    """

    #: Display name used for observability labels (span/timer
    #: ``detector=`` tags) when the family runs as one task.
    kind: str = "family"

    def __init__(self, configs: Sequence[DetectorConfig]):
        self.configs: Tuple[DetectorConfig, ...] = tuple(configs)
        if not self.configs:
            raise DetectorError("a family evaluator needs at least one config")

    @property
    def indices(self) -> Tuple[int, ...]:
        """Feature-matrix column index of each config, family order."""
        return tuple(config.index for config in self.configs)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(config.name for config in self.configs)

    @abc.abstractmethod
    def evaluate(self, series: TimeSeries) -> np.ndarray:
        """``(n_points, n_configs)`` severity matrix, columns in family
        order — bit-identical to stacking each config's solo
        :meth:`Detector.severities`."""

    def make_stream(self) -> FamilyStream:
        """Online streams for the family; the default advances each
        config's solo stream."""
        return PerConfigStreams(
            [config.detector.stream() for config in self.configs]
        )


class SoloEvaluator(FamilyEvaluator):
    """Wraps a single config that has no family (or whose family has no
    registered builder) in the :class:`FamilyEvaluator` contract."""

    def __init__(self, config: DetectorConfig):
        super().__init__([config])
        self.kind = config.detector.kind

    def evaluate(self, series: TimeSeries) -> np.ndarray:
        return self.configs[0].detector.severities(series).reshape(-1, 1)


#: Registered family builders: name -> callable(configs) -> evaluator.
#: Detector modules register theirs at import time via
#: :func:`register_family_builder`, which keeps this module free of
#: circular imports.
_FAMILY_BUILDERS: Dict[
    str, Callable[[Sequence[DetectorConfig]], FamilyEvaluator]
] = {}


def register_family_builder(
    name: str,
) -> Callable[
    [Callable[[Sequence[DetectorConfig]], FamilyEvaluator]],
    Callable[[Sequence[DetectorConfig]], FamilyEvaluator],
]:
    """Class/function decorator registering a family evaluator builder
    under ``name`` (the first element of :meth:`Detector.family`)."""

    def decorate(builder):
        if name in _FAMILY_BUILDERS:
            raise DetectorError(f"family builder {name!r} already registered")
        _FAMILY_BUILDERS[name] = builder
        return builder

    return decorate


def build_family_evaluators(
    configs: Sequence[DetectorConfig],
) -> List[FamilyEvaluator]:
    """Group a config bank into fused family evaluators.

    Configs sharing a :meth:`Detector.family` key collapse into one
    evaluator (placed at the first member's position); configs with no
    family — or a family with no registered builder — become
    :class:`SoloEvaluator`s. Every config appears in exactly one
    returned evaluator.
    """
    grouped: Dict[FamilyKey, List[DetectorConfig]] = {}
    order: List[Tuple[str, Any]] = []
    for config in configs:
        key = config.detector.family()
        if key is not None and key[0] in _FAMILY_BUILDERS:
            if key not in grouped:
                grouped[key] = []
                order.append(("family", key))
            grouped[key].append(config)
        else:
            order.append(("solo", config))
    evaluators: List[FamilyEvaluator] = []
    for tag, item in order:
        if tag == "solo":
            evaluators.append(SoloEvaluator(item))
        else:
            evaluators.append(_FAMILY_BUILDERS[item[0]](grouped[item]))
    return evaluators


class StreamBank:
    """Warm per-point extraction over a whole configuration bank.

    Builds the family evaluators for the bank once, keeps one
    :class:`FamilyStream` per family, and maps each family's outputs
    back to the bank's column order, so :meth:`extract_point` fills a
    full feature row with one fused update per family (§4.3.2: the
    severity of a new point is computed the moment it arrives).
    Checkpoints stay per-config — :meth:`snapshots` returns one dict
    per bank position, interchangeable with the solo streams'.
    """

    def __init__(self, configs: Sequence[DetectorConfig]):
        self._configs: Tuple[DetectorConfig, ...] = tuple(configs)
        self._evaluators = build_family_evaluators(self._configs)
        position = {id(config): i for i, config in enumerate(self._configs)}
        self._positions: List[np.ndarray] = [
            np.array(
                [position[id(config)] for config in evaluator.configs],
                dtype=np.intp,
            )
            for evaluator in self._evaluators
        ]
        self._streams: List[FamilyStream] = [
            evaluator.make_stream() for evaluator in self._evaluators
        ]

    def __len__(self) -> int:
        return len(self._configs)

    @property
    def configs(self) -> Tuple[DetectorConfig, ...]:
        return self._configs

    def extract_point(self, value: float) -> np.ndarray:
        """Severity row for the new point, in bank (column) order."""
        row = np.empty(len(self._configs), dtype=np.float64)
        for stream, positions in zip(self._streams, self._positions):
            row[positions] = stream.update(value)
        return row

    def snapshots(self) -> List[Dict[str, Any]]:
        """Per-config checkpoint dicts, in bank order."""
        states: List[Optional[Dict[str, Any]]] = [None] * len(self._configs)
        for stream, positions in zip(self._streams, self._positions):
            for pos, state in zip(positions, stream.snapshots()):
                states[pos] = state
        return states  # type: ignore[return-value]

    def restore(self, states: Sequence[Mapping[str, Any]]) -> "StreamBank":
        """Load per-config snapshots (bank order) into fresh streams."""
        if len(states) != len(self._configs):
            raise DetectorError(
                f"expected {len(self._configs)} stream states, got {len(states)}"
            )
        for stream, positions in zip(self._streams, self._positions):
            stream.restore([states[pos] for pos in positions])
        return self

    def buffered_points(self) -> int:
        return sum(stream.buffered_points() for stream in self._streams)
