"""The default detector bank: Table 3's 14 detectors / 133 configurations.

======================  =============================================  ====
Detector                Sampled parameters                             #
======================  =============================================  ====
Simple threshold        none                                           1
Diff                    last-slot, last-day, last-week                 3
Simple MA               win = 10, 20, 30, 40, 50 points                5
Weighted MA             win = 10, 20, 30, 40, 50 points                5
MA of diff              win = 10, 20, 30, 40, 50 points                5
EWMA                    alpha = 0.1, 0.3, 0.5, 0.7, 0.9                5
TSD                     win = 1, 2, 3, 4, 5 weeks                      5
TSD MAD                 win = 1, 2, 3, 4, 5 weeks                      5
Historical average      win = 1, 2, 3, 4, 5 weeks                      5
Historical MAD          win = 1, 2, 3, 4, 5 weeks                      5
Holt-Winters            alpha, beta, gamma = 0.2, 0.4, 0.6, 0.8        64
SVD                     row = 10..50 points, column = 3, 5, 7          15
Wavelet                 win = 3, 5, 7 days; freq = low, mid, high      9
ARIMA                   estimated from data                            1
======================  =============================================  ====
Total: 133 configurations.

Day/week-sized windows are converted to points from the KPI's sampling
interval, so the same registry definition works for 1-minute and
60-minute KPIs. Opprentice is not limited to this bank (§5.2): pass any
detector list to :class:`repro.core.FeatureExtractor` to plug in an
emerging detector.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

from ..obs import get_provider
from ..timeseries import DAY, TimeSeries
from .arima import ARIMA
from .base import Detector, DetectorConfig, build_configs
from .brutlag import BRUTLAG_GRID, Brutlag
from .cusum import CUSUM, CUSUM_SLACKS, CUSUM_WINDOWS
from .diff import Diff
from .shesd import SHESD, SHESD_WINDOWS_WEEKS
from .historical import HISTORICAL_WINDOWS_WEEKS, HistoricalAverage, HistoricalMad
from .holt_winters import HW_GRID, HoltWinters
from .moving_average import EWMA, EWMA_ALPHAS, MA_WINDOWS, MAOfDiff, SimpleMA, WeightedMA
from .svd import SVD_COLUMNS, SVD_ROWS, SVDDetector
from .threshold import SimpleThreshold
from .tsd import TSD_WINDOWS_WEEKS, TSD, TSDMad
from .wavelet import WAVELET_BANDS, WAVELET_WINDOWS_DAYS, WaveletDetector

#: Number of configurations the default bank must contain (Table 3).
EXPECTED_CONFIGURATIONS = 133
#: Number of distinct basic detectors (Table 3).
EXPECTED_DETECTORS = 14


def default_detectors(
    interval: int, *, arima_fit_weeks: int = 2
) -> List[Detector]:
    """Instantiate the full Table 3 bank for a KPI sampled every
    ``interval`` seconds.

    ``arima_fit_weeks`` sets ARIMA's estimation prefix; the paper's
    evaluation always has at least 8 weeks of initial training data, so
    2 weeks of warm-up keeps ARIMA usable everywhere.
    """
    if interval <= 0 or DAY % interval != 0:
        raise ValueError(
            f"interval must be a positive divisor of one day, got {interval}"
        )
    points_per_day = DAY // interval
    points_per_week = 7 * points_per_day

    detectors: List[Detector] = [SimpleThreshold()]
    detectors += [
        Diff("last-slot", 1),
        Diff("last-day", points_per_day),
        Diff("last-week", points_per_week),
    ]
    detectors += [SimpleMA(win) for win in MA_WINDOWS]
    detectors += [WeightedMA(win) for win in MA_WINDOWS]
    detectors += [MAOfDiff(win) for win in MA_WINDOWS]
    detectors += [EWMA(alpha) for alpha in EWMA_ALPHAS]
    detectors += [TSD(w, points_per_week) for w in TSD_WINDOWS_WEEKS]
    detectors += [TSDMad(w, points_per_week) for w in TSD_WINDOWS_WEEKS]
    detectors += [
        HistoricalAverage(w, points_per_day) for w in HISTORICAL_WINDOWS_WEEKS
    ]
    detectors += [HistoricalMad(w, points_per_day) for w in HISTORICAL_WINDOWS_WEEKS]
    detectors += [
        HoltWinters(alpha, beta, gamma, points_per_day)
        for alpha, beta, gamma in itertools.product(HW_GRID, HW_GRID, HW_GRID)
    ]
    detectors += [
        SVDDetector(row, column)
        for row, column in itertools.product(SVD_ROWS, SVD_COLUMNS)
    ]
    detectors += [
        WaveletDetector(win, band, points_per_day)
        for win, band in itertools.product(WAVELET_WINDOWS_DAYS, WAVELET_BANDS)
    ]
    detectors.append(ARIMA(fit_points=arima_fit_weeks * points_per_week))

    assert len(detectors) == EXPECTED_CONFIGURATIONS, len(detectors)
    assert len({d.kind for d in detectors}) == EXPECTED_DETECTORS
    return detectors


def extended_detectors(interval: int) -> List[Detector]:
    """Post-Table-3 "emerging detectors" (§5.2): Brutlag's aberrant
    behaviour detector [13] and two-sided CUSUM.

    These are *not* part of the paper's 133-configuration bank; append
    them to ``default_detectors`` to study how Opprentice absorbs new
    detectors without any tuning:

    >>> bank = default_detectors(600) + extended_detectors(600)
    >>> configs = build_configs(bank)
    """
    if interval <= 0 or DAY % interval != 0:
        raise ValueError(
            f"interval must be a positive divisor of one day, got {interval}"
        )
    points_per_day = DAY // interval
    detectors: List[Detector] = [
        Brutlag(alpha, 0.4, gamma, points_per_day)
        for alpha in BRUTLAG_GRID
        for gamma in BRUTLAG_GRID
    ]
    detectors += [
        CUSUM(window, slack)
        for window in CUSUM_WINDOWS
        for slack in CUSUM_SLACKS
    ]
    points_per_week = 7 * points_per_day
    detectors += [
        SHESD(w, points_per_week) for w in SHESD_WINDOWS_WEEKS
    ]
    return detectors


def default_configs(interval: int, **kwargs) -> List[DetectorConfig]:
    """The Table 3 bank with stable feature-column indices."""
    obs = get_provider()
    with obs.span("registry.build_bank", interval=interval):
        configs = build_configs(default_detectors(interval, **kwargs))
    obs.gauge(
        "repro_detector_configs", "Configurations in the active bank"
    ).set(len(configs))
    return configs


def configs_for(series: TimeSeries, **kwargs) -> List[DetectorConfig]:
    """Convenience: the default bank sized for ``series``' interval."""
    return default_configs(series.interval, **kwargs)


def registry_table(configs: Sequence[DetectorConfig]) -> str:
    """A Table 3-style summary: one row per detector kind with its
    configuration count."""
    counts: dict = {}
    for config in configs:
        counts[config.detector.kind] = counts.get(config.detector.kind, 0) + 1
    lines = [f"{kind:<22} {count:>3}" for kind, count in counts.items()]
    lines.append(f"{'total':<22} {len(configs):>3}")
    return "\n".join(lines)
