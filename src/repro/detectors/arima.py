"""ARIMA detector [10] with parameters estimated from data.

§4.3.3: "the parameters of some complex detectors, e.g., ARIMA, can be
less intuitive. Worse, their parameter spaces can be too large even for
sampling. To deal with such detectors, we estimate their 'best'
parameters from the data, and generate only one set of parameters".

The estimation pipeline here follows the classic Box-Jenkins /
Hannan-Rissanen recipe, from scratch:

1. **Differencing order d in {0, 1}** — difference once if it reduces
   the variance (the usual variance-minimisation heuristic).
2. **Long-AR pre-fit** — an AR(m) model fitted by least squares on the
   estimation prefix provides innovation estimates.
3. **Hannan-Rissanen regression** — for each (p, q) in a small grid,
   regress the differenced series on p of its own lags and q lagged
   innovations; pick the order by AIC.
4. **One-step forecasting** — the fitted ARMA produces causal one-step
   predictions; severity = |actual - forecast|.

Parameters are estimated on the first ``fit_points`` of the series (the
warm-up window), so detection severities are fully causal. Table 3
counts ARIMA as a single configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..timeseries import TimeSeries
from .base import Detector, DetectorError, ParamValue, SeverityStream


@dataclass(frozen=True)
class ARIMAOrder:
    """An estimated (p, d, q) order with its fitted coefficients."""

    p: int
    d: int
    q: int
    const: float
    ar: Tuple[float, ...]
    ma: Tuple[float, ...]
    aic: float


def _interpolate_nan(values: np.ndarray) -> np.ndarray:
    """Linear interpolation over missing points. Only used on the
    historical estimation prefix, where looking at neighbours on both
    sides is fine."""
    values = values.astype(np.float64, copy=True)
    mask = np.isnan(values)
    if mask.all():
        raise DetectorError("cannot fit ARIMA on an all-missing series")
    if mask.any():
        indices = np.arange(len(values))
        values[mask] = np.interp(indices[mask], indices[~mask], values[~mask])
    return values


def _forward_fill(values: np.ndarray) -> np.ndarray:
    """Causal missing-point filling for the detection pass: a NaN takes
    the last observed value (leading NaNs take the first observation).
    Unlike interpolation this never looks at future points, so detection
    severities stay causal."""
    values = values.astype(np.float64, copy=True)
    mask = np.isnan(values)
    if mask.all():
        raise DetectorError("cannot run ARIMA on an all-missing series")
    if mask.any():
        idx = np.where(mask, 0, np.arange(len(values)))
        np.maximum.accumulate(idx, out=idx)
        values = values[idx]
        # Leading NaNs (before the first observation) backfill.
        still = np.isnan(values)
        if still.any():
            values[still] = values[~still][0]
    return values


def _lag_matrix(series: np.ndarray, lags: int, offset: int) -> np.ndarray:
    """Columns [x[t-1], ..., x[t-lags]] for t >= offset."""
    n = len(series)
    return np.column_stack(
        [series[offset - k: n - k] for k in range(1, lags + 1)]
    ) if lags > 0 else np.empty((n - offset, 0))


def _fit_long_ar(series: np.ndarray, order: int) -> np.ndarray:
    """Least-squares AR(order) innovations of ``series``."""
    n = len(series)
    if n <= order + 1:
        raise DetectorError(f"series too short ({n}) for AR({order}) pre-fit")
    design = np.column_stack(
        [np.ones(n - order), _lag_matrix(series, order, order)]
    )
    target = series[order:]
    coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    innovations = np.zeros(n)
    innovations[order:] = target - design @ coef
    return innovations


def _hannan_rissanen(
    series: np.ndarray, innovations: np.ndarray, p: int, q: int
) -> Optional[Tuple[float, np.ndarray, np.ndarray, float]]:
    """Fit ARMA(p, q) by regression on lags of the series and of the
    pre-fit innovations. Returns (const, ar, ma, aic) or None if the
    regression is degenerate."""
    offset = max(p, q, 1)
    n = len(series)
    if n - offset < p + q + 5:
        return None
    design = np.column_stack(
        [
            np.ones(n - offset),
            _lag_matrix(series, p, offset),
            _lag_matrix(innovations, q, offset),
        ]
    )
    target = series[offset:]
    coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    residuals = target - design @ coef
    sigma2 = float(np.mean(residuals**2))
    if sigma2 <= 0 or not np.isfinite(sigma2):
        return None
    n_obs = len(target)
    aic = n_obs * np.log(sigma2) + 2.0 * (p + q + 1)
    return float(coef[0]), coef[1: 1 + p], coef[1 + p:], float(aic)


class ARIMA(Detector):
    """Auto-fitted ARIMA one-step forecaster; severity = |residual|.

    Parameters
    ----------
    fit_points:
        Length of the estimation prefix (and warm-up window).
    max_p, max_q:
        Order-search grid bounds.
    """

    kind = "arima"

    def __init__(self, fit_points: int, max_p: int = 3, max_q: int = 3):
        if fit_points < 50:
            raise DetectorError(
                f"fit_points must be >= 50 for stable estimation, got {fit_points}"
            )
        if max_p < 0 or max_q < 0 or max_p + max_q == 0:
            raise DetectorError("order grid must include at least one lag")
        self.fit_points = fit_points
        self.max_p = max_p
        self.max_q = max_q

    def params(self) -> Dict[str, ParamValue]:
        return {"order": "auto"}

    def warmup(self) -> int:
        return self.fit_points

    def stream_memory(self) -> None:
        # The order is estimated on the *original* fit_points prefix and
        # innovations recurse from there; a truncated buffer would refit
        # a different model entirely.
        return None

    # ------------------------------------------------------------------
    def estimate_order(self, values: np.ndarray) -> ARIMAOrder:
        """Box-Jenkins order and coefficient estimation on a prefix."""
        prefix = _interpolate_nan(np.asarray(values, dtype=np.float64))
        d = 0
        working = prefix
        diffed = np.diff(prefix)
        if len(diffed) > 2 and np.var(diffed) < np.var(prefix):
            d, working = 1, diffed
        long_order = min(20, max(4, len(working) // 10))
        innovations = _fit_long_ar(working, long_order)
        best: Optional[ARIMAOrder] = None
        for p in range(self.max_p + 1):
            for q in range(self.max_q + 1):
                if p == 0 and q == 0:
                    continue
                fit = _hannan_rissanen(working, innovations, p, q)
                if fit is None:
                    continue
                const, ar, ma, aic = fit
                if best is None or aic < best.aic:
                    best = ARIMAOrder(
                        p=p, d=d, q=q, const=const,
                        ar=tuple(ar), ma=tuple(ma), aic=aic,
                    )
        if best is None:
            raise DetectorError("ARIMA order estimation failed on this series")
        return best

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        n = len(values)
        out = np.full(n, np.nan)
        if n <= self.fit_points:
            return out
        order = self.estimate_order(values[: self.fit_points])
        filled = _forward_fill(values)
        working = np.diff(filled) if order.d == 1 else filled
        missing = np.isnan(values)

        # Causal one-step predictions with recursively computed
        # innovations over the working (possibly differenced) series.
        m = len(working)
        innovations = np.zeros(m)
        offset = max(order.p, order.q, 1)
        predictions = np.full(m, np.nan)
        ar, ma = order.ar, order.ma
        for t in range(offset, m):
            forecast = order.const
            for i, phi in enumerate(ar):
                forecast += phi * working[t - 1 - i]
            for j, theta in enumerate(ma):
                forecast += theta * innovations[t - 1 - j]
            predictions[t] = forecast
            innovations[t] = working[t] - forecast

        # |working - prediction| equals |value - value forecast| in the
        # original space for both d = 0 and d = 1.
        residual = np.abs(working - predictions)
        severities = np.full(n, np.nan)
        severities[n - m:] = residual
        severities[missing] = np.nan
        out[self.fit_points:] = severities[self.fit_points:]
        return out

    def stream(self) -> SeverityStream:
        return _ARIMAStream(self)


class _ARIMAStream(SeverityStream):
    """Online ARIMA: buffer the estimation prefix, fit once, then run
    the one-step forecast recursion incrementally (O(p + q) per point).
    Point-for-point identical to the batch mode, including the causal
    forward-fill of missing points.
    """

    #: The fitted order is a dataclass the generic encoder cannot
    #: serialize; snapshot()/restore() below handle it explicitly.
    _snapshot_skip = ("_order",)

    def __init__(self, detector: ARIMA):
        self._detector = detector
        self._buffer: list = []
        self._order: Optional[ARIMAOrder] = None
        self._offset = 0
        #: Trailing working-series values and innovations (newest last).
        self._working: list = []
        self._innovations: list = []
        self._last_filled: float = float("nan")
        self._working_index = -1

    def snapshot(self) -> dict:
        state = super().snapshot()
        order = self._order
        state["_order"] = None if order is None else {
            "p": order.p,
            "d": order.d,
            "q": order.q,
            "const": order.const,
            "ar": list(order.ar),
            "ma": list(order.ma),
            "aic": order.aic,
        }
        return state

    def restore(self, state) -> "_ARIMAStream":
        state = dict(state)
        order = state.pop("_order", None)
        super().restore(state)
        self._order = None if order is None else ARIMAOrder(
            p=int(order["p"]),
            d=int(order["d"]),
            q=int(order["q"]),
            const=float(order["const"]),
            ar=tuple(float(c) for c in order["ar"]),
            ma=tuple(float(c) for c in order["ma"]),
            aic=float(order["aic"]),
        )
        return self

    # ------------------------------------------------------------------
    def _fit_and_replay(self) -> None:
        detector = self._detector
        values = np.asarray(self._buffer, dtype=np.float64)
        self._order = detector.estimate_order(values)
        order = self._order
        self._offset = max(order.p, order.q, 1)
        self._memory = max(order.p, order.q) + 1

        filled = _forward_fill(values)
        working = np.diff(filled) if order.d == 1 else filled
        innovations = np.zeros(len(working))
        for t in range(self._offset, len(working)):
            forecast = order.const
            for i, phi in enumerate(order.ar):
                forecast += phi * working[t - 1 - i]
            for j, theta in enumerate(order.ma):
                forecast += theta * innovations[t - 1 - j]
            innovations[t] = working[t] - forecast
        keep = self._memory
        self._working = list(working[-keep:])
        self._innovations = list(innovations[-keep:])
        self._last_filled = float(filled[-1])
        self._working_index = len(working) - 1

    def _step(self, working_value: float) -> float:
        """Advance the recursion by one working-series point; returns
        the absolute residual (NaN before the recursion offset)."""
        order = self._order
        assert order is not None
        self._working_index += 1
        if self._working_index < self._offset:
            self._working.append(working_value)
            self._innovations.append(0.0)
        else:
            forecast = order.const
            for i, phi in enumerate(order.ar):
                forecast += phi * self._working[-1 - i]
            for j, theta in enumerate(order.ma):
                forecast += theta * self._innovations[-1 - j]
            self._working.append(working_value)
            self._innovations.append(working_value - forecast)
            severity = abs(working_value - forecast)
            self._trim()
            return severity
        self._trim()
        return float("nan")

    def _trim(self) -> None:
        keep = self._memory
        if len(self._working) > keep:
            del self._working[:-keep]
            del self._innovations[:-keep]

    # ------------------------------------------------------------------
    def update(self, value: float) -> float:
        value = float(value)
        detector = self._detector
        if len(self._buffer) < detector.fit_points:
            self._buffer.append(value)
            if len(self._buffer) == detector.fit_points:
                self._fit_and_replay()
            return float("nan")

        assert self._order is not None
        missing = np.isnan(value)
        filled = self._last_filled if missing else value
        if self._order.d == 1:
            working_value = filled - self._last_filled
        else:
            working_value = filled
        severity = self._step(working_value)
        self._last_filled = filled
        return float("nan") if missing else severity
