"""``repro-obs`` — inspect, compare and gate metrics snapshots.

Usage::

    repro-obs dump snapshot.json                 # Prometheus text format
    repro-obs dump snapshot.json --format json   # normalised JSON
    repro-obs dump snapshot.json --format table  # histogram percentiles
    repro-obs diff before.json after.json        # per-series deltas
    repro-obs diff before.json after.json --format json
    repro-obs slo --targets slo/targets.toml --snapshot soak.json

``dump`` renders a JSON snapshot (written by the benchmark harness, the
streaming example, or :func:`repro.obs.write_snapshot`) as Prometheus
text exposition, normalised JSON, or a histogram table with estimated
p50/p90/p99 columns. ``diff`` compares two snapshots and exits non-zero
with ``--fail-on-change`` when any series moved — usable as a
regression gate in CI. ``slo`` evaluates a declarative targets file
(see :mod:`repro.obs.slo`) against a snapshot or a ``repro-loadgen``
soak document and exits 1 on any violated objective — the CI
``slo-gate`` job is exactly this invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .exporters import (
    diff_snapshots,
    histogram_sample_percentiles,
    load_snapshot,
    render_diff_text,
    render_prometheus,
    render_snapshot_json,
)
from .slo import (
    SLOSpecError,
    evaluate_slos,
    load_slo_specs,
    load_snapshot_series,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect, compare and gate repro metrics snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dump = sub.add_parser("dump", help="render one snapshot")
    dump.add_argument("snapshot", help="path to a JSON metrics snapshot")
    dump.add_argument(
        "--format", choices=["prom", "json", "table"], default="prom",
        help="output format (default: Prometheus text exposition; "
        "'table' shows estimated p50/p90/p99 per histogram series)",
    )

    diff = sub.add_parser("diff", help="compare two snapshots")
    diff.add_argument("old", help="baseline snapshot (JSON)")
    diff.add_argument("new", help="comparison snapshot (JSON)")
    diff.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (default: text)",
    )
    diff.add_argument(
        "--fail-on-change", action="store_true",
        help="exit 1 when any series changed, appeared or disappeared",
    )

    slo = sub.add_parser(
        "slo", help="evaluate SLO targets against a snapshot"
    )
    slo.add_argument(
        "--targets", required=True,
        help="SLO spec file (.toml or .json, [[slo]] tables)",
    )
    slo.add_argument(
        "--snapshot", required=True,
        help="metrics snapshot or repro-loadgen soak document (JSON)",
    )
    slo.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format on stdout (default: text)",
    )
    slo.add_argument(
        "--json-out", default=None,
        help="also write the full SLOReport JSON to this path",
    )
    return parser


def render_histogram_table(snapshot: dict) -> str:
    """Histogram families with estimated p50/p90/p99 per series."""
    header = (
        f"{'HISTOGRAM':<36} {'LABELS':<28} {'COUNT':>8} "
        f"{'P50':>10} {'P90':>10} {'P99':>10}"
    )
    lines = [header, "-" * len(header)]
    rows = 0
    for family in snapshot.get("metrics", []):
        if family["kind"] != "histogram":
            continue
        for sample in family["samples"]:
            labels = ",".join(
                f"{key}={value}"
                for key, value in sorted(sample.get("labels", {}).items())
            )
            percentiles = histogram_sample_percentiles(sample)
            cells = {
                key: (
                    "-" if percentiles is None
                    or percentiles.get(key) is None
                    else f"{percentiles[key]:.4g}"
                )
                for key in ("p50", "p90", "p99")
            }
            lines.append(
                f"{family['name']:<36} {labels:<28} "
                f"{sample['count']:>8g} {cells['p50']:>10} "
                f"{cells['p90']:>10} {cells['p99']:>10}"
            )
            rows += 1
    if not rows:
        lines.append("(no histogram series in snapshot)")
    return "\n".join(lines) + "\n"


def run_dump(args: argparse.Namespace) -> int:
    snapshot = load_snapshot(args.snapshot)
    if args.format == "json":
        print(render_snapshot_json(snapshot))
    elif args.format == "table":
        sys.stdout.write(render_histogram_table(snapshot))
    else:
        sys.stdout.write(render_prometheus(snapshot))
    return 0


def run_diff(args: argparse.Namespace) -> int:
    diff = diff_snapshots(load_snapshot(args.old), load_snapshot(args.new))
    if args.format == "json":
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_diff_text(diff))
    dirty = bool(diff["changed"] or diff["added"] or diff["removed"])
    if args.fail_on_change and dirty:
        return 1
    return 0


def run_slo(args: argparse.Namespace) -> int:
    specs = load_slo_specs(args.targets)
    series = load_snapshot_series(args.snapshot)
    report = evaluate_slos(specs, series)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "dump":
            return run_dump(args)
        if args.command == "slo":
            return run_slo(args)
        return run_diff(args)
    except SLOSpecError as error:
        print(f"repro-obs: invalid SLO spec: {error}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as error:
        # json.JSONDecodeError subclasses ValueError; a missing or
        # malformed snapshot is a user error, not a traceback.
        print(f"repro-obs: {error}", file=sys.stderr)
        return 2


__all__ = [
    "build_parser",
    "render_histogram_table",
    "run_dump",
    "run_diff",
    "run_slo",
    "main",
]
