"""``repro-obs`` — inspect and compare metrics snapshots.

Usage::

    repro-obs dump snapshot.json                 # Prometheus text format
    repro-obs dump snapshot.json --format json   # normalised JSON
    repro-obs diff before.json after.json        # per-series deltas
    repro-obs diff before.json after.json --format json

``dump`` renders a JSON snapshot (written by the benchmark harness, the
streaming example, or :func:`repro.obs.write_snapshot`) as Prometheus
text exposition or normalised JSON. ``diff`` compares two snapshots and
exits non-zero with ``--fail-on-change`` when any series moved — usable
as a regression gate in CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .exporters import (
    diff_snapshots,
    load_snapshot,
    render_diff_text,
    render_prometheus,
    render_snapshot_json,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect and compare repro metrics snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dump = sub.add_parser("dump", help="render one snapshot")
    dump.add_argument("snapshot", help="path to a JSON metrics snapshot")
    dump.add_argument(
        "--format", choices=["prom", "json"], default="prom",
        help="output format (default: Prometheus text exposition)",
    )

    diff = sub.add_parser("diff", help="compare two snapshots")
    diff.add_argument("old", help="baseline snapshot (JSON)")
    diff.add_argument("new", help="comparison snapshot (JSON)")
    diff.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (default: text)",
    )
    diff.add_argument(
        "--fail-on-change", action="store_true",
        help="exit 1 when any series changed, appeared or disappeared",
    )
    return parser


def run_dump(args: argparse.Namespace) -> int:
    snapshot = load_snapshot(args.snapshot)
    if args.format == "json":
        print(render_snapshot_json(snapshot))
    else:
        sys.stdout.write(render_prometheus(snapshot))
    return 0


def run_diff(args: argparse.Namespace) -> int:
    diff = diff_snapshots(load_snapshot(args.old), load_snapshot(args.new))
    if args.format == "json":
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_diff_text(diff))
    dirty = bool(diff["changed"] or diff["added"] or diff["removed"])
    if args.fail_on_change and dirty:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "dump":
            return run_dump(args)
        return run_diff(args)
    except (OSError, ValueError) as error:
        # json.JSONDecodeError subclasses ValueError; a missing or
        # malformed snapshot is a user error, not a traceback.
        print(f"repro-obs: {error}", file=sys.stderr)
        return 2


__all__ = [
    "build_parser",
    "run_dump",
    "run_diff",
    "main",
]
