"""The process-global, swappable observability provider.

Instrumentation call sites across the pipeline do::

    obs = get_provider()
    with obs.span("service.retrain", kpi=name):
        ...
    obs.counter("repro_retrain_rounds_total").inc()

By default :func:`get_provider` returns the shared
:data:`NULL_PROVIDER` — a true no-op whose metric handles, spans and
timers are preallocated singletons that do nothing (no clock reads, no
allocation), so the instrumented hot paths cost one global lookup and a
couple of no-op calls when observability is disabled. :func:`enable`
swaps in a live :class:`ObservabilityProvider` (registry + tracer +
event log); :func:`disable` restores the no-op.

The provider is process-global on purpose: the pipeline's hot paths
(detector streams, the forest) are plain functions without a context
object to thread through, exactly like production metric facades
(``prometheus_client``'s default registry, OpenTelemetry's global
tracer provider).
"""

from __future__ import annotations

import os
import time
from typing import Optional

from .events import EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import SpanRecord, Tracer

#: Environment variable that, when set to a non-empty value, makes
#: :func:`enable_from_env` install a live provider (used by the
#: benchmark harness and CI).
OBS_ENV_VAR = "REPRO_OBS"


class _NullCounter:
    """Does nothing; reports zero."""

    __slots__ = ()
    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        return None

    @property
    def value(self) -> float:
        return 0.0


class _NullGauge:
    __slots__ = ()
    kind = "gauge"

    def set(self, value: float) -> None:
        return None

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    @property
    def value(self) -> float:
        return 0.0


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"

    def observe(self, value: float) -> None:
        return None

    @property
    def sum(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0


class _NullSpan:
    """Shared no-op span/timer: reusable, reentrant, records nothing."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_SPAN = _NullSpan()


class NullProvider:
    """The disabled-observability provider: every handle is a no-op."""

    enabled = False

    def counter(self, name: str, help_text: str = "", **labels) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help_text: str = "", **labels) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, help_text: str = "",
                  buckets=None, **labels) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def span(self, name: str, **meta) -> _NullSpan:
        return _NULL_SPAN

    def timer(self, name: str, help_text: str = "", **labels) -> _NullSpan:
        return _NULL_SPAN

    def emit(self, kind: str, **fields) -> None:
        return None

    def snapshot(self) -> dict:
        return {"version": 1, "metrics": []}


class _Timer:
    """Times a block into a histogram (only built by live providers)."""

    __slots__ = ("_histogram", "_begin")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._begin = 0.0

    def __enter__(self) -> "_Timer":
        self._begin = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._histogram.observe(time.perf_counter() - self._begin)
        return False


#: Histogram fed automatically by every finished span, labelled by span
#: name — the "per-stage latency" metric of docs/observability.md.
SPAN_SECONDS_METRIC = "repro_span_seconds"


class ObservabilityProvider:
    """A live provider: metrics + tracing + events, wired together.

    Every finished span also observes into the
    ``repro_span_seconds{span=<name>}`` histogram, so enabling tracing
    automatically yields per-stage latency distributions in the
    Prometheus export without double instrumentation.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventLog] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.events = events if events is not None else EventLog()
        if self.tracer.on_finish is None:
            self.tracer.on_finish = self._record_span

    def _record_span(self, record: SpanRecord) -> None:
        self.registry.histogram(
            SPAN_SECONDS_METRIC,
            "Wall time per traced pipeline stage",
            span=record.name,
        ).observe(record.duration)

    # ------------------------------------------------------------------
    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        return self.registry.counter(name, help_text, **labels)

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        return self.registry.gauge(name, help_text, **labels)

    def histogram(self, name: str, help_text: str = "",
                  buckets=None, **labels) -> Histogram:
        return self.registry.histogram(name, help_text, buckets, **labels)

    def span(self, name: str, **meta):
        return self.tracer.span(name, **meta)

    def timer(self, name: str, help_text: str = "", **labels) -> _Timer:
        return _Timer(self.registry.histogram(name, help_text, **labels))

    def emit(self, kind: str, **fields) -> None:
        self.events.emit(kind, **fields)

    def snapshot(self) -> dict:
        return self.registry.snapshot()


NULL_PROVIDER = NullProvider()

_provider = NULL_PROVIDER


def get_provider():
    """The active provider (the shared no-op unless :func:`enable` or
    :func:`set_provider` installed a live one)."""
    return _provider


def set_provider(provider):
    """Install ``provider`` globally; returns the previous provider."""
    global _provider  # repro: disable=worker-reachability — the designed provider swap (the one sanctioned global); only reachable from workers through name-ambiguous .start/.run call-graph edges, and a worker-local swap is process-local by design
    previous = _provider
    _provider = provider
    return previous


def enable(provider: Optional[ObservabilityProvider] = None) -> ObservabilityProvider:
    """Switch observability on; returns the (new) live provider.

    Idempotent: if a live provider is already installed and none is
    passed, it is kept.
    """
    current = get_provider()
    if provider is None:
        if isinstance(current, ObservabilityProvider):
            return current
        provider = ObservabilityProvider()
    set_provider(provider)
    return provider


def disable():
    """Restore the no-op provider; returns the provider that was active."""
    return set_provider(NULL_PROVIDER)


def is_enabled() -> bool:
    return bool(get_provider().enabled)


def enable_from_env() -> bool:
    """Enable observability when ``$REPRO_OBS`` is set (non-empty).

    Returns whether a live provider is active afterwards. This is the
    hook the benchmark harness and CI use to flip metrics on without
    code changes.
    """
    if os.environ.get(OBS_ENV_VAR, ""):
        enable()
    return is_enabled()


__all__ = [
    "OBS_ENV_VAR",
    "SPAN_SECONDS_METRIC",
    "NullProvider",
    "ObservabilityProvider",
    "NULL_PROVIDER",
    "get_provider",
    "set_provider",
    "enable",
    "disable",
    "is_enabled",
    "enable_from_env",
]
